// Built-in selector types that need whole-graph analyses.
//
// Selector catalogue (graph half):
//   onCallPathTo(target)            functions on a call path main -> target
//   onCallPathFrom(source)          functions reachable from source
//   callers(a)                      direct callers of members of a
//   callees(a)                      direct callees of members of a
//   coarse(input [, critical])      drop sole-caller chain members (paper V-D)
//   statementAggregation(op, n [, input])
//                                   statements aggregated along the call
//                                   chain from main compare true [16]

#include <deque>

#include "cg/reachability.hpp"
#include "select/registry.hpp"
#include "select/scc.hpp"
#include "support/error.hpp"

namespace capi::select {
namespace {

class OnCallPathToSelector final : public Selector {
public:
    explicit OnCallPathToSelector(SelectorPtr target) : target_(std::move(target)) {}

    FunctionSet evaluate(EvalContext& ctx) const override {
        FunctionSet targets = target_->evaluate(ctx);
        return FunctionSet::fromBits(cg::onCallPath(
            ctx.graph, ctx.graph.entryPoint(), targets.bits(), ctx.pool));
    }

    std::string describe() const override {
        return "onCallPathTo(" + target_->describe() + ")";
    }

private:
    SelectorPtr target_;
};

class OnCallPathFromSelector final : public Selector {
public:
    explicit OnCallPathFromSelector(SelectorPtr source) : source_(std::move(source)) {}

    FunctionSet evaluate(EvalContext& ctx) const override {
        FunctionSet sources = source_->evaluate(ctx);
        return FunctionSet::fromBits(
            cg::reachableFrom(ctx.graph, sources.bits(), ctx.pool));
    }

    std::string describe() const override {
        return "onCallPathFrom(" + source_->describe() + ")";
    }

private:
    SelectorPtr source_;
};

enum class Hop { Callers, Callees };

class NeighborSelector final : public Selector {
public:
    NeighborSelector(Hop hop, SelectorPtr input)
        : hop_(hop), input_(std::move(input)) {}

    FunctionSet evaluate(EvalContext& ctx) const override {
        FunctionSet in = input_->evaluate(ctx);
        FunctionSet out(ctx.graph.size());
        in.forEach([&](cg::FunctionId id) {
            const auto& neighbors = hop_ == Hop::Callers ? ctx.graph.callers(id)
                                                         : ctx.graph.callees(id);
            for (cg::FunctionId n : neighbors) {
                out.add(n);
            }
        });
        return out;
    }

    std::string describe() const override {
        return std::string(hop_ == Hop::Callers ? "callers(" : "callees(") +
               input_->describe() + ")";
    }

private:
    Hop hop_;
    SelectorPtr input_;
};

/// The coarse selector added for TALP region instrumentation (paper Sec. V-D).
///
/// Traverses the call graph from the entry point top-down. For every callee v
/// of the currently visited node u: if v is selected, u is v's only caller in
/// the whole-program graph, and v is not protected by the critical set, v is
/// removed. Traversal continues through removed nodes, so wrapper chains like
/// solve -> solveSegregated -> ... -> Amul collapse; critical functions
/// (e.g. the kernels themselves) are always retained.
class CoarseSelector final : public Selector {
public:
    CoarseSelector(SelectorPtr input, SelectorPtr critical)
        : input_(std::move(input)), critical_(std::move(critical)) {}

    FunctionSet evaluate(EvalContext& ctx) const override {
        FunctionSet result = input_->evaluate(ctx);
        FunctionSet critical = critical_ != nullptr
                                   ? critical_->evaluate(ctx)
                                   : FunctionSet(ctx.graph.size());

        const cg::CallGraph& graph = ctx.graph;
        std::vector<bool> visited(graph.size(), false);
        std::deque<cg::FunctionId> queue;

        cg::FunctionId entry = graph.entryPoint();
        if (entry != cg::kInvalidFunction) {
            queue.push_back(entry);
            visited[entry] = true;
        }
        // Functions unreachable from main are traversed afterwards so the
        // rule is applied uniformly (library call roots, registered
        // callbacks, ...).
        auto drainQueue = [&] {
            while (!queue.empty()) {
                cg::FunctionId u = queue.front();
                queue.pop_front();
                for (cg::FunctionId v : graph.callees(u)) {
                    if (result.contains(v) && graph.callers(v).size() == 1 &&
                        !critical.contains(v)) {
                        result.remove(v);
                    }
                    if (!visited[v]) {
                        visited[v] = true;
                        queue.push_back(v);
                    }
                }
            }
        };
        drainQueue();
        for (cg::FunctionId id = 0; id < graph.size(); ++id) {
            if (!visited[id]) {
                visited[id] = true;
                queue.push_back(id);
                drainQueue();
            }
        }
        return result;
    }

    std::string describe() const override {
        std::string out = "coarse(" + input_->describe();
        if (critical_ != nullptr) {
            out += ", " + critical_->describe();
        }
        return out + ")";
    }

private:
    SelectorPtr input_;
    SelectorPtr critical_;  ///< May be null.
};

/// Statement aggregation selection [16]: local statement counts are
/// aggregated along the call chain from main; a function is selected when the
/// aggregate compares true against the threshold. Recursion cycles are
/// collapsed via SCC condensation (a cycle's members share one aggregate).
class StatementAggregationSelector final : public Selector {
public:
    StatementAggregationSelector(CompareOp op, std::int64_t threshold,
                                 SelectorPtr input)
        : op_(op), threshold_(threshold), input_(std::move(input)) {}

    FunctionSet evaluate(EvalContext& ctx) const override {
        const cg::CallGraph& graph = ctx.graph;
        SccResult scc = computeScc(graph);
        std::vector<std::uint64_t> localStmts = scc.accumulate(
            graph, [](const cg::FunctionDesc& d) -> std::uint64_t {
                return d.metrics.numStatements;
            });

        // agg(C) = stmts(C) + max over caller components agg(C'), computed
        // top-down. Tarjan ids order callees before callers, so descending
        // component id visits callers first.
        std::vector<std::uint64_t> agg(scc.componentCount, 0);
        std::vector<std::vector<std::uint32_t>> callerComps(scc.componentCount);
        for (cg::FunctionId id = 0; id < graph.size(); ++id) {
            std::uint32_t comp = scc.component[id];
            for (cg::FunctionId caller : graph.callers(id)) {
                std::uint32_t callerComp = scc.component[caller];
                if (callerComp != comp) {
                    callerComps[comp].push_back(callerComp);
                }
            }
        }
        for (std::uint32_t comp = scc.componentCount; comp-- > 0;) {
            std::uint64_t best = 0;
            for (std::uint32_t callerComp : callerComps[comp]) {
                best = std::max(best, agg[callerComp]);
            }
            agg[comp] = best + localStmts[comp];
        }

        FunctionSet in = input_ != nullptr ? input_->evaluate(ctx)
                                           : FunctionSet::all(graph.size());
        FunctionSet out(graph.size());
        in.forEach([&](cg::FunctionId id) {
            if (compareMetric(agg[scc.component[id]], op_, threshold_)) {
                out.add(id);
            }
        });
        return out;
    }

    std::string describe() const override {
        return std::string("statementAggregation(") + compareOpName(op_) + ", " +
               std::to_string(threshold_) +
               (input_ != nullptr ? ", " + input_->describe() : std::string()) + ")";
    }

private:
    CompareOp op_;
    std::int64_t threshold_;
    SelectorPtr input_;  ///< May be null (defaults to %%).
};

}  // namespace

namespace detail {

void registerGraphSelectors(SelectorRegistry& r) {
    r.registerType(
        "onCallPathTo",
        [](const spec::Expr& call, SelectorBuilder& b) -> SelectorPtr {
            b.checkArity(call, 1, 1);
            return std::make_unique<OnCallPathToSelector>(b.selectorArg(call, 0));
        },
        "onCallPathTo(target): functions on a call path from main to target");
    r.registerType(
        "onCallPathFrom",
        [](const spec::Expr& call, SelectorBuilder& b) -> SelectorPtr {
            b.checkArity(call, 1, 1);
            return std::make_unique<OnCallPathFromSelector>(b.selectorArg(call, 0));
        },
        "onCallPathFrom(source): functions reachable from source");
    r.registerType(
        "callers",
        [](const spec::Expr& call, SelectorBuilder& b) -> SelectorPtr {
            b.checkArity(call, 1, 1);
            return std::make_unique<NeighborSelector>(Hop::Callers,
                                                      b.selectorArg(call, 0));
        },
        "callers(a): direct callers of members of a");
    r.registerType(
        "callees",
        [](const spec::Expr& call, SelectorBuilder& b) -> SelectorPtr {
            b.checkArity(call, 1, 1);
            return std::make_unique<NeighborSelector>(Hop::Callees,
                                                      b.selectorArg(call, 0));
        },
        "callees(a): direct callees of members of a");
    r.registerType(
        "coarse",
        [](const spec::Expr& call, SelectorBuilder& b) -> SelectorPtr {
            b.checkArity(call, 1, 2);
            SelectorPtr critical =
                call.args.size() == 2 ? b.selectorArg(call, 1) : nullptr;
            return std::make_unique<CoarseSelector>(b.selectorArg(call, 0),
                                                    std::move(critical));
        },
        "coarse(input[, critical]): remove sole-caller chain functions");
    r.registerType(
        "statementAggregation",
        [](const spec::Expr& call, SelectorBuilder& b) -> SelectorPtr {
            b.checkArity(call, 2, 3);
            CompareOp op = parseCompareOp(b.stringArg(call, 0));
            std::int64_t threshold = b.numberArg(call, 1);
            SelectorPtr input =
                call.args.size() == 3 ? b.selectorArg(call, 2) : nullptr;
            return std::make_unique<StatementAggregationSelector>(op, threshold,
                                                                  std::move(input));
        },
        "statementAggregation(op, n[, input]): statements aggregated along call chains");
}

}  // namespace detail

}  // namespace capi::select
