#include "select/registry.hpp"

#include "support/error.hpp"

namespace capi::select {

void SelectorRegistry::registerType(const std::string& name, SelectorFactory factory,
                                    std::string documentation) {
    types_[name] = Entry{std::move(factory), std::move(documentation)};
}

const SelectorFactory* SelectorRegistry::find(const std::string& name) const {
    auto it = types_.find(name);
    return it == types_.end() ? nullptr : &it->second.factory;
}

std::vector<std::string> SelectorRegistry::typeNames() const {
    std::vector<std::string> names;
    names.reserve(types_.size());
    for (const auto& [name, entry] : types_) {
        names.push_back(name);
    }
    return names;
}

std::string SelectorRegistry::documentation(const std::string& name) const {
    auto it = types_.find(name);
    return it == types_.end() ? std::string() : it->second.documentation;
}

namespace detail {
// Implemented in selectors_basic.cpp / selectors_graph.cpp.
void registerBasicSelectors(SelectorRegistry& registry);
void registerGraphSelectors(SelectorRegistry& registry);

SelectorPtr makeEverything();
SelectorPtr makeReference(std::string name);
}  // namespace detail

const SelectorRegistry& SelectorRegistry::builtin() {
    static const SelectorRegistry registry = [] {
        SelectorRegistry r;
        detail::registerBasicSelectors(r);
        detail::registerGraphSelectors(r);
        return r;
    }();
    return registry;
}

void SelectorBuilder::fail(const spec::Expr& at, const std::string& message) const {
    throw support::ParseError("selector: " + message, at.line, at.column);
}

void SelectorBuilder::checkArity(const spec::Expr& call, std::size_t min,
                                 std::size_t max) const {
    if (call.args.size() < min || call.args.size() > max) {
        std::string expected = min == max ? std::to_string(min)
                                          : std::to_string(min) + ".." +
                                                (max == SIZE_MAX
                                                     ? std::string("n")
                                                     : std::to_string(max));
        fail(call, "'" + call.value + "' expects " + expected + " argument(s), got " +
                       std::to_string(call.args.size()));
    }
}

SelectorPtr SelectorBuilder::selectorArg(const spec::Expr& call, std::size_t index) {
    const spec::Expr& arg = *call.args[index];
    if (arg.kind == spec::Expr::Kind::String || arg.kind == spec::Expr::Kind::Number) {
        fail(arg, "'" + call.value + "' argument " + std::to_string(index + 1) +
                      " must be a selector");
    }
    return build(arg);
}

std::string SelectorBuilder::stringArg(const spec::Expr& call, std::size_t index) const {
    const spec::Expr& arg = *call.args[index];
    if (arg.kind != spec::Expr::Kind::String) {
        fail(arg, "'" + call.value + "' argument " + std::to_string(index + 1) +
                      " must be a string");
    }
    return arg.value;
}

std::int64_t SelectorBuilder::numberArg(const spec::Expr& call, std::size_t index) const {
    const spec::Expr& arg = *call.args[index];
    if (arg.kind != spec::Expr::Kind::Number) {
        fail(arg, "'" + call.value + "' argument " + std::to_string(index + 1) +
                      " must be a number");
    }
    return arg.number;
}

SelectorPtr SelectorBuilder::build(const spec::Expr& expr) {
    switch (expr.kind) {
        case spec::Expr::Kind::Everything: return detail::makeEverything();
        case spec::Expr::Kind::Ref: return detail::makeReference(expr.value);
        case spec::Expr::Kind::Call: {
            const SelectorFactory* factory = registry_.find(expr.value);
            if (factory == nullptr) {
                fail(expr, "unknown selector type '" + expr.value + "'");
            }
            return (*factory)(expr, *this);
        }
        default:
            fail(expr, "expression is not a selector");
    }
}

}  // namespace capi::select
