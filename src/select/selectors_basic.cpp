// Built-in flag, metric, name and set-combinator selector types.
//
// Selector catalogue (basic half):
//   %%                                   all functions
//   byName(pattern, input)               glob on mangled name
//   byPrettyName(pattern, input)         glob on demangled name
//   byPath(pattern, input)               glob on source file path
//   inSystemHeader(input)                defined in a system header
//   inlineSpecified(input)               marked `inline` in source
//   defined(input)                       has a body in the program
//   isVirtual(input)                     virtual member functions
//   addressTaken(input)                  used as a function pointer
//   mpiFunctions(input)                  MPI API entry points
//   flops(op, n, input)                  static flop count compares true
//   loopDepth(op, n, input)              max loop nesting compares true
//   statements(op, n, input)             statement count compares true
//   cyclomatic(op, n, input)             McCabe complexity compares true
//   callSites(op, n, input)              call expressions compare true
//   instructions(op, n, input)           approx. machine instructions
//   profiledVisits(op, n, input)         last-epoch runtime visit count
//   join(a, b, ...)                      set union
//   intersect(a, b, ...)                 set intersection
//   subtract(a, b)                       set difference
//   complement(a)                        universe minus a

#include <algorithm>
#include <functional>

#include "select/parallel_util.hpp"
#include "select/registry.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"
#include "support/thread_pool.hpp"

namespace capi::select {

CompareOp parseCompareOp(const std::string& text) {
    if (text == "<") return CompareOp::Lt;
    if (text == "<=") return CompareOp::Le;
    if (text == ">") return CompareOp::Gt;
    if (text == ">=") return CompareOp::Ge;
    if (text == "==" || text == "=") return CompareOp::Eq;
    if (text == "!=") return CompareOp::Ne;
    throw support::Error("unknown comparison operator '" + text + "'");
}

const char* compareOpName(CompareOp op) {
    switch (op) {
        case CompareOp::Lt: return "<";
        case CompareOp::Le: return "<=";
        case CompareOp::Gt: return ">";
        case CompareOp::Ge: return ">=";
        case CompareOp::Eq: return "==";
        case CompareOp::Ne: return "!=";
    }
    return "?";
}

namespace {

class EverythingSelector final : public Selector {
public:
    std::string describe() const override { return "%%"; }

protected:
    FunctionSet evaluateImpl(EvalContext& ctx) const override {
        // Reads nothing per node, but the result IS the universe: it grows
        // with every added node.
        ctx.touchUniverse();
        return FunctionSet::all(ctx.graph.size());
    }
    bool tracksFootprint() const override { return true; }
};

/// `%name`: looks up a previously evaluated named instance.
class ReferenceSelector final : public Selector {
public:
    explicit ReferenceSelector(std::string name) : name_(std::move(name)) {}

    std::string describe() const override { return "%" + name_; }

protected:
    FunctionSet evaluateImpl(EvalContext& ctx) const override {
        auto it = ctx.named.find(name_);
        if (it == ctx.named.end()) {
            throw support::Error("selector reference '%" + name_ +
                                 "' used before definition");
        }
        // No graph reads of its own: changes to the referenced stage reach
        // dependents through the pipeline's %ref dirtiness propagation.
        return it->second;
    }
    bool tracksFootprint() const override { return true; }

private:
    std::string name_;
};

/// What a FilterSelector predicate reads of each candidate, for footprint
/// classification: name/flag predicates survive metric-only touches and
/// vice versa.
enum class FilterReads { Desc, Metrics };

/// Filters the input set by a per-function predicate.
class FilterSelector final : public Selector {
public:
    using Predicate = std::function<bool(const cg::FunctionDesc&)>;

    FilterSelector(std::string name, SelectorPtr input, Predicate predicate,
                   FilterReads reads)
        : name_(std::move(name)), input_(std::move(input)),
          predicate_(std::move(predicate)), reads_(reads) {}

protected:
    FunctionSet evaluateImpl(EvalContext& ctx) const override {
        FunctionSet in = input_->evaluate(ctx);
        // The predicate runs on exactly the members of `in`.
        if (reads_ == FilterReads::Desc) {
            ctx.touchDescSet(in.bits());
        } else {
            ctx.touchMetricsSet(in.bits());
        }
        FunctionSet out(ctx.graph.size());
        auto filterWords = [&](std::size_t wordBegin, std::size_t wordEnd) {
            // A bit at index i lives in word i/64, so a worker filtering
            // words [wordBegin, wordEnd) only writes words in that range.
            in.bits().forEachInWordRange(wordBegin, wordEnd, [&](std::size_t id) {
                if (predicate_(ctx.graph.desc(static_cast<cg::FunctionId>(id)))) {
                    out.add(static_cast<cg::FunctionId>(id));
                }
            });
        };
        if (useParallel(ctx, in.universe())) {
            forEachWordRange(ctx, in.bits().wordCount(), filterWords);
        } else {
            filterWords(0, in.bits().wordCount());
        }
        return out;
    }
    bool tracksFootprint() const override { return true; }

public:
    std::string describe() const override {
        return name_ + "(" + input_->describe() + ")";
    }

private:
    std::string name_;
    SelectorPtr input_;
    Predicate predicate_;
    FilterReads reads_;
};

enum class SetOp { Union, Intersection };

/// join(...) / intersect(...): variadic set combinators.
class CombineSelector final : public Selector {
public:
    CombineSelector(SetOp op, std::vector<SelectorPtr> inputs)
        : op_(op), inputs_(std::move(inputs)) {}

protected:
    // Pure set algebra over child results; the children report their own
    // reads into the shared footprint.
    bool tracksFootprint() const override { return true; }

    FunctionSet evaluateImpl(EvalContext& ctx) const override {
        FunctionSet result = inputs_.front()->evaluate(ctx);
        if (inputs_.size() > 1 && useParallel(ctx, result.universe())) {
            std::vector<FunctionSet> rest;
            rest.reserve(inputs_.size() - 1);
            for (std::size_t i = 1; i < inputs_.size(); ++i) {
                rest.push_back(inputs_[i]->evaluate(ctx));
            }
            support::DynamicBitset& acc = result.bits();
            forEachWordRange(
                ctx, acc.wordCount(), [&](std::size_t lo, std::size_t hi) {
                    for (std::size_t w = lo; w < hi; ++w) {
                        std::uint64_t v = acc.word(w);
                        for (const FunctionSet& s : rest) {
                            if (op_ == SetOp::Union) {
                                v |= s.bits().word(w);
                            } else {
                                v &= s.bits().word(w);
                            }
                        }
                        acc.setWord(w, v);
                    }
                });
            return result;
        }
        for (std::size_t i = 1; i < inputs_.size(); ++i) {
            FunctionSet next = inputs_[i]->evaluate(ctx);
            if (op_ == SetOp::Union) {
                result |= next;
            } else {
                result &= next;
            }
        }
        return result;
    }

public:
    std::string describe() const override {
        std::string out = op_ == SetOp::Union ? "join(" : "intersect(";
        for (std::size_t i = 0; i < inputs_.size(); ++i) {
            if (i > 0) out += ", ";
            out += inputs_[i]->describe();
        }
        return out + ")";
    }

private:
    SetOp op_;
    std::vector<SelectorPtr> inputs_;
};

class SubtractSelector final : public Selector {
public:
    SubtractSelector(SelectorPtr left, SelectorPtr right)
        : left_(std::move(left)), right_(std::move(right)) {}

protected:
    bool tracksFootprint() const override { return true; }

    FunctionSet evaluateImpl(EvalContext& ctx) const override {
        FunctionSet result = left_->evaluate(ctx);
        FunctionSet right = right_->evaluate(ctx);
        if (useParallel(ctx, result.universe())) {
            support::DynamicBitset& acc = result.bits();
            forEachWordRange(
                ctx, acc.wordCount(), [&](std::size_t lo, std::size_t hi) {
                    for (std::size_t w = lo; w < hi; ++w) {
                        acc.setWord(w, acc.word(w) & ~right.bits().word(w));
                    }
                });
        } else {
            result -= right;
        }
        return result;
    }

public:
    std::string describe() const override {
        return "subtract(" + left_->describe() + ", " + right_->describe() + ")";
    }

private:
    SelectorPtr left_;
    SelectorPtr right_;
};

class ComplementSelector final : public Selector {
public:
    explicit ComplementSelector(SelectorPtr input) : input_(std::move(input)) {}

    std::string describe() const override {
        return "complement(" + input_->describe() + ")";
    }

protected:
    FunctionSet evaluateImpl(EvalContext& ctx) const override {
        FunctionSet result = input_->evaluate(ctx);
        // The complement of an unchanged set still changes when the
        // universe grows (a new node joins the complement).
        ctx.touchUniverse();
        result.complement();
        return result;
    }
    bool tracksFootprint() const override { return true; }

private:
    SelectorPtr input_;
};

// --- factory helpers --------------------------------------------------------

using DescPredicate = bool (*)(const cg::FunctionDesc&);

SelectorFactory flagFactory(DescPredicate predicate) {
    return [predicate](const spec::Expr& call, SelectorBuilder& b) -> SelectorPtr {
        b.checkArity(call, 1, 1);
        return std::make_unique<FilterSelector>(call.value, b.selectorArg(call, 0),
                                                predicate, FilterReads::Desc);
    };
}

using MetricGetter = std::uint64_t (*)(const cg::FunctionDesc&);

SelectorFactory metricFactory(MetricGetter getter) {
    return [getter](const spec::Expr& call, SelectorBuilder& b) -> SelectorPtr {
        b.checkArity(call, 3, 3);
        CompareOp op = parseCompareOp(b.stringArg(call, 0));
        std::int64_t threshold = b.numberArg(call, 1);
        return std::make_unique<FilterSelector>(
            call.value, b.selectorArg(call, 2),
            [getter, op, threshold](const cg::FunctionDesc& desc) {
                return compareMetric(getter(desc), op, threshold);
            },
            FilterReads::Metrics);
    };
}

enum class NameField { Mangled, Pretty, Path };

SelectorFactory nameFactory(NameField field) {
    return [field](const spec::Expr& call, SelectorBuilder& b) -> SelectorPtr {
        b.checkArity(call, 2, 2);
        std::string pattern = b.stringArg(call, 0);
        return std::make_unique<FilterSelector>(
            call.value, b.selectorArg(call, 1),
            [field, pattern](const cg::FunctionDesc& desc) {
                const std::string& value = field == NameField::Mangled ? desc.name
                                           : field == NameField::Pretty
                                               ? desc.prettyName
                                               : desc.sourceFile;
                return support::globMatch(pattern, value);
            },
            FilterReads::Desc);
    };
}

}  // namespace

namespace detail {

SelectorPtr makeEverything() { return std::make_unique<EverythingSelector>(); }

SelectorPtr makeReference(std::string name) {
    return std::make_unique<ReferenceSelector>(std::move(name));
}

void registerBasicSelectors(SelectorRegistry& r) {
    r.registerType("byName", nameFactory(NameField::Mangled),
                   "byName(pattern, input): glob match on mangled names");
    r.registerType("byPrettyName", nameFactory(NameField::Pretty),
                   "byPrettyName(pattern, input): glob match on demangled names");
    r.registerType("byPath", nameFactory(NameField::Path),
                   "byPath(pattern, input): glob match on source file paths");

    r.registerType(
        "inSystemHeader",
        flagFactory([](const cg::FunctionDesc& d) { return d.flags.inSystemHeader; }),
        "inSystemHeader(input): functions defined in system headers");
    r.registerType(
        "inlineSpecified",
        flagFactory([](const cg::FunctionDesc& d) { return d.flags.inlineSpecified; }),
        "inlineSpecified(input): functions marked inline in source");
    r.registerType(
        "defined", flagFactory([](const cg::FunctionDesc& d) { return d.flags.hasBody; }),
        "defined(input): functions with a body in the program");
    r.registerType(
        "isVirtual",
        flagFactory([](const cg::FunctionDesc& d) { return d.flags.isVirtual; }),
        "isVirtual(input): virtual member functions");
    r.registerType(
        "addressTaken",
        flagFactory([](const cg::FunctionDesc& d) { return d.flags.addressTaken; }),
        "addressTaken(input): functions whose address is taken");
    r.registerType(
        "mpiFunctions",
        flagFactory([](const cg::FunctionDesc& d) { return d.flags.isMpi; }),
        "mpiFunctions(input): MPI API entry points");

    r.registerType(
        "flops",
        metricFactory([](const cg::FunctionDesc& d) -> std::uint64_t {
            return d.metrics.flops;
        }),
        "flops(op, n, input): static floating-point operation count");
    r.registerType(
        "loopDepth",
        metricFactory([](const cg::FunctionDesc& d) -> std::uint64_t {
            return d.metrics.loopDepth;
        }),
        "loopDepth(op, n, input): maximum loop nesting depth");
    r.registerType(
        "statements",
        metricFactory([](const cg::FunctionDesc& d) -> std::uint64_t {
            return d.metrics.numStatements;
        }),
        "statements(op, n, input): source statement count");
    r.registerType(
        "cyclomatic",
        metricFactory([](const cg::FunctionDesc& d) -> std::uint64_t {
            return d.metrics.cyclomaticComplexity;
        }),
        "cyclomatic(op, n, input): McCabe cyclomatic complexity");
    r.registerType(
        "callSites",
        metricFactory([](const cg::FunctionDesc& d) -> std::uint64_t {
            return d.metrics.numCallSites;
        }),
        "callSites(op, n, input): number of call expressions in the body");
    r.registerType(
        "instructions",
        metricFactory([](const cg::FunctionDesc& d) -> std::uint64_t {
            return d.metrics.numInstructions;
        }),
        "instructions(op, n, input): approximate machine instruction count");
    r.registerType(
        "profiledVisits",
        metricFactory([](const cg::FunctionDesc& d) -> std::uint64_t {
            return d.metrics.profiledVisits;
        }),
        "profiledVisits(op, n, input): visit count from the last measurement epoch");

    r.registerType(
        "join",
        [](const spec::Expr& call, SelectorBuilder& b) -> SelectorPtr {
            b.checkArity(call, 1, SIZE_MAX);
            std::vector<SelectorPtr> inputs;
            for (std::size_t i = 0; i < call.args.size(); ++i) {
                inputs.push_back(b.selectorArg(call, i));
            }
            return std::make_unique<CombineSelector>(SetOp::Union, std::move(inputs));
        },
        "join(a, b, ...): set union");
    r.registerType(
        "intersect",
        [](const spec::Expr& call, SelectorBuilder& b) -> SelectorPtr {
            b.checkArity(call, 1, SIZE_MAX);
            std::vector<SelectorPtr> inputs;
            for (std::size_t i = 0; i < call.args.size(); ++i) {
                inputs.push_back(b.selectorArg(call, i));
            }
            return std::make_unique<CombineSelector>(SetOp::Intersection,
                                                     std::move(inputs));
        },
        "intersect(a, b, ...): set intersection");
    r.registerType(
        "subtract",
        [](const spec::Expr& call, SelectorBuilder& b) -> SelectorPtr {
            b.checkArity(call, 2, 2);
            return std::make_unique<SubtractSelector>(b.selectorArg(call, 0),
                                                      b.selectorArg(call, 1));
        },
        "subtract(a, b): set difference");
    r.registerType(
        "complement",
        [](const spec::Expr& call, SelectorBuilder& b) -> SelectorPtr {
            b.checkArity(call, 1, 1);
            return std::make_unique<ComplementSelector>(b.selectorArg(call, 0));
        },
        "complement(a): all functions not in a");
}

}  // namespace detail

}  // namespace capi::select
