#include "select/scc.hpp"

#include <algorithm>
#include <atomic>
#include <limits>

#include "support/thread_pool.hpp"

namespace capi::select {

namespace {
constexpr std::uint32_t kUnvisited = std::numeric_limits<std::uint32_t>::max();

/// Below this node count the sharded condensation's atomic bookkeeping costs
/// more than the plain loops it splits.
constexpr std::size_t kParallelCondenseThreshold = 1 << 14;
}  // namespace

SccResult computeScc(const cg::CsrView& csr) {
    const std::size_t n = csr.size();
    SccResult result;
    result.component.assign(n, kUnvisited);

    std::vector<std::uint32_t> index(n, kUnvisited);
    std::vector<std::uint32_t> lowlink(n, 0);
    std::vector<bool> onStack(n, false);
    std::vector<cg::FunctionId> stack;
    std::uint32_t nextIndex = 0;
    std::uint32_t nextComponent = 0;

    // Explicit DFS frame: node plus the next callee position to visit.
    struct Frame {
        cg::FunctionId node;
        std::size_t childPos;
    };
    std::vector<Frame> dfs;

    for (cg::FunctionId root = 0; root < n; ++root) {
        if (index[root] != kUnvisited) {
            continue;
        }
        dfs.push_back({root, 0});
        index[root] = lowlink[root] = nextIndex++;
        stack.push_back(root);
        onStack[root] = true;

        while (!dfs.empty()) {
            Frame& frame = dfs.back();
            std::span<const cg::FunctionId> callees = csr.callees(frame.node);
            if (frame.childPos < callees.size()) {
                cg::FunctionId child = callees[frame.childPos++];
                if (index[child] == kUnvisited) {
                    index[child] = lowlink[child] = nextIndex++;
                    stack.push_back(child);
                    onStack[child] = true;
                    dfs.push_back({child, 0});
                } else if (onStack[child] && index[child] < lowlink[frame.node]) {
                    lowlink[frame.node] = index[child];
                }
                continue;
            }
            // All children explored: maybe emit a component, then propagate
            // the lowlink into the parent frame.
            cg::FunctionId node = frame.node;
            dfs.pop_back();
            if (lowlink[node] == index[node]) {
                while (true) {
                    cg::FunctionId member = stack.back();
                    stack.pop_back();
                    onStack[member] = false;
                    result.component[member] = nextComponent;
                    if (member == node) break;
                }
                ++nextComponent;
            }
            if (!dfs.empty() && lowlink[node] < lowlink[dfs.back().node]) {
                lowlink[dfs.back().node] = lowlink[node];
            }
        }
    }

    result.componentCount = nextComponent;
    return result;
}

SccResult computeScc(const cg::CallGraph& graph) {
    return computeScc(*cg::CsrView::snapshot(graph));
}

SccCondensation condenseScc(const cg::CsrView& csr, const SccResult& scc,
                            support::ThreadPool* pool) {
    const std::size_t n = csr.size();
    const std::size_t comps = scc.componentCount;
    SccCondensation out;
    out.callerOffsets.assign(comps + 1, 0);

    const bool parallel = pool != nullptr && pool->threadCount() > 1 &&
                          n >= kParallelCondenseThreshold;

    if (!parallel) {
        out.localStmts.assign(comps, 0);
        // Count cross-component caller edges per component, prefix-sum into
        // offsets, then fill. Duplicate (comp, callerComp) pairs are kept,
        // exactly as the pre-CSR implementation pushed them.
        std::vector<std::uint32_t> degree(comps, 0);
        for (cg::FunctionId id = 0; id < n; ++id) {
            std::uint32_t comp = scc.component[id];
            out.localStmts[comp] += csr.numStatements(id);
            for (cg::FunctionId caller : csr.callers(id)) {
                if (scc.component[caller] != comp) {
                    ++degree[comp];
                }
            }
        }
        for (std::size_t c = 0; c < comps; ++c) {
            out.callerOffsets[c + 1] = out.callerOffsets[c] + degree[c];
        }
        out.callerComps.resize(out.callerOffsets[comps]);
        std::vector<std::uint32_t> cursor(out.callerOffsets.begin(),
                                          out.callerOffsets.end() - 1);
        for (cg::FunctionId id = 0; id < n; ++id) {
            std::uint32_t comp = scc.component[id];
            for (cg::FunctionId caller : csr.callers(id)) {
                std::uint32_t callerComp = scc.component[caller];
                if (callerComp != comp) {
                    out.callerComps[cursor[comp]++] = callerComp;
                }
            }
        }
        return out;
    }

    // Parallel path: shard nodes; accumulate per-component sums and degrees
    // with relaxed atomics (addition commutes, so totals are exact regardless
    // of interleaving), then fill rows through per-component atomic cursors.
    // Row element ORDER is scheduling-dependent, but the row CONTENT is the
    // same multiset as the serial pass and the consumer folds it with max.
    std::vector<std::atomic<std::uint64_t>> stmts(comps);
    std::vector<std::atomic<std::uint32_t>> degree(comps);
    for (std::size_t c = 0; c < comps; ++c) {
        stmts[c].store(0, std::memory_order_relaxed);
        degree[c].store(0, std::memory_order_relaxed);
    }
    const std::size_t grain =
        std::max<std::size_t>(1024, n / (pool->threadCount() * 4));
    pool->parallelFor(n, grain, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
            const auto id = static_cast<cg::FunctionId>(i);
            std::uint32_t comp = scc.component[id];
            stmts[comp].fetch_add(csr.numStatements(id),
                                  std::memory_order_relaxed);
            std::uint32_t local = 0;
            for (cg::FunctionId caller : csr.callers(id)) {
                if (scc.component[caller] != comp) {
                    ++local;
                }
            }
            if (local != 0) {
                degree[comp].fetch_add(local, std::memory_order_relaxed);
            }
        }
    });

    out.localStmts.resize(comps);
    for (std::size_t c = 0; c < comps; ++c) {
        out.localStmts[c] = stmts[c].load(std::memory_order_relaxed);
        out.callerOffsets[c + 1] =
            out.callerOffsets[c] + degree[c].load(std::memory_order_relaxed);
    }
    out.callerComps.resize(out.callerOffsets[comps]);

    std::vector<std::atomic<std::uint32_t>> cursor(comps);
    for (std::size_t c = 0; c < comps; ++c) {
        cursor[c].store(out.callerOffsets[c], std::memory_order_relaxed);
    }
    pool->parallelFor(n, grain, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
            const auto id = static_cast<cg::FunctionId>(i);
            std::uint32_t comp = scc.component[id];
            for (cg::FunctionId caller : csr.callers(id)) {
                std::uint32_t callerComp = scc.component[caller];
                if (callerComp != comp) {
                    out.callerComps[cursor[comp].fetch_add(
                        1, std::memory_order_relaxed)] = callerComp;
                }
            }
        }
    });
    return out;
}

}  // namespace capi::select
