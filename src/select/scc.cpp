#include "select/scc.hpp"

#include <limits>

namespace capi::select {

namespace {
constexpr std::uint32_t kUnvisited = std::numeric_limits<std::uint32_t>::max();
}

SccResult computeScc(const cg::CallGraph& graph) {
    const std::size_t n = graph.size();
    SccResult result;
    result.component.assign(n, kUnvisited);

    std::vector<std::uint32_t> index(n, kUnvisited);
    std::vector<std::uint32_t> lowlink(n, 0);
    std::vector<bool> onStack(n, false);
    std::vector<cg::FunctionId> stack;
    std::uint32_t nextIndex = 0;
    std::uint32_t nextComponent = 0;

    // Explicit DFS frame: node plus the next callee position to visit.
    struct Frame {
        cg::FunctionId node;
        std::size_t childPos;
    };
    std::vector<Frame> dfs;

    for (cg::FunctionId root = 0; root < n; ++root) {
        if (index[root] != kUnvisited) {
            continue;
        }
        dfs.push_back({root, 0});
        index[root] = lowlink[root] = nextIndex++;
        stack.push_back(root);
        onStack[root] = true;

        while (!dfs.empty()) {
            Frame& frame = dfs.back();
            const std::vector<cg::FunctionId>& callees = graph.callees(frame.node);
            if (frame.childPos < callees.size()) {
                cg::FunctionId child = callees[frame.childPos++];
                if (index[child] == kUnvisited) {
                    index[child] = lowlink[child] = nextIndex++;
                    stack.push_back(child);
                    onStack[child] = true;
                    dfs.push_back({child, 0});
                } else if (onStack[child] && index[child] < lowlink[frame.node]) {
                    lowlink[frame.node] = index[child];
                }
                continue;
            }
            // All children explored: maybe emit a component, then propagate
            // the lowlink into the parent frame.
            cg::FunctionId node = frame.node;
            dfs.pop_back();
            if (lowlink[node] == index[node]) {
                while (true) {
                    cg::FunctionId member = stack.back();
                    stack.pop_back();
                    onStack[member] = false;
                    result.component[member] = nextComponent;
                    if (member == node) break;
                }
                ++nextComponent;
            }
            if (!dfs.empty() && lowlink[node] < lowlink[dfs.back().node]) {
                lowlink[dfs.back().node] = lowlink[node];
            }
        }
    }

    result.componentCount = nextComponent;
    return result;
}

}  // namespace capi::select
