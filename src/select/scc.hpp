// Strongly-connected-component decomposition of the call graph.
//
// Needed by the statement-aggregation selector: recursion cycles must be
// collapsed before statements can be aggregated along call chains. Iterative
// Tarjan, so deep OpenFOAM-style call chains cannot overflow the stack.
//
// Component ids have the Tarjan property: if component A contains a call into
// component B (A != B), then id(B) < id(A). Processing nodes by descending
// component id therefore visits callers before callees (top-down).
#pragma once

#include <cstdint>
#include <vector>

#include "cg/call_graph.hpp"

namespace capi::select {

struct SccResult {
    std::vector<std::uint32_t> component;  ///< Node id -> component id.
    std::size_t componentCount = 0;

    /// Sum of a per-node value over each component.
    template <typename Getter>
    std::vector<std::uint64_t> accumulate(const cg::CallGraph& graph,
                                          Getter&& getter) const {
        std::vector<std::uint64_t> totals(componentCount, 0);
        for (cg::FunctionId id = 0; id < graph.size(); ++id) {
            totals[component[id]] += getter(graph.desc(id));
        }
        return totals;
    }
};

SccResult computeScc(const cg::CallGraph& graph);

}  // namespace capi::select
