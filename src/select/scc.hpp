// Strongly-connected-component decomposition of the call graph.
//
// Needed by the statement-aggregation selector: recursion cycles must be
// collapsed before statements can be aggregated along call chains. Iterative
// Tarjan over the flat CsrView rows, so deep OpenFOAM-style call chains
// cannot overflow the stack and the DFS streams through two contiguous
// arrays instead of per-node vectors.
//
// Component ids have the Tarjan property: if component A contains a call into
// component B (A != B), then id(B) < id(A). Processing nodes by descending
// component id therefore visits callers before callees (top-down).
#pragma once

#include <cstdint>
#include <vector>

#include "cg/call_graph.hpp"
#include "cg/csr_view.hpp"

namespace capi::support {
class ThreadPool;
}

namespace capi::select {

struct SccResult {
    std::vector<std::uint32_t> component;  ///< Node id -> component id.
    std::size_t componentCount = 0;
};

SccResult computeScc(const cg::CsrView& csr);

/// Snapshot-and-delegate convenience for callers holding only a CallGraph.
SccResult computeScc(const cg::CallGraph& graph);

/// Condensation of the call graph under an SCC decomposition, in the shape
/// statementAggregation consumes: per-component local statement totals plus
/// the cross-component caller adjacency as CSR (duplicates permitted — the
/// consumer folds with max, which absorbs them).
struct SccCondensation {
    std::vector<std::uint64_t> localStmts;      ///< Component id -> sum of stmts.
    std::vector<std::uint32_t> callerOffsets;   ///< componentCount + 1 entries.
    std::vector<std::uint32_t> callerComps;     ///< Flattened caller-component rows.
};

/// Builds the condensation. With a pool, the per-node counting and fill
/// passes are sharded over node ranges; sums and per-component row contents
/// are order-independent (integer addition commutes, rows are consumed by
/// max), so the result is semantically identical to the serial pass.
SccCondensation condenseScc(const cg::CsrView& csr, const SccResult& scc,
                            support::ThreadPool* pool = nullptr);

}  // namespace capi::select
