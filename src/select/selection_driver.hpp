// Selection driver: the `capi` command-line front end as a library facade.
//
// Runs the full selection phase from Fig. 3: parse the spec (with module
// imports), evaluate the selector pipeline on the whole-program call graph,
// restrict to instrumentable definitions, apply inlining compensation, and
// emit the IC. The returned statistics are exactly the columns of Table I.
#pragma once

#include <optional>
#include <string>

#include "cg/call_graph.hpp"
#include "select/ic.hpp"
#include "select/inline_compensation.hpp"
#include "select/pipeline.hpp"
#include "spec/module_resolver.hpp"

namespace capi::select {

struct SelectionOptions {
    std::string specText;
    std::string specName;                       ///< For provenance/reporting.
    const spec::ModuleResolver* resolver = nullptr;
    const SymbolOracle* symbolOracle = nullptr; ///< Enables inline compensation.
    bool applyInlineCompensation = true;
    /// Restrict the IC to functions with a body (declarations such as MPI
    /// library entry points cannot carry XRay sleds).
    bool definedOnly = true;
    /// Parallel evaluation and cross-run memoization (see PipelineOptions):
    /// threads != 1 runs on the process-wide support::Executor pool unless
    /// `pool` injects a specific one.
    std::size_t threads = 1;
    support::ThreadPool* pool = nullptr;
    SelectorCache* cache = nullptr;
    /// Optional journal-validated memo for the compensation step: refinement
    /// epochs whose graph delta is metric-only replay the previous walk.
    InlineCompensationCache* inlineCache = nullptr;
};

struct SelectionReport {
    InstrumentationConfig ic;
    double selectionSeconds = 0.0;  ///< Table I "Time".
    std::size_t graphNodes = 0;
    std::size_t selectedPre = 0;    ///< Table I "#selected pre".
    std::size_t selectedFinal = 0;  ///< Table I "#selected".
    std::size_t added = 0;          ///< Table I "#added".
    bool inlineCompensationReused = false;  ///< Cache replayed the caller walk.
    PipelineRun pipelineRun;        ///< Per-stage diagnostics.

    double selectedPrePercent() const {
        return graphNodes == 0 ? 0.0
                               : 100.0 * static_cast<double>(selectedPre) /
                                     static_cast<double>(graphNodes);
    }
    double selectedFinalPercent() const {
        return graphNodes == 0 ? 0.0
                               : 100.0 * static_cast<double>(selectedFinal) /
                                     static_cast<double>(graphNodes);
    }
};

/// Runs the complete selection phase. Throws on spec errors.
SelectionReport runSelection(const cg::CallGraph& graph,
                             const SelectionOptions& options);

}  // namespace capi::select
