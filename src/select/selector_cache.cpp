#include "select/selector_cache.hpp"

#include "support/hash.hpp"

namespace capi::select {

namespace {

std::uint64_t keyOf(std::uint64_t generation, std::uint64_t selectorHash) {
    return support::hashCombine(generation, selectorHash);
}

}  // namespace

void SelectorCache::invalidateOthersLocked(std::uint64_t generation) {
    if (generation == lastGeneration_) {
        return;
    }
    for (auto it = entries_.begin(); it != entries_.end();) {
        if (it->second.generation != generation) {
            it = entries_.erase(it);
            ++stats_.invalidations;
        } else {
            ++it;
        }
    }
    std::deque<std::uint64_t> surviving;
    for (std::uint64_t key : insertionOrder_) {
        if (entries_.count(key) != 0) {
            surviving.push_back(key);
        }
    }
    insertionOrder_ = std::move(surviving);
    lastGeneration_ = generation;
}

std::shared_ptr<const FunctionSet> SelectorCache::lookup(
    std::uint64_t graphGeneration, std::uint64_t selectorHash) {
    std::lock_guard<std::mutex> lock(mutex_);
    invalidateOthersLocked(graphGeneration);
    auto it = entries_.find(keyOf(graphGeneration, selectorHash));
    if (it == entries_.end()) {
        ++stats_.misses;
        return nullptr;
    }
    ++stats_.hits;
    return it->second.result;
}

void SelectorCache::store(std::uint64_t graphGeneration,
                          std::uint64_t selectorHash,
                          const FunctionSet& result) {
    if (maxEntries_ == 0) {
        return;  // Immutable after construction; safe to check unlocked.
    }
    // Copy the bitset before taking the lock so concurrent stages don't
    // serialize on a ~51KB memcpy.
    auto shared = std::make_shared<const FunctionSet>(result);
    std::lock_guard<std::mutex> lock(mutex_);
    invalidateOthersLocked(graphGeneration);
    std::uint64_t key = keyOf(graphGeneration, selectorHash);
    if (entries_.count(key) != 0) {
        return;  // Concurrent stage already stored the identical result.
    }
    while (entries_.size() >= maxEntries_ && !insertionOrder_.empty()) {
        // Oldest-first eviction; the key may already be gone if a generation
        // purge removed it, so erase() on a miss is a harmless no-op.
        if (entries_.erase(insertionOrder_.front()) != 0) {
            ++stats_.evictions;
        }
        insertionOrder_.pop_front();
    }
    entries_.emplace(key, Entry{graphGeneration, std::move(shared)});
    insertionOrder_.push_back(key);
    ++stats_.insertions;
}

void SelectorCache::clear() {
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.clear();
    insertionOrder_.clear();
}

std::size_t SelectorCache::size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

SelectorCache::Stats SelectorCache::stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

}  // namespace capi::select
