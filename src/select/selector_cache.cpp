#include "select/selector_cache.hpp"

#include <algorithm>
#include <atomic>
#include <optional>

#include "cg/call_graph.hpp"
#include "cg/delta.hpp"
#include "obs/metrics.hpp"

namespace capi::select {

namespace {

/// The per-kind dirty sets one GraphDelta induces, sized to the post-delta
/// universe. Computed once per distinct entry generation in beginRun.
struct DirtyInfo {
    bool known = false;  ///< Journal covered the stamp; survival possible.
    bool entryChanged = false;
    bool universeGrew = false;
    bool descAny = false;
    bool metricsAny = false;
    bool edgesAny = false;
    support::DynamicBitset desc;
    support::DynamicBitset metrics;
    support::DynamicBitset edges;
};

DirtyInfo dirtyInfoFor(const cg::CallGraph& graph, std::uint64_t fromGeneration) {
    DirtyInfo info;
    std::optional<cg::GraphDelta> delta = graph.deltaSince(fromGeneration);
    if (!delta.has_value()) {
        return info;  // History gone: every entry at this stamp is purged.
    }
    const std::size_t universe = graph.size();
    info.known = true;
    info.entryChanged = delta->entryChanged;
    info.universeGrew = !delta->addedNodes.empty();
    info.desc = support::DynamicBitset(universe);
    info.metrics = support::DynamicBitset(universe);
    info.edges = support::DynamicBitset(universe);
    auto mark = [universe](support::DynamicBitset& bits, cg::FunctionId id) {
        if (id < universe) {
            bits.set(id);
        }
    };
    delta->forEachChange([&](cg::DeltaKind kind, cg::FunctionId a,
                             cg::FunctionId b) {
        switch (kind) {
            case cg::DeltaKind::NodeAdd:
            case cg::DeltaKind::NodeRemove:
                mark(info.desc, a);
                mark(info.metrics, a);
                mark(info.edges, a);
                break;
            case cg::DeltaKind::DescTouch:
                // A desc mutator may rewrite flags AND metrics; only the
                // name is pinned. Dirty for both kinds.
                mark(info.desc, a);
                mark(info.metrics, a);
                break;
            case cg::DeltaKind::MetricTouch:
                mark(info.metrics, a);
                break;
            case cg::DeltaKind::CallEdgeAdd:
            case cg::DeltaKind::CallEdgeRemove:
            case cg::DeltaKind::OverrideAdd:
            case cg::DeltaKind::OverrideRemove:
                mark(info.edges, a);
                mark(info.edges, b);
                break;
            case cg::DeltaKind::EntryChange:
                break;  // Carried by info.entryChanged; purges everything.
        }
    });
    info.descAny = info.desc.any() || info.universeGrew;
    info.metricsAny = info.metrics.any() || info.universeGrew;
    info.edgesAny = info.edges.any() || info.universeGrew;
    return info;
}

bool entrySurvives(const Footprint& fp, const DirtyInfo& dirty) {
    if (!dirty.known || dirty.entryChanged) {
        return false;
    }
    if (fp.universeDependent && dirty.universeGrew) {
        return false;
    }
    if ((fp.allDesc && dirty.descAny) || (fp.allMetrics && dirty.metricsAny) ||
        (fp.allEdges && dirty.edgesAny)) {
        return false;
    }
    // Per-kind intersection: each kind's bounded node set is checked only
    // against that kind's dirty set, so (say) a metric-only touch inside a
    // traversal's reachable region no longer purges the traversal.
    if (fp.readsDesc && fp.descNodes.intersects(dirty.desc)) {
        return false;
    }
    if (fp.readsMetrics && fp.metricNodes.intersects(dirty.metrics)) {
        return false;
    }
    if (fp.readsEdges && fp.edgeNodes.intersects(dirty.edges)) {
        return false;
    }
    return true;
}

}  // namespace

SelectorCache::SelectorCache(std::size_t maxEntries)
    : maxEntriesPerShard_(maxEntries == 0
                              ? 0
                              : std::max<std::size_t>(1, maxEntries / kShardCount)) {
    // Export totals and the per-shard breakdown through the process metrics
    // registry, labeled by a process-unique instance sequence so concurrent
    // caches stay distinguishable.
    static std::atomic<std::uint64_t> nextSeq{0};
    const std::uint64_t seq = nextSeq.fetch_add(1, std::memory_order_relaxed);
    metricsCollectorId_ = obs::MetricsRegistry::global().addCollector(
        [this, seq](std::vector<obs::Sample>& out) {
            const Stats totals = stats();
            const std::string base = "{cache=\"" + std::to_string(seq) + "\"}";
            auto counter = [&out](std::string name, std::uint64_t value) {
                out.push_back({std::move(name), obs::MetricKind::Counter,
                               static_cast<double>(value)});
            };
            counter("capi_select_cache_hits_total" + base, totals.hits);
            counter("capi_select_cache_misses_total" + base, totals.misses);
            counter("capi_select_cache_insertions_total" + base,
                    totals.insertions);
            counter("capi_select_cache_invalidations_total" + base,
                    totals.invalidations);
            counter("capi_select_cache_survivals_total" + base,
                    totals.survivals);
            counter("capi_select_cache_evictions_total" + base,
                    totals.evictions);
            out.push_back({"capi_select_cache_entries" + base,
                           obs::MetricKind::Gauge,
                           static_cast<double>(totals.entries)});
            for (std::size_t i = 0; i < totals.perShard.size(); ++i) {
                const ShardStats& shard = totals.perShard[i];
                const std::string labels = "{cache=\"" + std::to_string(seq) +
                                           "\",shard=\"" + std::to_string(i) +
                                           "\"}";
                counter("capi_select_cache_shard_hits_total" + labels,
                        shard.hits);
                counter("capi_select_cache_shard_survivals_total" + labels,
                        shard.survivals);
                counter("capi_select_cache_shard_invalidations_total" + labels,
                        shard.invalidations);
                out.push_back({"capi_select_cache_shard_entries" + labels,
                               obs::MetricKind::Gauge,
                               static_cast<double>(shard.entries)});
            }
        });
}

SelectorCache::~SelectorCache() {
    obs::MetricsRegistry::global().removeCollector(metricsCollectorId_);
}

void SelectorCache::beginRun(const cg::CallGraph& graph) {
    const std::uint64_t generation = graph.generation();
    const std::size_t universe = graph.size();
    // Lazily computed per distinct stale stamp; in the steady state every
    // stale entry shares the previous run's stamp, so this holds one value.
    std::unordered_map<std::uint64_t, DirtyInfo> dirtyByGeneration;
    // Widening (zeros for the new nodes) keeps FunctionSet equality usable
    // after a node-add: survivors need it for downstream word-level set
    // algebra, and stale re-validation anchors need it so a re-evaluated
    // stage that reproduces its old bits can still compare equal instead of
    // cascading purges through the %ref DAG. Copy-on-write — previous runs
    // may still hold the shared result.
    auto widenResult = [universe](Entry& entry) {
        if (entry.result->universe() < universe) {
            auto widened = std::make_shared<FunctionSet>(*entry.result);
            widened->bits().resize(universe);
            entry.result = std::move(widened);
        }
    };
    for (Shard& shard : shards_) {
        std::lock_guard<std::mutex> lock(shard.mutex);
        for (auto& [key, entry] : shard.entries) {
            if (entry.stale || entry.generation == generation) {
                if (entry.stale) {
                    widenResult(entry);  // Universe may have grown again.
                }
                continue;
            }
            auto dirtyIt = dirtyByGeneration.find(entry.generation);
            if (dirtyIt == dirtyByGeneration.end()) {
                dirtyIt = dirtyByGeneration
                              .emplace(entry.generation,
                                       dirtyInfoFor(graph, entry.generation))
                              .first;
            }
            if (!entrySurvives(entry.footprint, dirtyIt->second)) {
                // Keep the bits as a stale re-validation anchor: when the
                // stage re-evaluates to identical output, its dependents
                // stay clean instead of cascading the purge down the DAG.
                entry.stale = true;
                widenResult(entry);
                ++shard.stats.invalidations;
                continue;
            }
            entry.generation = generation;
            // Survivors provably cannot contain any added node, so the
            // widened zeros are exact; the footprint widens with them.
            widenResult(entry);
            entry.footprint.resizeNodes(universe);
            ++shard.stats.survivals;
        }
    }
}

std::shared_ptr<const FunctionSet> SelectorCache::lookup(
    std::uint64_t graphGeneration, std::uint64_t selectorHash) {
    Shard& shard = shardFor(selectorHash);
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.entries.find(selectorHash);
    if (it == shard.entries.end() || it->second.stale ||
        it->second.generation != graphGeneration) {
        ++shard.stats.misses;
        return nullptr;
    }
    ++shard.stats.hits;
    return it->second.result;
}

std::shared_ptr<const FunctionSet> SelectorCache::previousResult(
    std::uint64_t selectorHash) {
    Shard& shard = shardFor(selectorHash);
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.entries.find(selectorHash);
    return it == shard.entries.end() ? nullptr : it->second.result;
}

void SelectorCache::store(std::uint64_t graphGeneration,
                          std::uint64_t selectorHash, const FunctionSet& result,
                          Footprint footprint) {
    if (maxEntriesPerShard_ == 0) {
        return;  // Immutable after construction; safe to check unlocked.
    }
    // Copy the bitset before taking the lock so concurrent stages don't
    // serialize on a ~51KB memcpy.
    auto shared = std::make_shared<const FunctionSet>(result);
    Shard& shard = shardFor(selectorHash);
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.entries.find(selectorHash);
    if (it != shard.entries.end()) {
        // Same stage re-evaluated (stale deps forced a recompute, or a
        // concurrent stage raced us): replace result and footprint in
        // place, keeping the eviction-order slot.
        it->second =
            Entry{graphGeneration, std::move(shared), std::move(footprint)};
        ++shard.stats.insertions;
        return;
    }
    while (shard.entries.size() >= maxEntriesPerShard_ &&
           !shard.insertionOrder.empty()) {
        // Oldest-first eviction; the key may already be gone if a purge
        // removed it, so erase() on a miss is a harmless no-op.
        if (shard.entries.erase(shard.insertionOrder.front()) != 0) {
            ++shard.stats.evictions;
        }
        shard.insertionOrder.pop_front();
    }
    shard.entries.emplace(
        selectorHash,
        Entry{graphGeneration, std::move(shared), std::move(footprint)});
    shard.insertionOrder.push_back(selectorHash);
    ++shard.stats.insertions;
}

void SelectorCache::clear() {
    for (Shard& shard : shards_) {
        std::lock_guard<std::mutex> lock(shard.mutex);
        shard.entries.clear();
        shard.insertionOrder.clear();
    }
}

std::size_t SelectorCache::size() const {
    std::size_t total = 0;
    for (const Shard& shard : shards_) {
        std::lock_guard<std::mutex> lock(shard.mutex);
        total += shard.entries.size();
    }
    return total;
}

SelectorCache::Stats SelectorCache::stats() const {
    Stats stats;
    stats.perShard.reserve(kShardCount);
    for (const Shard& shard : shards_) {
        std::lock_guard<std::mutex> lock(shard.mutex);
        ShardStats s = shard.stats;
        s.entries = shard.entries.size();
        stats.perShard.push_back(s);
        stats.hits += s.hits;
        stats.misses += s.misses;
        stats.insertions += s.insertions;
        stats.invalidations += s.invalidations;
        stats.survivals += s.survivals;
        stats.evictions += s.evictions;
        stats.entries += s.entries;
    }
    return stats;
}

}  // namespace capi::select
