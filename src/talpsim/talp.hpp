// TALP (Tracking Application Live Performance), the DLB monitoring module.
//
// Reproduces the TALP behaviour the paper integrates with (Sec. III-B):
//  * monitoring regions registered by name, started/stopped via handles;
//    regions may nest and overlap arbitrarily;
//  * registration requires MPI to be initialized on the calling rank —
//    regions entered before MPI_Init fail to register (the Sec. VI-B
//    limitation, counted explicitly);
//  * a PMPI interceptor attributes the virtual time spent inside each MPI
//    operation to every region currently open on that rank (this makes the
//    per-MPI-op cost grow with the number of open regions, which is why the
//    paper's `mpi` IC is more expensive under TALP than under Score-P);
//  * per-region POP efficiency metrics: parallel efficiency = communication
//    efficiency x load balance;
//  * an end-of-run text summary plus a runtime query API.
//
// An implicit "MPI Execution" region spans MPI_Init..MPI_Finalize, as in DLB.
//
// Threading: the per-event path (regionStart/regionStop/postOp attribution)
// is lock-free. As in MPI, each rank's calls must be serial (one driving
// thread per rank — MpiWorld's model); different ranks run concurrently
// without sharing cachelines. Per-rank region state lives in chunked
// stable-address arrays whose chunk pointers are published with release
// stores by the owning rank and read with acquire by aggregation; completed-
// visit accumulators are single-writer atomics, so metrics()/collectAll()
// may run concurrently with events. Only registration (rare, name-keyed)
// takes the exclusive mutex — the same first-sighting-only discipline as the
// cyg-profile address table.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "mpisim/mpi_world.hpp"

namespace capi::talp {

struct MonitorHandle {
    std::uint32_t id = 0;
    bool valid() const { return id != 0xFFFFFFFFu; }
    static MonitorHandle invalid() { return {0xFFFFFFFFu}; }
};

/// POP parallel-efficiency metrics of one region, aggregated over ranks.
struct PopMetrics {
    std::string name;
    int ranks = 0;
    std::uint64_t visits = 0;          ///< Total start/stop pairs over all ranks.
    double elapsedNs = 0.0;            ///< Max accumulated elapsed across ranks.
    double usefulAvgNs = 0.0;
    double usefulMaxNs = 0.0;
    double mpiAvgNs = 0.0;
    double communicationEfficiency = 0.0;  ///< usefulMax / elapsed.
    double loadBalance = 0.0;              ///< usefulAvg / usefulMax.
    double parallelEfficiency = 0.0;       ///< product of the two.
};

class TalpRuntime final : public mpi::PmpiInterceptor {
public:
    /// Installs itself as the world's PMPI interceptor.
    explicit TalpRuntime(mpi::MpiWorld& world);
    ~TalpRuntime() override;

    // --- DLB monitoring-region API -------------------------------------
    /// DLB_MonitoringRegionRegister: fails (invalid handle) when MPI is not
    /// initialized on this rank. Registering the same name twice returns the
    /// same handle.
    MonitorHandle regionRegister(const std::string& name, int rank);

    /// DLB_MonitoringRegionStart at the rank's current virtual time.
    bool regionStart(MonitorHandle handle, int rank, double virtualNow);
    /// DLB_MonitoringRegionStop.
    bool regionStop(MonitorHandle handle, int rank, double virtualNow);

    // --- PMPI hooks (called by MpiWorld) --------------------------------
    void preOp(int rank, mpi::OpKind op, double virtualNow) override;
    void postOp(int rank, mpi::OpKind op, double virtualNowAfter,
                double mpiNs) override;

    // --- results ---------------------------------------------------------
    /// Metrics of one region aggregated over all ranks (completed visits).
    std::optional<PopMetrics> metrics(const std::string& name) const;
    /// Runtime query API: all regions with at least one completed visit.
    std::vector<PopMetrics> collectAll() const;
    /// TALP-style end-of-run text summary.
    std::string report() const;

    std::size_t regionCount() const;

    // --- failure accounting (paper Sec. VI-B) ----------------------------
    std::uint64_t failedRegistrations() const {
        return failedRegistrations_.load(std::memory_order_relaxed);
    }
    std::uint64_t failedStarts() const {
        return failedStarts_.load(std::memory_order_relaxed);
    }
    std::uint64_t failedStops() const {
        return failedStops_.load(std::memory_order_relaxed);
    }

    static constexpr const char* kGlobalRegionName = "MPI Execution";

private:
    struct RankRegionState {
        // Open-visit bookkeeping: touched only by the owning rank's thread.
        int depth = 0;             ///< Nesting depth; outermost pair accounts.
        double startVirtualNs = 0.0;
        double mpiInsideNs = 0.0;
        // Accumulated over completed visits: single-writer atomics so
        // aggregation can read mid-run. `visits` is stored last with
        // release, so visits >= 1 under an acquire read implies the matching
        // accumulator values are visible.
        std::atomic<double> elapsedNs{0.0};
        std::atomic<double> usefulNs{0.0};
        std::atomic<double> mpiNs{0.0};
        std::atomic<std::uint64_t> visits{0};
    };

    /// Chunked stable-address per-rank region state (atomics pin addresses;
    /// registration never reallocates behind a running rank).
    static constexpr std::size_t kRegionChunkBits = 8;  // 256 per chunk
    static constexpr std::size_t kRegionChunkSize = 1u << kRegionChunkBits;
    static constexpr std::size_t kMaxRegionChunks = 1u << 8;  // 65536 regions

    struct RankData {
        /// Chunk pointers: release-published by the owning rank's thread on
        /// first touch, acquire-read by aggregation. nullptr = all zeroes.
        std::unique_ptr<std::atomic<RankRegionState*>[]> chunks;
        std::vector<std::uint32_t> openStack;  ///< Owning rank's thread only.
    };

    MonitorHandle registerLocked(const std::string& name);
    PopMetrics aggregate(std::uint32_t regionId) const;
    RankRegionState& rankRegionState(RankData& data, std::uint32_t regionId);
    static const RankRegionState* rankRegionStateIfAny(const RankData& data,
                                                       std::uint32_t regionId);

    mpi::MpiWorld* world_;

    mutable std::mutex mutex_;  ///< Registration + name table only.
    std::vector<std::string> regionNames_;
    std::unordered_map<std::string, std::uint32_t> regionByName_;
    /// Count released after the name is stored; per-event handle validation
    /// reads this instead of touching the name table.
    std::atomic<std::uint32_t> publishedRegions_{0};
    std::vector<RankData> ranks_;
    MonitorHandle globalRegion_ = MonitorHandle::invalid();

    std::atomic<std::uint64_t> failedRegistrations_{0};
    std::atomic<std::uint64_t> failedStarts_{0};
    std::atomic<std::uint64_t> failedStops_{0};
};

}  // namespace capi::talp
