#include "talpsim/talp.hpp"

#include <algorithm>

#include "support/error.hpp"
#include "support/strings.hpp"
#include "support/thread_cache.hpp"

namespace capi::talp {

TalpRuntime::TalpRuntime(mpi::MpiWorld& world) : world_(&world) {
    ranks_.resize(static_cast<std::size_t>(world.worldSize()));
    for (RankData& rank : ranks_) {
        rank.chunks = std::make_unique<std::atomic<RankRegionState*>[]>(
            kMaxRegionChunks);
        for (std::size_t i = 0; i < kMaxRegionChunks; ++i) {
            rank.chunks[i].store(nullptr, std::memory_order_relaxed);
        }
    }
    world_->setInterceptor(this);
}

TalpRuntime::~TalpRuntime() {
    world_->setInterceptor(nullptr);
    for (RankData& rank : ranks_) {
        for (std::size_t i = 0; i < kMaxRegionChunks; ++i) {
            delete[] rank.chunks[i].load(std::memory_order_relaxed);
        }
    }
}

TalpRuntime::RankRegionState& TalpRuntime::rankRegionState(
    RankData& data, std::uint32_t regionId) {
    std::size_t chunk = regionId >> kRegionChunkBits;
    RankRegionState* base = data.chunks[chunk].load(std::memory_order_acquire);
    if (base == nullptr) {
        // Only the owning rank's thread allocates its chunks, so a plain
        // release publish suffices (no CAS race to lose).
        base = new RankRegionState[kRegionChunkSize];
        data.chunks[chunk].store(base, std::memory_order_release);
    }
    return base[regionId & (kRegionChunkSize - 1)];
}

const TalpRuntime::RankRegionState* TalpRuntime::rankRegionStateIfAny(
    const RankData& data, std::uint32_t regionId) {
    std::size_t chunk = regionId >> kRegionChunkBits;
    const RankRegionState* base =
        data.chunks[chunk].load(std::memory_order_acquire);
    return base == nullptr ? nullptr : &base[regionId & (kRegionChunkSize - 1)];
}

MonitorHandle TalpRuntime::registerLocked(const std::string& name) {
    auto it = regionByName_.find(name);
    if (it != regionByName_.end()) {
        return MonitorHandle{it->second};
    }
    std::uint32_t id = static_cast<std::uint32_t>(regionNames_.size());
    if (id >= kMaxRegionChunks * kRegionChunkSize) {
        throw support::Error("TALP: monitoring region space exhausted");
    }
    regionNames_.push_back(name);
    regionByName_.emplace(name, id);
    // Publish after the name is fully stored; per-event validation only ever
    // reads this count.
    publishedRegions_.store(id + 1, std::memory_order_release);
    return MonitorHandle{id};
}

MonitorHandle TalpRuntime::regionRegister(const std::string& name, int rank) {
    std::lock_guard<std::mutex> lock(mutex_);
    // TALP requires MPI to be initialized before regions can be registered
    // (paper Sec. VI-B): regions entered before MPI_Init are not recorded.
    if (!world_->initialized(rank)) {
        failedRegistrations_.fetch_add(1, std::memory_order_relaxed);
        return MonitorHandle::invalid();
    }
    return registerLocked(name);
}

bool TalpRuntime::regionStart(MonitorHandle handle, int rank, double virtualNow) {
    if (!handle.valid() ||
        handle.id >= publishedRegions_.load(std::memory_order_acquire) ||
        rank < 0 || static_cast<std::size_t>(rank) >= ranks_.size()) {
        failedStarts_.fetch_add(1, std::memory_order_relaxed);
        return false;
    }
    RankData& data = ranks_[static_cast<std::size_t>(rank)];
    RankRegionState& state = rankRegionState(data, handle.id);
    if (++state.depth == 1) {
        state.startVirtualNs = virtualNow;
        state.mpiInsideNs = 0.0;
        data.openStack.push_back(handle.id);
    }
    return true;
}

bool TalpRuntime::regionStop(MonitorHandle handle, int rank, double virtualNow) {
    if (!handle.valid() ||
        handle.id >= publishedRegions_.load(std::memory_order_acquire) ||
        rank < 0 || static_cast<std::size_t>(rank) >= ranks_.size()) {
        failedStops_.fetch_add(1, std::memory_order_relaxed);
        return false;
    }
    RankData& data = ranks_[static_cast<std::size_t>(rank)];
    RankRegionState& state = rankRegionState(data, handle.id);
    if (state.depth == 0) {
        failedStops_.fetch_add(1, std::memory_order_relaxed);
        return false;  // Stop without a matching start.
    }
    if (--state.depth == 0) {
        double elapsed = virtualNow - state.startVirtualNs;
        if (elapsed < 0) {
            elapsed = 0;
        }
        support::singleWriterAdd(state.elapsedNs, elapsed);
        support::singleWriterAdd(state.mpiNs, state.mpiInsideNs);
        double useful = elapsed - state.mpiInsideNs;
        support::singleWriterAdd(state.usefulNs, useful > 0 ? useful : 0.0);
        // Released last so a reader that acquires the visit count also sees
        // the accumulators above.
        support::singleWriterAdd<std::uint64_t>(state.visits, 1,
                                                std::memory_order_release);
        auto it = std::find(data.openStack.rbegin(), data.openStack.rend(),
                            handle.id);
        if (it != data.openStack.rend()) {
            data.openStack.erase(std::next(it).base());
        }
    }
    return true;
}

void TalpRuntime::preOp(int rank, mpi::OpKind op, double virtualNow) {
    if (op == mpi::OpKind::Finalize) {
        // Close the implicit global region before MPI shuts down.
        MonitorHandle global;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            global = globalRegion_;
        }
        if (global.valid()) {
            regionStop(global, rank, virtualNow);
        }
    }
}

void TalpRuntime::postOp(int rank, mpi::OpKind op, double virtualNowAfter,
                         double mpiNs) {
    if (op == mpi::OpKind::Init) {
        MonitorHandle global;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            globalRegion_ = registerLocked(kGlobalRegionName);
            global = globalRegion_;
        }
        regionStart(global, rank, virtualNowAfter);
        return;
    }
    // Attribute this operation's MPI time to every region currently open on
    // the rank. This walk is what makes TALP's per-MPI-op cost scale with
    // the number of open monitoring regions. It runs on the rank's own
    // thread over rank-private state: no lock.
    if (rank < 0 || static_cast<std::size_t>(rank) >= ranks_.size()) {
        return;
    }
    RankData& data = ranks_[static_cast<std::size_t>(rank)];
    for (std::uint32_t regionId : data.openStack) {
        rankRegionState(data, regionId).mpiInsideNs += mpiNs;
    }
}

PopMetrics TalpRuntime::aggregate(std::uint32_t regionId) const {
    PopMetrics metrics;
    metrics.name = regionNames_[regionId];
    double usefulSum = 0.0;
    for (const RankData& rank : ranks_) {
        const RankRegionState* state = rankRegionStateIfAny(rank, regionId);
        if (state == nullptr) {
            continue;
        }
        std::uint64_t visits = state->visits.load(std::memory_order_acquire);
        if (visits == 0) {
            continue;
        }
        ++metrics.ranks;
        metrics.visits += visits;
        double elapsed = state->elapsedNs.load(std::memory_order_relaxed);
        double useful = state->usefulNs.load(std::memory_order_relaxed);
        metrics.elapsedNs = std::max(metrics.elapsedNs, elapsed);
        metrics.usefulMaxNs = std::max(metrics.usefulMaxNs, useful);
        usefulSum += useful;
        metrics.mpiAvgNs += state->mpiNs.load(std::memory_order_relaxed);
    }
    if (metrics.ranks == 0) {
        return metrics;
    }
    metrics.usefulAvgNs = usefulSum / metrics.ranks;
    metrics.mpiAvgNs /= metrics.ranks;
    if (metrics.elapsedNs > 0) {
        metrics.communicationEfficiency = metrics.usefulMaxNs / metrics.elapsedNs;
    }
    if (metrics.usefulMaxNs > 0) {
        metrics.loadBalance = metrics.usefulAvgNs / metrics.usefulMaxNs;
    }
    metrics.parallelEfficiency =
        metrics.communicationEfficiency * metrics.loadBalance;
    return metrics;
}

std::optional<PopMetrics> TalpRuntime::metrics(const std::string& name) const {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = regionByName_.find(name);
    if (it == regionByName_.end()) {
        return std::nullopt;
    }
    return aggregate(it->second);
}

std::vector<PopMetrics> TalpRuntime::collectAll() const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<PopMetrics> all;
    for (std::uint32_t id = 0; id < regionNames_.size(); ++id) {
        PopMetrics m = aggregate(id);
        if (m.visits > 0) {
            all.push_back(std::move(m));
        }
    }
    return all;
}

std::size_t TalpRuntime::regionCount() const {
    return publishedRegions_.load(std::memory_order_acquire);
}

std::string TalpRuntime::report() const {
    std::vector<PopMetrics> all = collectAll();
    std::string out = "======= TALP monitoring regions =======\n";
    for (const PopMetrics& m : all) {
        out += "Region \"" + m.name + "\" (" + std::to_string(m.ranks) + " ranks, " +
               std::to_string(m.visits) + " visits)\n";
        out += "  elapsed: " + support::fixed(m.elapsedNs / 1e6, 3) + " ms";
        out += ", useful avg: " + support::fixed(m.usefulAvgNs / 1e6, 3) + " ms";
        out += ", MPI avg: " + support::fixed(m.mpiAvgNs / 1e6, 3) + " ms\n";
        out += "  parallel efficiency: " + support::fixed(m.parallelEfficiency, 3);
        out += "  (communication: " + support::fixed(m.communicationEfficiency, 3);
        out += ", load balance: " + support::fixed(m.loadBalance, 3) + ")\n";
    }
    return out;
}

}  // namespace capi::talp
