#include "talpsim/talp.hpp"

#include <algorithm>

#include "support/strings.hpp"

namespace capi::talp {

TalpRuntime::TalpRuntime(mpi::MpiWorld& world) : world_(&world) {
    ranks_.resize(static_cast<std::size_t>(world.worldSize()));
    world_->setInterceptor(this);
}

TalpRuntime::~TalpRuntime() {
    world_->setInterceptor(nullptr);
}

MonitorHandle TalpRuntime::registerLocked(const std::string& name) {
    auto it = regionByName_.find(name);
    if (it != regionByName_.end()) {
        return MonitorHandle{it->second};
    }
    std::uint32_t id = static_cast<std::uint32_t>(regionNames_.size());
    regionNames_.push_back(name);
    regionByName_.emplace(name, id);
    for (RankData& rank : ranks_) {
        rank.regions.resize(regionNames_.size());
    }
    return MonitorHandle{id};
}

MonitorHandle TalpRuntime::regionRegister(const std::string& name, int rank) {
    std::lock_guard<std::mutex> lock(mutex_);
    // TALP requires MPI to be initialized before regions can be registered
    // (paper Sec. VI-B): regions entered before MPI_Init are not recorded.
    if (!world_->initialized(rank)) {
        ++failedRegistrations_;
        return MonitorHandle::invalid();
    }
    return registerLocked(name);
}

bool TalpRuntime::regionStart(MonitorHandle handle, int rank, double virtualNow) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!handle.valid() || handle.id >= regionNames_.size() || rank < 0 ||
        static_cast<std::size_t>(rank) >= ranks_.size()) {
        ++failedStarts_;
        return false;
    }
    RankData& data = ranks_[static_cast<std::size_t>(rank)];
    RankRegionState& state = data.regions[handle.id];
    if (++state.depth == 1) {
        state.startVirtualNs = virtualNow;
        state.mpiInsideNs = 0.0;
        data.openStack.push_back(handle.id);
    }
    return true;
}

bool TalpRuntime::regionStop(MonitorHandle handle, int rank, double virtualNow) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!handle.valid() || handle.id >= regionNames_.size() || rank < 0 ||
        static_cast<std::size_t>(rank) >= ranks_.size()) {
        ++failedStops_;
        return false;
    }
    RankData& data = ranks_[static_cast<std::size_t>(rank)];
    RankRegionState& state = data.regions[handle.id];
    if (state.depth == 0) {
        ++failedStops_;  // Stop without a matching start.
        return false;
    }
    if (--state.depth == 0) {
        double elapsed = virtualNow - state.startVirtualNs;
        if (elapsed < 0) {
            elapsed = 0;
        }
        state.elapsedNs += elapsed;
        state.mpiNs += state.mpiInsideNs;
        double useful = elapsed - state.mpiInsideNs;
        state.usefulNs += useful > 0 ? useful : 0;
        state.visits += 1;
        auto it = std::find(data.openStack.rbegin(), data.openStack.rend(), handle.id);
        if (it != data.openStack.rend()) {
            data.openStack.erase(std::next(it).base());
        }
    }
    return true;
}

void TalpRuntime::preOp(int rank, mpi::OpKind op, double virtualNow) {
    if (op == mpi::OpKind::Finalize) {
        // Close the implicit global region before MPI shuts down.
        MonitorHandle global;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            global = globalRegion_;
        }
        if (global.valid()) {
            regionStop(global, rank, virtualNow);
        }
    }
}

void TalpRuntime::postOp(int rank, mpi::OpKind op, double virtualNowAfter,
                         double mpiNs) {
    if (op == mpi::OpKind::Init) {
        MonitorHandle global;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            globalRegion_ = registerLocked(kGlobalRegionName);
            global = globalRegion_;
        }
        regionStart(global, rank, virtualNowAfter);
        return;
    }
    // Attribute this operation's MPI time to every region currently open on
    // the rank. This walk is what makes TALP's per-MPI-op cost scale with
    // the number of open monitoring regions.
    std::lock_guard<std::mutex> lock(mutex_);
    if (rank < 0 || static_cast<std::size_t>(rank) >= ranks_.size()) {
        return;
    }
    RankData& data = ranks_[static_cast<std::size_t>(rank)];
    for (std::uint32_t regionId : data.openStack) {
        data.regions[regionId].mpiInsideNs += mpiNs;
    }
}

PopMetrics TalpRuntime::aggregate(std::uint32_t regionId) const {
    PopMetrics metrics;
    metrics.name = regionNames_[regionId];
    double usefulSum = 0.0;
    for (const RankData& rank : ranks_) {
        const RankRegionState& state = rank.regions[regionId];
        if (state.visits == 0) {
            continue;
        }
        ++metrics.ranks;
        metrics.visits += state.visits;
        metrics.elapsedNs = std::max(metrics.elapsedNs, state.elapsedNs);
        metrics.usefulMaxNs = std::max(metrics.usefulMaxNs, state.usefulNs);
        usefulSum += state.usefulNs;
        metrics.mpiAvgNs += state.mpiNs;
    }
    if (metrics.ranks == 0) {
        return metrics;
    }
    metrics.usefulAvgNs = usefulSum / metrics.ranks;
    metrics.mpiAvgNs /= metrics.ranks;
    if (metrics.elapsedNs > 0) {
        metrics.communicationEfficiency = metrics.usefulMaxNs / metrics.elapsedNs;
    }
    if (metrics.usefulMaxNs > 0) {
        metrics.loadBalance = metrics.usefulAvgNs / metrics.usefulMaxNs;
    }
    metrics.parallelEfficiency =
        metrics.communicationEfficiency * metrics.loadBalance;
    return metrics;
}

std::optional<PopMetrics> TalpRuntime::metrics(const std::string& name) const {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = regionByName_.find(name);
    if (it == regionByName_.end()) {
        return std::nullopt;
    }
    return aggregate(it->second);
}

std::vector<PopMetrics> TalpRuntime::collectAll() const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<PopMetrics> all;
    for (std::uint32_t id = 0; id < regionNames_.size(); ++id) {
        PopMetrics m = aggregate(id);
        if (m.visits > 0) {
            all.push_back(std::move(m));
        }
    }
    return all;
}

std::size_t TalpRuntime::regionCount() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return regionNames_.size();
}

std::string TalpRuntime::report() const {
    std::vector<PopMetrics> all = collectAll();
    std::string out = "======= TALP monitoring regions =======\n";
    for (const PopMetrics& m : all) {
        out += "Region \"" + m.name + "\" (" + std::to_string(m.ranks) + " ranks, " +
               std::to_string(m.visits) + " visits)\n";
        out += "  elapsed: " + support::fixed(m.elapsedNs / 1e6, 3) + " ms";
        out += ", useful avg: " + support::fixed(m.usefulAvgNs / 1e6, 3) + " ms";
        out += ", MPI avg: " + support::fixed(m.mpiAvgNs / 1e6, 3) + " ms\n";
        out += "  parallel efficiency: " + support::fixed(m.parallelEfficiency, 3);
        out += "  (communication: " + support::fixed(m.communicationEfficiency, 3);
        out += ", load balance: " + support::fixed(m.loadBalance, 3) + ")\n";
    }
    return out;
}

}  // namespace capi::talp
