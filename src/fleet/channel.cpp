#include "fleet/channel.hpp"

#include <algorithm>
#include <chrono>

namespace capi::fleet {

SendResult Channel::send(std::vector<std::uint8_t> frame) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (queue_.size() >= capacity_ && !closed_) {
        ++stats_.stalls;
        spaceCv_.wait(lock,
                      [this] { return queue_.size() < capacity_ || closed_; });
    }
    if (closed_) {
        return SendResult::Closed;
    }
    stats_.bytesEnqueued += frame.size();
    ++stats_.enqueued;
    queue_.push_back(std::move(frame));
    stats_.depth = queue_.size();
    stats_.maxDepth = std::max(stats_.maxDepth, stats_.depth);
    frameCv_.notify_one();
    return SendResult::Ok;
}

SendResult Channel::trySend(std::vector<std::uint8_t> frame) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_) {
        return SendResult::Closed;
    }
    if (queue_.size() >= capacity_) {
        ++stats_.rejected;
        return SendResult::Backpressure;
    }
    stats_.bytesEnqueued += frame.size();
    ++stats_.enqueued;
    queue_.push_back(std::move(frame));
    stats_.depth = queue_.size();
    stats_.maxDepth = std::max(stats_.maxDepth, stats_.depth);
    frameCv_.notify_one();
    return SendResult::Ok;
}

std::optional<std::vector<std::uint8_t>> Channel::receive() {
    std::unique_lock<std::mutex> lock(mutex_);
    frameCv_.wait(lock, [this] { return !queue_.empty() || closed_; });
    if (queue_.empty()) {
        return std::nullopt;  // closed and drained
    }
    std::vector<std::uint8_t> frame = std::move(queue_.front());
    queue_.pop_front();
    ++stats_.dequeued;
    stats_.depth = queue_.size();
    spaceCv_.notify_one();
    return frame;
}

std::optional<std::vector<std::uint8_t>> Channel::receiveFor(
    std::uint64_t timeoutNs) {
    std::unique_lock<std::mutex> lock(mutex_);
    frameCv_.wait_for(lock, std::chrono::nanoseconds(timeoutNs),
                      [this] { return !queue_.empty() || closed_; });
    if (queue_.empty()) {
        return std::nullopt;  // timed out, or closed and drained
    }
    std::vector<std::uint8_t> frame = std::move(queue_.front());
    queue_.pop_front();
    ++stats_.dequeued;
    stats_.depth = queue_.size();
    spaceCv_.notify_one();
    return frame;
}

std::optional<std::vector<std::uint8_t>> Channel::tryReceive() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (queue_.empty()) {
        return std::nullopt;
    }
    std::vector<std::uint8_t> frame = std::move(queue_.front());
    queue_.pop_front();
    ++stats_.dequeued;
    stats_.depth = queue_.size();
    spaceCv_.notify_one();
    return frame;
}

void Channel::close() {
    {
        std::lock_guard<std::mutex> lock(mutex_);
        closed_ = true;
    }
    spaceCv_.notify_all();
    frameCv_.notify_all();
}

bool Channel::closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
}

ChannelStats Channel::stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    ChannelStats out = stats_;
    out.depth = queue_.size();
    out.capacity = capacity_;
    return out;
}

}  // namespace capi::fleet
