#include "fleet/aggregator.hpp"

#include <algorithm>
#include <atomic>
#include <utility>

#include "cg/call_graph.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/fault.hpp"
#include "support/log.hpp"
#include "support/timer.hpp"

namespace capi::fleet {

namespace {

struct FleetSpanNames {
    std::uint32_t epoch;
    std::uint32_t merge;
    std::uint32_t plan;
    std::uint32_t broadcast;
    std::uint32_t evict;
    std::uint32_t resume;
    std::uint32_t checkpoint;
    std::uint32_t restore;
};

const FleetSpanNames& fleetSpanNames() {
    static const FleetSpanNames names = [] {
        obs::TraceRecorder& r = obs::TraceRecorder::global();
        return FleetSpanNames{r.internName("fleet.epoch"),
                              r.internName("fleet.merge"),
                              r.internName("fleet.plan"),
                              r.internName("fleet.broadcast"),
                              r.internName("fleet.evict"),
                              r.internName("fleet.resume"),
                              r.internName("fleet.checkpoint"),
                              r.internName("fleet.restore")};
    }();
    return names;
}

}  // namespace

Aggregator::Aggregator(const cg::CallGraph& graph,
                       select::InstrumentationConfig surveyIc,
                       AggregatorOptions options)
    : graph_(&graph),
      options_(std::move(options)),
      data_(options_.dataQueueCapacity),
      model_(options_.config),
      planner_(graph),
      surveyIc_(std::move(surveyIc)),
      obsEventsAtLastEpoch_(obs::TraceRecorder::global().recordedEvents()) {
    // The fleet converges from the same starting point every client's
    // controller starts from: the survey policy, fully instrumented.
    currentIc_ = surveyIc_;
    currentPolicy_ = select::InstrumentationPolicy::fullOf(currentIc_);

    static std::atomic<std::uint64_t> nextSeq{0};
    const std::uint64_t seq = nextSeq.fetch_add(1, std::memory_order_relaxed);
    metricsCollectorId_ = obs::MetricsRegistry::global().addCollector(
        [this, seq](std::vector<obs::Sample>& out) {
            AggregatorStats snapshot;
            std::size_t clients = 0;
            std::uint64_t epochs = 0;
            {
                std::lock_guard<std::mutex> lock(mutex_);
                snapshot = stats_;
                clients = clients_.size();
                epochs = epochsCompleted_;
            }
            const ChannelStats queue = data_.stats();
            const std::string base = "{agg=\"" + std::to_string(seq) + "\"}";
            auto counter = [&out, &base](const char* name,
                                         std::uint64_t value) {
                obs::Sample s;
                s.name = std::string(name) + base;
                s.kind = obs::MetricKind::Counter;
                s.value = static_cast<double>(value);
                out.push_back(std::move(s));
            };
            auto gauge = [&out, &base](const char* name, double value) {
                obs::Sample s;
                s.name = std::string(name) + base;
                s.kind = obs::MetricKind::Gauge;
                s.value = value;
                out.push_back(std::move(s));
            };
            counter("capi_fleet_frames_merged_total", snapshot.framesMerged);
            counter("capi_fleet_bytes_in_total", snapshot.bytesIn);
            counter("capi_fleet_bytes_out_total", snapshot.bytesOut);
            counter("capi_fleet_epochs_total", epochs);
            counter("capi_fleet_decode_errors_total", snapshot.decodeErrors);
            counter("capi_fleet_resyncs_total", snapshot.resyncs);
            counter("capi_fleet_backpressure_stalls_total", queue.stalls);
            counter("capi_fleet_dropped_deltas_total", queue.rejected);
            counter("capi_fleet_timeout_epochs_total", snapshot.timeoutEpochs);
            counter("capi_fleet_evictions_total", snapshot.evictions);
            counter("capi_fleet_resumes_total",
                    snapshot.resumes + snapshot.sessionResumes);
            counter("capi_fleet_checkpoints_total", snapshot.checkpoints);
            counter("capi_fleet_checkpoint_bytes_total",
                    snapshot.checkpointBytes);
            gauge("capi_fleet_queue_depth", static_cast<double>(queue.depth));
            gauge("capi_fleet_clients", static_cast<double>(clients));
        });
}

Aggregator::Aggregator(const cg::CallGraph& graph,
                       select::InstrumentationConfig surveyIc,
                       const std::vector<std::uint8_t>& snapshot,
                       AggregatorOptions options)
    : Aggregator(graph, std::move(surveyIc), std::move(options)) {
    obs::ScopedSpan restoreSpan(fleetSpanNames().restore,
                                obs::SpanCategory::Fleet);
    restoreSpan.setArg(snapshot.size());
    restoreFromSnapshot(decodeSnapshotFrame(snapshot));
}

void Aggregator::restoreFromSnapshot(const SnapshotFrame& snap) {
    // Construction is single-threaded; no lock needed.
    const std::uint64_t expectedSurvey =
        select::InstrumentationPolicy::fullOf(surveyIc_).fingerprint();
    if (snap.surveyFingerprint != expectedSurvey) {
        throw WireError("snapshot was taken against a different survey");
    }

    incarnation_ = snap.incarnation + 1;
    epochsCompleted_ = snap.epochsCompleted;
    nextClientId_ = snap.nextClientId;
    safeMode_ = snap.safeMode;
    overBudgetStreak_ = static_cast<std::size_t>(snap.overBudgetStreak);
    inBudgetStreak_ = static_cast<std::size_t>(snap.inBudgetStreak);
    lastRatio_ = snap.lastRatio;
    lastBudgetNs_ = snap.lastBudgetNs;
    lastWithinBudget_ = snap.lastWithinBudget;
    currentPolicy_ = snap.currentPolicy;
    currentIc_ = currentPolicy_.patchSet();

    regionNames_ = snap.regionNames;
    for (std::size_t i = 0; i < regionNames_.size(); ++i) {
        auto [it, inserted] = regionIds_.try_emplace(
            regionNames_[i], static_cast<scorep::RegionHandle>(i));
        if (!inserted) {
            throw WireError("snapshot has duplicate region name");
        }
    }

    // Replay the tree shape in node-id order: childOf assigns ids
    // sequentially, so each created node must land exactly where the
    // snapshot says it was — a duplicate (parent, region) pair or any other
    // shape inconsistency shows up as an id mismatch, rejected typed.
    for (std::size_t i = 0; i < snap.nodes.size(); ++i) {
        const SnapshotNode& node = snap.nodes[i];
        const std::size_t id = fleetTree_.childOf(node.parent, node.region);
        if (id != i + 1) {
            throw WireError("snapshot tree shape is inconsistent");
        }
        scorep::ProfileNodeRef ref = fleetTree_.node(id);
        ref.visits = node.visits;
        ref.inclusiveNs = node.inclusiveNs;
    }

    lastTotals_.clear();
    for (const auto& [name, totals] : snap.lastTotals) {
        lastTotals_.emplace(name, totals);
    }
    model_.restoreState(snap.model);

    for (const SnapshotClient& sc : snap.clients) {
        ClientState state;
        state.id = sc.id;
        state.policyChannel =
            std::make_unique<Channel>(options_.policyQueueCapacity);
        state.idMap = sc.idMap;
        state.regionMap = sc.regionMap;
        state.acked = sc.watermark;
        for (const auto& [handle, count] : sc.suppressedAcked) {
            state.suppressedAcked.emplace(handle, count);
        }
        state.runtimeAckedNs = sc.runtimeAckedNs;
        state.epochsAcked = sc.epochsAcked;
        state.lastSentPolicy = sc.lastSentPolicy;
        state.needsBaseline = sc.needsBaseline;
        state.evicted = sc.evicted;
        state.missedEpochs = sc.missedEpochs;
        for (const std::vector<std::uint8_t>& bytes : sc.pending) {
            state.pending.push_back(decodeDeltaFrame(bytes));
        }
        clients_.emplace(state.id, std::move(state));
    }

    bool anyPending = false;
    for (const auto& [id, client] : clients_) {
        if (!client.evicted && !client.pending.empty()) {
            anyPending = true;
        }
    }
    epochOpenedAtNs_ = anyPending ? support::nowNs() : 0;

    // Self-cost billing restarts from the recorder's current position: the
    // events of the dead incarnation died with it.
    obsEventsAtLastEpoch_ = obs::TraceRecorder::global().recordedEvents();
    stats_.restores = 1;
}

Aggregator::~Aggregator() {
    obs::MetricsRegistry::global().removeCollector(metricsCollectorId_);
    stop();
}

Aggregator::Session Aggregator::connect() {
    std::lock_guard<std::mutex> lock(mutex_);
    ClientState state;
    state.id = nextClientId_++;
    state.policyChannel = std::make_unique<Channel>(options_.policyQueueCapacity);
    state.idMap.push_back(static_cast<std::uint32_t>(fleetTree_.root()));
    state.needsBaseline = true;
    auto [it, inserted] = clients_.emplace(state.id, std::move(state));
    ++stats_.clientsConnected;
    // Late-joiner catch-up, half one: a full-policy baseline so the client
    // converges onto the fleet's current policy before its first epoch.
    PolicyFrame base;
    base.epoch = epochsCompleted_;
    base.fingerprint = currentPolicy_.fingerprint();
    base.measuredOverheadRatio = lastRatio_;
    base.budgetNs = lastBudgetNs_;
    base.withinBudget = lastWithinBudget_;
    sendPolicyTo(it->second, base);
    return Session{it->first, it->second.policyChannel.get()};
}

Aggregator::Session Aggregator::resume(std::uint64_t clientId) {
    // The handshake itself can be lost in transit — same site as a client's
    // dropped data frame; the client retries under backoff.
    if (support::fault::shouldFail(support::fault::sites::kFleetFrameDrop)) {
        throw WireError("injected: resume handshake dropped");
    }
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = clients_.find(clientId);
    if (it == clients_.end()) {
        throw WireError("resume for unknown session");
    }
    ClientState& client = it->second;
    // Fresh policy channel: whatever was queued (or lost) on the old one is
    // summarized by lastPolicyFingerprint — the client resyncs if its own
    // policy does not match.
    client.policyChannel->close();
    parkedChannels_.push_back(std::move(client.policyChannel));
    client.policyChannel =
        std::make_unique<Channel>(options_.policyQueueCapacity);
    client.evicted = false;
    client.missedEpochs = 0;
    ++stats_.sessionResumes;
    obs::TraceRecorder::global().recordInstant(fleetSpanNames().resume,
                                               obs::SpanCategory::Fleet,
                                               support::nowNs(), clientId);

    Session session;
    session.clientId = clientId;
    session.policyChannel = client.policyChannel.get();
    session.resumed = true;
    session.resume.watermark = client.acked;
    for (scorep::RegionHandle handle : client.regionMap) {
        session.resume.ackedRegions.push_back(handle != scorep::kNoRegion);
    }
    for (const auto& [handle, count] : client.suppressedAcked) {
        session.resume.suppressed.emplace_back(handle, count);
    }
    session.resume.runtimeNs = client.runtimeAckedNs;
    session.resume.coveredEpochs = client.epochsAcked;
    session.resume.lastPolicyFingerprint = client.lastSentPolicy.fingerprint();
    session.resume.incarnation = incarnation_;
    return session;
}

void Aggregator::disconnect(std::uint64_t clientId) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = clients_.find(clientId);
    if (it == clients_.end()) {
        return;
    }
    it->second.policyChannel->close();
    // The channel must outlive a client still blocked in receive(); park it
    // until destruction rather than freeing under a reader.
    parkedChannels_.push_back(std::move(it->second.policyChannel));
    clients_.erase(it);
    ++stats_.clientsDisconnected;
}

std::vector<std::uint8_t> Aggregator::checkpoint() {
    std::lock_guard<std::mutex> lock(mutex_);
    return checkpointLocked();
}

std::vector<std::uint8_t> Aggregator::checkpointLocked() {
    obs::ScopedSpan span(fleetSpanNames().checkpoint, obs::SpanCategory::Fleet);
    SnapshotFrame snap;
    snap.incarnation = incarnation_;
    snap.epochsCompleted = epochsCompleted_;
    snap.nextClientId = nextClientId_;
    snap.safeMode = safeMode_;
    snap.overBudgetStreak = overBudgetStreak_;
    snap.inBudgetStreak = inBudgetStreak_;
    snap.lastRatio = lastRatio_;
    snap.lastBudgetNs = lastBudgetNs_;
    snap.lastWithinBudget = lastWithinBudget_;
    snap.surveyFingerprint =
        select::InstrumentationPolicy::fullOf(surveyIc_).fingerprint();
    snap.currentPolicy = currentPolicy_;
    snap.regionNames = regionNames_;
    const scorep::ProfileTree& tree = fleetTree_;
    for (std::size_t i = 1; i < tree.nodeCount(); ++i) {
        const scorep::ProfileNode node = tree.node(i);
        snap.nodes.push_back(SnapshotNode{tree.parentOf(i), node.region,
                                          node.visits, node.inclusiveNs});
    }
    snap.lastTotals.assign(lastTotals_.begin(), lastTotals_.end());
    snap.model = model_.saveState();
    for (const auto& [id, client] : clients_) {
        SnapshotClient sc;
        sc.id = id;
        sc.evicted = client.evicted;
        sc.missedEpochs = client.missedEpochs;
        sc.needsBaseline = client.needsBaseline;
        sc.idMap = client.idMap;
        sc.regionMap = client.regionMap;
        sc.watermark = client.acked;
        sc.suppressedAcked.assign(client.suppressedAcked.begin(),
                                  client.suppressedAcked.end());
        sc.runtimeAckedNs = client.runtimeAckedNs;
        sc.epochsAcked = client.epochsAcked;
        sc.lastSentPolicy = client.lastSentPolicy;
        // Pending frames re-encode to their exact original bytes: the codec
        // is canonical, so decode-then-encode is the identity.
        for (const DeltaFrame& frame : client.pending) {
            sc.pending.push_back(encodeDeltaFrame(frame));
        }
        snap.clients.push_back(std::move(sc));
    }
    std::vector<std::uint8_t> bytes = encodeSnapshotFrame(snap);
    ++stats_.checkpoints;
    stats_.checkpointBytes += bytes.size();
    span.setArg(bytes.size());
    return bytes;
}

scorep::RegionHandle Aggregator::fleetHandleFor(ClientState& client,
                                                std::uint32_t clientHandle) {
    if (clientHandle >= client.regionMap.size()) {
        return scorep::kNoRegion;
    }
    return client.regionMap[clientHandle];
}

void Aggregator::handleFrame(const std::vector<std::uint8_t>& bytes) {
    FrameType type;
    try {
        type = frameTypeOf(bytes);
    } catch (const WireError&) {
        ++stats_.decodeErrors;
        return;
    }
    try {
        switch (type) {
            case FrameType::Delta: {
                DeltaFrame frame = decodeDeltaFrame(bytes);
                auto it = clients_.find(frame.clientId);
                if (it == clients_.end()) {
                    ++stats_.decodeErrors;  // frame from a departed client
                    return;
                }
                ClientState& client = it->second;
                // Register first-use region defs before validating the CCT
                // against them.
                for (const RegionDef& def : frame.newRegions) {
                    auto [nameIt, inserted] = regionIds_.try_emplace(
                        def.name,
                        static_cast<scorep::RegionHandle>(regionNames_.size()));
                    if (inserted) {
                        regionNames_.push_back(def.name);
                    }
                    if (def.handle >= client.regionMap.size()) {
                        client.regionMap.resize(def.handle + 1,
                                                scorep::kNoRegion);
                    }
                    client.regionMap[def.handle] = nameIt->second;
                }
                // Cross-frame validation: every referenced handle must have
                // been defined by now, and the node stream must continue
                // exactly at this client's acked watermark (NOT the id map,
                // which only advances at merge — pending frames may stack
                // ahead of it). A violation is a torn stream, not a torn
                // frame — drop it and let the client's next frame (or a
                // resync) recover.
                const std::size_t expectedBase =
                    client.acked.nodeCount > 0 ? client.acked.nodeCount : 1;
                if (frame.cct.baseNodeCount != expectedBase) {
                    ++stats_.decodeErrors;
                    return;
                }
                for (const scorep::CctNewNode& node : frame.cct.newNodes) {
                    if (fleetHandleFor(client, node.region) ==
                        scorep::kNoRegion) {
                        ++stats_.decodeErrors;
                        return;
                    }
                }
                for (const SuppressedDelta& entry : frame.suppressed) {
                    if (fleetHandleFor(client, entry.region) ==
                        scorep::kNoRegion) {
                        ++stats_.decodeErrors;
                        return;
                    }
                }
                stats_.bytesIn += bytes.size();
                // A delta from an evicted client IS its resume: the frame
                // base-checks against the acked watermark, so everything the
                // client accumulated while evicted arrives coalesced in it —
                // no catch-up handshake needed.
                if (client.evicted) {
                    client.evicted = false;
                    ++stats_.resumes;
                    obs::TraceRecorder::global().recordInstant(
                        fleetSpanNames().resume, obs::SpanCategory::Fleet,
                        support::nowNs(), client.id);
                }
                client.missedEpochs = 0;
                // Advance the acked mirror at ingest (the client advanced
                // its watermark when the send succeeded): checkpoints that
                // carry the pending queue stay self-consistent, and resume()
                // rewinds the client to exactly what arrived.
                if (client.acked.nodeCount == 0) {
                    client.acked.nodeCount = 1;
                    client.acked.visits.push_back(0);
                    client.acked.inclusiveNs.push_back(0);
                }
                for (std::size_t i = 0; i < frame.cct.newNodes.size(); ++i) {
                    client.acked.visits.push_back(0);
                    client.acked.inclusiveNs.push_back(0);
                }
                client.acked.nodeCount += frame.cct.newNodes.size();
                for (const scorep::CctNodeChange& change : frame.cct.changed) {
                    client.acked.visits[change.node] += change.visitsDelta;
                    client.acked.inclusiveNs[change.node] +=
                        change.inclusiveNsDelta;
                }
                for (const SuppressedDelta& entry : frame.suppressed) {
                    client.suppressedAcked[entry.region] += entry.visits;
                }
                client.runtimeAckedNs += frame.runtimeNs;
                client.epochsAcked += frame.coveredEpochs;
                client.pending.push_back(std::move(frame));
                if (epochOpenedAtNs_ == 0) {
                    epochOpenedAtNs_ = support::nowNs();
                }
                return;
            }
            case FrameType::Resync: {
                const std::uint64_t clientId =
                    decodeControlFrame(bytes, FrameType::Resync);
                auto it = clients_.find(clientId);
                if (it == clients_.end()) {
                    return;
                }
                ++stats_.resyncs;
                it->second.needsBaseline = true;
                // Answer immediately — the client is blocked waiting for a
                // baseline, not for the next epoch.
                PolicyFrame base;
                base.epoch = epochsCompleted_;
                base.fingerprint = currentPolicy_.fingerprint();
                base.measuredOverheadRatio = lastRatio_;
                base.budgetNs = lastBudgetNs_;
                base.withinBudget = lastWithinBudget_;
                sendPolicyTo(it->second, base);
                return;
            }
            case FrameType::Bye: {
                const std::uint64_t clientId =
                    decodeControlFrame(bytes, FrameType::Bye);
                auto it = clients_.find(clientId);
                if (it != clients_.end()) {
                    it->second.policyChannel->close();
                    parkedChannels_.push_back(
                        std::move(it->second.policyChannel));
                    clients_.erase(it);
                    ++stats_.clientsDisconnected;
                }
                return;
            }
            default:
                ++stats_.decodeErrors;  // policy frames never flow inbound
                return;
        }
    } catch (const WireError&) {
        ++stats_.decodeErrors;
    }
}

bool Aggregator::epochReady() const {
    std::size_t active = 0;
    for (const auto& [id, client] : clients_) {
        if (client.evicted) {
            continue;
        }
        if (client.pending.empty()) {
            return false;
        }
        ++active;
    }
    return active > 0;
}

bool Aggregator::timeoutClosable(std::uint64_t nowNs) const {
    const EpochPolicy& policy = options_.epochPolicy;
    if (policy.timeoutNs == 0 || policy.quorum == 0) {
        return false;  // strict mode: epochs never close on time
    }
    if (epochOpenedAtNs_ == 0 || nowNs - epochOpenedAtNs_ < policy.timeoutNs) {
        return false;
    }
    std::size_t ready = 0;
    for (const auto& [id, client] : clients_) {
        if (!client.evicted && !client.pending.empty()) {
            ++ready;
        }
    }
    return ready >= policy.quorum;
}

void Aggregator::closeEpoch(bool timedOut) {
    // The injected crash fires before ANY epoch state mutates: the crashed
    // incarnation's last checkpoint describes a clean epoch boundary, which
    // is what restore resumes from.
    if (support::fault::shouldFail(
            support::fault::sites::kFleetAggregatorCrash)) {
        ++stats_.crashes;
        throw AggregatorCrashError("injected crash at epoch close");
    }
    const FleetSpanNames& spans = fleetSpanNames();
    obs::ScopedSpan epochSpan(spans.epoch, obs::SpanCategory::Fleet);
    epochSpan.setArg(epochsCompleted_ + 1);

    // 0. Liveness accounting on a timeout close: every active client that
    // contributed nothing is Lagging; graceEpochs consecutive misses evict
    // it from the completion rule (its session state stays — see resume()).
    std::vector<std::uint64_t> missedIds;
    if (timedOut) {
        ++stats_.timeoutEpochs;
        for (auto& [id, client] : clients_) {
            if (client.evicted || !client.pending.empty()) {
                continue;
            }
            ++client.missedEpochs;
            ++stats_.missedFrames;
            missedIds.push_back(id);
            if (options_.epochPolicy.graceEpochs > 0 &&
                client.missedEpochs >= options_.epochPolicy.graceEpochs) {
                client.evicted = true;
                ++stats_.evictions;
                obs::TraceRecorder::global().recordInstant(
                    spans.evict, obs::SpanCategory::Fleet, support::nowNs(),
                    id);
            }
        }
    }

    // 1. Merge one frame per contributing client, in ascending client-id
    // order — the runtime sum mirrors epochAllRanks' rank-order sum bit for
    // bit.
    obs::ScopedSpan mergeSpan(spans.merge, obs::SpanCategory::Fleet);
    double worldRuntimeNs = 0.0;
    std::size_t divergent = 0;
    select::PolicyDelta divergenceDiag;
    std::map<std::string, std::uint64_t> suppressedByName;
    const std::uint64_t reducerFingerprint = currentPolicy_.fingerprint();
    std::size_t framesMerged = 0;
    for (auto& [id, client] : clients_) {
        if (client.pending.empty()) {
            continue;  // lagging or evicted: merged by a later epoch
        }
        DeltaFrame frame = std::move(client.pending.front());
        client.pending.pop_front();
        scorep::CctDelta remapped = std::move(frame.cct);
        for (scorep::CctNewNode& node : remapped.newNodes) {
            node.region = fleetHandleFor(client, node.region);
        }
        scorep::applyCctDelta(remapped, fleetTree_, client.idMap);
        worldRuntimeNs += frame.runtimeNs;
        if (frame.policyFingerprint != reducerFingerprint) {
            ++divergent;
            // Diagnosis, not just a count: when the client measured under
            // exactly the policy we last managed to deliver to it (the
            // lagging case), the region-level gap is reconstructible.
            if (frame.policyFingerprint ==
                client.lastSentPolicy.fingerprint()) {
                divergenceDiag =
                    select::policyDiff(client.lastSentPolicy, currentPolicy_);
            }
        }
        for (const SuppressedDelta& entry : frame.suppressed) {
            suppressedByName[regionNames_[fleetHandleFor(client,
                                                         entry.region)]] +=
                entry.visits;
        }
        ++framesMerged;
    }
    stats_.framesMerged += framesMerged;
    stats_.divergentClients += divergent;
    lastDivergence_ = std::move(divergenceDiag);
    mergeSpan.setArg(framesMerged);
    mergeSpan.end();

    // 2. The epoch's observation: cumulative per-name totals differenced
    // against the last epoch's snapshot. Matches the per-epoch merged tree
    // an epochAllRanks reference reduces, region for region.
    auto totalsNow = totalsByNameLocked();
    std::map<std::string, adapt::OverheadModel::RegionObservation> byName;
    for (const auto& [name, totals] : totalsNow) {
        scorep::ProfileTree::RegionTotals last;
        if (auto it = lastTotals_.find(name); it != lastTotals_.end()) {
            last = it->second;
        }
        const std::uint64_t dVisits =
            totals.visits >= last.visits ? totals.visits - last.visits : 0;
        const std::uint64_t dExclusive =
            totals.exclusiveNs >= last.exclusiveNs
                ? totals.exclusiveNs - last.exclusiveNs
                : 0;
        const std::uint64_t suppressed = [&] {
            auto it = suppressedByName.find(name);
            return it == suppressedByName.end() ? std::uint64_t{0} : it->second;
        }();
        // Untouched regions stay out of the fold: the model's activeIc decay
        // (regions instrumented but silent this epoch) and freeze semantics
        // (regions not instrumented at all) both key off absence.
        if (dVisits == 0 && dExclusive == 0 && suppressed == 0) {
            continue;
        }
        byName[name] = adapt::OverheadModel::RegionObservation{
            static_cast<double>(dVisits), static_cast<double>(dExclusive),
            static_cast<double>(suppressed)};
    }
    lastTotals_ = std::move(totalsNow);

    model_.observeEpoch(byName, worldRuntimeNs, &currentIc_);
    // Self-observability billing, as Controller::epoch charges it.
    const std::uint64_t obsEventsNow =
        obs::TraceRecorder::global().recordedEvents();
    model_.chargeSelfCost(static_cast<double>(obsEventsNow -
                                              obsEventsAtLastEpoch_) *
                          options_.config.obsCostNs);
    obsEventsAtLastEpoch_ = obsEventsNow;

    // Mirror of Controller's foldVisitMetricsInto: route per-epoch visit
    // counts into the graph as metric-only journal touches.
    if (options_.config.foldVisitMetricsInto != nullptr) {
        cg::CallGraph& graph = *options_.config.foldVisitMetricsInto;
        for (const auto& [name, obs] : byName) {
            cg::FunctionId id = graph.lookup(name);
            if (id == cg::kInvalidFunction || !graph.alive(id)) {
                continue;
            }
            const auto visits = static_cast<std::uint32_t>(std::min<double>(
                obs.visits, static_cast<double>(UINT32_MAX)));
            if (graph.desc(id).metrics.profiledVisits != visits) {
                graph.touchMetrics(id, [visits](cg::FunctionMetrics& metrics) {
                    metrics.profiledVisits = visits;
                });
            }
        }
    }

    const double ratio = model_.lastEpochOverheadRatio();
    const bool within = ratio <= options_.config.budgetFraction;
    mirrorKillSwitch(ratio, within);

    // 3. Replan over the survey candidates (or shed to keep-only in safe
    // mode) — the identical decision the in-process controller would make.
    obs::ScopedSpan planSpan(spans.plan, obs::SpanCategory::Fleet);
    double budgetNs = 0.0;
    if (safeMode_) {
        select::InstrumentationConfig keepIc;
        keepIc.specName = "safe-mode";
        for (const std::string& name : options_.config.keep) {
            keepIc.addFunction(name);
        }
        budgetNs = options_.config.budgetFraction * worldRuntimeNs;
        currentPolicy_ = select::InstrumentationPolicy::fullOf(keepIc);
        currentIc_ = currentPolicy_.patchSet();
    } else {
        adapt::PlanResult plan =
            planner_.plan(surveyIc_, model_, options_.config);
        budgetNs = plan.budgetNs;
        currentPolicy_ = std::move(plan.policy);
        currentIc_ = std::move(plan.ic);
    }
    planSpan.setArg(currentIc_.size());
    planSpan.end();

    ++epochsCompleted_;
    ++stats_.epochsCompleted;
    lastRatio_ = ratio;
    lastBudgetNs_ = budgetNs;
    lastWithinBudget_ = within;

    // 4. Broadcast the converged policy: per-client deltas against what each
    // client last received, baselines for fresh or resyncing clients.
    // Evicted clients are skipped (their frozen lastSentPolicy keeps the
    // diff chain anchored at what they actually have); Lagging clients get a
    // best-effort trySend — a stalled client's full queue must never block
    // the epoch pipeline for everyone else.
    obs::ScopedSpan broadcastSpan(spans.broadcast, obs::SpanCategory::Fleet);
    PolicyFrame base;
    base.epoch = epochsCompleted_;
    base.fingerprint = currentPolicy_.fingerprint();
    base.measuredOverheadRatio = ratio;
    base.budgetNs = budgetNs;
    base.withinBudget = within;
    std::size_t framesOut = 0;
    for (auto& [id, client] : clients_) {
        if (client.evicted) {
            continue;
        }
        const bool lagging =
            std::binary_search(missedIds.begin(), missedIds.end(), id);
        sendPolicyTo(client, base, /*blocking=*/!lagging);
        ++framesOut;
    }
    broadcastSpan.setArg(framesOut);

    // A stacked frame means the next epoch is already open; its timeout
    // clock starts now, not at that frame's (past) arrival.
    bool anyPending = false;
    for (const auto& [id, client] : clients_) {
        if (!client.evicted && !client.pending.empty()) {
            anyPending = true;
        }
    }
    epochOpenedAtNs_ = anyPending ? support::nowNs() : 0;
}

void Aggregator::sendPolicyTo(ClientState& client, const PolicyFrame& base,
                              bool blocking) {
    PolicyFrame frame = base;
    frame.incarnation = incarnation_;
    if (client.needsBaseline) {
        frame.baseline = true;
        frame.prevFingerprint = 0;
        for (std::size_t i = 0; i < currentPolicy_.functions.size(); ++i) {
            frame.upserts.push_back(PolicyFrameEntry{
                currentPolicy_.functions[i], currentPolicy_.regions[i]});
        }
    } else {
        frame.baseline = false;
        frame.prevFingerprint = client.lastSentPolicy.fingerprint();
        for (std::size_t i = 0; i < currentPolicy_.functions.size(); ++i) {
            const std::string& name = currentPolicy_.functions[i];
            const select::RegionPolicy* before =
                client.lastSentPolicy.policyOf(name);
            if (before == nullptr || *before != currentPolicy_.regions[i]) {
                frame.upserts.push_back(
                    PolicyFrameEntry{name, currentPolicy_.regions[i]});
            }
        }
        for (const std::string& name : client.lastSentPolicy.functions) {
            if (!currentPolicy_.contains(name)) {
                frame.removed.push_back(name);
            }
        }
    }
    std::vector<std::uint8_t> bytes = encodePolicyFrame(frame);
    const std::size_t byteCount = bytes.size();
    const SendResult result = blocking
                                  ? client.policyChannel->send(std::move(bytes))
                                  : client.policyChannel->trySend(
                                        std::move(bytes));
    if (result == SendResult::Ok) {
        stats_.bytesOut += byteCount;
        ++stats_.policyFramesSent;
        // The diff base only advances when the frame actually landed — a
        // refused frame leaves the chain anchored at what the client has,
        // so the NEXT delivered update still chains cleanly (no resync).
        client.lastSentPolicy = currentPolicy_;
        client.needsBaseline = false;
    } else if (result == SendResult::Backpressure) {
        ++stats_.laggingPolicyDrops;
    }
}

void Aggregator::mirrorKillSwitch(double measuredRatio, bool withinBudget) {
    // Controller::updateKillSwitch, minus the patching side: the aggregator
    // trips to a keep-only policy on sustained overshoot and re-arms after
    // the same hysteresis, so fleet and reference runs take the same branch
    // on every epoch.
    const adapt::Config& config = options_.config;
    const double tripRatio = config.budgetFraction * config.killSwitchFactor;
    if (measuredRatio > tripRatio) {
        ++overBudgetStreak_;
        inBudgetStreak_ = 0;
    } else if (withinBudget) {
        ++inBudgetStreak_;
        overBudgetStreak_ = 0;
    } else {
        overBudgetStreak_ = 0;
        inBudgetStreak_ = 0;
    }
    if (!safeMode_ && overBudgetStreak_ >= config.killSwitchEpochs) {
        safeMode_ = true;
        overBudgetStreak_ = 0;
    } else if (safeMode_ && inBudgetStreak_ >= config.killSwitchRearmEpochs) {
        safeMode_ = false;
        inBudgetStreak_ = 0;
    }
}

bool Aggregator::pump() {
    bool progressed = false;
    while (auto frame = data_.tryReceive()) {
        std::lock_guard<std::mutex> lock(mutex_);
        handleFrame(*frame);
        progressed = true;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    while (epochReady()) {
        closeEpoch(false);
        progressed = true;
    }
    if (timeoutClosable(support::nowNs())) {
        closeEpoch(true);
        progressed = true;
    }
    return progressed;
}

void Aggregator::serve() {
    const EpochPolicy policy = options_.epochPolicy;
    const bool timed = policy.timeoutNs > 0 && policy.quorum > 0;
    while (true) {
        std::optional<std::vector<std::uint8_t>> frame;
        if (timed) {
            // Bounded wait sized to the open epoch's remaining budget, so a
            // dead client can delay the close by at most timeoutNs.
            std::uint64_t waitNs = policy.timeoutNs;
            {
                std::lock_guard<std::mutex> lock(mutex_);
                if (epochOpenedAtNs_ != 0) {
                    const std::uint64_t elapsed =
                        support::nowNs() - epochOpenedAtNs_;
                    waitNs = elapsed >= policy.timeoutNs
                                 ? 1
                                 : policy.timeoutNs - elapsed;
                }
            }
            frame = data_.receiveFor(waitNs);
        } else {
            frame = data_.receive();
        }
        if (!frame.has_value()) {
            if (data_.closed()) {
                break;  // closed and drained
            }
            std::lock_guard<std::mutex> lock(mutex_);
            if (timeoutClosable(support::nowNs())) {
                closeEpoch(true);
            }
            continue;
        }
        std::lock_guard<std::mutex> lock(mutex_);
        handleFrame(*frame);
        while (epochReady()) {
            closeEpoch(false);
        }
        if (timed && timeoutClosable(support::nowNs())) {
            closeEpoch(true);
        }
    }
    // Exit accounting: a serve loop that returns while clients are still
    // registered used to do so silently — every such client is now named
    // (it may be blocked in awaitPolicy forever if its driver forgot to
    // stop it), and the final stats line always prints.
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [id, client] : clients_) {
        ++stats_.abandonedClients;
        support::logWarn() << "fleet aggregator: serve() exiting with client "
                           << id << " still registered (pending="
                           << client.pending.size()
                           << ", missedEpochs=" << client.missedEpochs
                           << (client.evicted ? ", evicted" : "") << ")";
    }
    support::logInfo() << "fleet aggregator: serve() exit: epochs="
                       << stats_.epochsCompleted
                       << " framesMerged=" << stats_.framesMerged
                       << " connected=" << stats_.clientsConnected
                       << " disconnected=" << stats_.clientsDisconnected
                       << " abandoned=" << stats_.abandonedClients
                       << " evictions=" << stats_.evictions
                       << " resumes=" << stats_.resumes + stats_.sessionResumes
                       << " timeoutEpochs=" << stats_.timeoutEpochs
                       << " decodeErrors=" << stats_.decodeErrors;
}

void Aggregator::stop() {
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopped_ = true;
        for (auto& [id, client] : clients_) {
            client.policyChannel->close();
        }
    }
    data_.close();
}

std::uint64_t Aggregator::epochsCompleted() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return epochsCompleted_;
}

std::uint64_t Aggregator::incarnation() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return incarnation_;
}

select::PolicyDelta Aggregator::lastDivergence() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return lastDivergence_;
}

std::uint64_t Aggregator::convergedFingerprint() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return currentPolicy_.fingerprint();
}

select::InstrumentationPolicy Aggregator::convergedPolicy() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return currentPolicy_;
}

scorep::ProfileTree Aggregator::fleetProfile() const {
    std::lock_guard<std::mutex> lock(mutex_);
    scorep::ProfileTree copy;
    copy.mergeFrom(fleetTree_);
    return copy;
}

std::map<std::string, scorep::ProfileTree::RegionTotals>
Aggregator::totalsByName() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return totalsByNameLocked();
}

std::map<std::string, scorep::ProfileTree::RegionTotals>
Aggregator::totalsByNameLocked() const {
    std::map<std::string, scorep::ProfileTree::RegionTotals> byName;
    for (const auto& [handle, totals] : fleetTree_.regionTotals()) {
        scorep::ProfileTree::RegionTotals& entry = byName[regionNames_[handle]];
        entry.visits += totals.visits;
        entry.exclusiveNs += totals.exclusiveNs;
    }
    return byName;
}

AggregatorStats Aggregator::stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

std::size_t Aggregator::clientCount() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return clients_.size();
}

}  // namespace capi::fleet
