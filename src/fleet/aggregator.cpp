#include "fleet/aggregator.hpp"

#include <algorithm>
#include <atomic>
#include <utility>

#include "cg/call_graph.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/timer.hpp"

namespace capi::fleet {

namespace {

struct FleetSpanNames {
    std::uint32_t epoch;
    std::uint32_t merge;
    std::uint32_t plan;
    std::uint32_t broadcast;
};

const FleetSpanNames& fleetSpanNames() {
    static const FleetSpanNames names = [] {
        obs::TraceRecorder& r = obs::TraceRecorder::global();
        return FleetSpanNames{r.internName("fleet.epoch"),
                              r.internName("fleet.merge"),
                              r.internName("fleet.plan"),
                              r.internName("fleet.broadcast")};
    }();
    return names;
}

}  // namespace

Aggregator::Aggregator(const cg::CallGraph& graph,
                       select::InstrumentationConfig surveyIc,
                       AggregatorOptions options)
    : graph_(&graph),
      options_(std::move(options)),
      data_(options_.dataQueueCapacity),
      model_(options_.config),
      planner_(graph),
      surveyIc_(std::move(surveyIc)),
      obsEventsAtLastEpoch_(obs::TraceRecorder::global().recordedEvents()) {
    // The fleet converges from the same starting point every client's
    // controller starts from: the survey policy, fully instrumented.
    currentIc_ = surveyIc_;
    currentPolicy_ = select::InstrumentationPolicy::fullOf(currentIc_);

    static std::atomic<std::uint64_t> nextSeq{0};
    const std::uint64_t seq = nextSeq.fetch_add(1, std::memory_order_relaxed);
    metricsCollectorId_ = obs::MetricsRegistry::global().addCollector(
        [this, seq](std::vector<obs::Sample>& out) {
            AggregatorStats snapshot;
            std::size_t clients = 0;
            std::uint64_t epochs = 0;
            {
                std::lock_guard<std::mutex> lock(mutex_);
                snapshot = stats_;
                clients = clients_.size();
                epochs = epochsCompleted_;
            }
            const ChannelStats queue = data_.stats();
            const std::string base = "{agg=\"" + std::to_string(seq) + "\"}";
            auto counter = [&out, &base](const char* name,
                                         std::uint64_t value) {
                obs::Sample s;
                s.name = std::string(name) + base;
                s.kind = obs::MetricKind::Counter;
                s.value = static_cast<double>(value);
                out.push_back(std::move(s));
            };
            auto gauge = [&out, &base](const char* name, double value) {
                obs::Sample s;
                s.name = std::string(name) + base;
                s.kind = obs::MetricKind::Gauge;
                s.value = value;
                out.push_back(std::move(s));
            };
            counter("capi_fleet_frames_merged_total", snapshot.framesMerged);
            counter("capi_fleet_bytes_in_total", snapshot.bytesIn);
            counter("capi_fleet_bytes_out_total", snapshot.bytesOut);
            counter("capi_fleet_epochs_total", epochs);
            counter("capi_fleet_decode_errors_total", snapshot.decodeErrors);
            counter("capi_fleet_resyncs_total", snapshot.resyncs);
            counter("capi_fleet_backpressure_stalls_total", queue.stalls);
            counter("capi_fleet_dropped_deltas_total", queue.rejected);
            gauge("capi_fleet_queue_depth", static_cast<double>(queue.depth));
            gauge("capi_fleet_clients", static_cast<double>(clients));
        });
}

Aggregator::~Aggregator() {
    obs::MetricsRegistry::global().removeCollector(metricsCollectorId_);
    stop();
}

Aggregator::Session Aggregator::connect() {
    std::lock_guard<std::mutex> lock(mutex_);
    ClientState state;
    state.id = nextClientId_++;
    state.policyChannel = std::make_unique<Channel>(options_.policyQueueCapacity);
    state.idMap.push_back(static_cast<std::uint32_t>(fleetTree_.root()));
    state.needsBaseline = true;
    auto [it, inserted] = clients_.emplace(state.id, std::move(state));
    ++stats_.clientsConnected;
    // Late-joiner catch-up, half one: a full-policy baseline so the client
    // converges onto the fleet's current policy before its first epoch.
    PolicyFrame base;
    base.epoch = epochsCompleted_;
    base.fingerprint = currentPolicy_.fingerprint();
    base.measuredOverheadRatio = lastRatio_;
    base.budgetNs = lastBudgetNs_;
    base.withinBudget = lastWithinBudget_;
    sendPolicyTo(it->second, base);
    return Session{it->first, it->second.policyChannel.get()};
}

void Aggregator::disconnect(std::uint64_t clientId) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = clients_.find(clientId);
    if (it == clients_.end()) {
        return;
    }
    it->second.policyChannel->close();
    // The channel must outlive a client still blocked in receive(); park it
    // until destruction rather than freeing under a reader.
    parkedChannels_.push_back(std::move(it->second.policyChannel));
    clients_.erase(it);
    ++stats_.clientsDisconnected;
}

scorep::RegionHandle Aggregator::fleetHandleFor(ClientState& client,
                                                std::uint32_t clientHandle) {
    if (clientHandle >= client.regionMap.size()) {
        return scorep::kNoRegion;
    }
    return client.regionMap[clientHandle];
}

void Aggregator::handleFrame(const std::vector<std::uint8_t>& bytes) {
    FrameType type;
    try {
        type = frameTypeOf(bytes);
    } catch (const WireError&) {
        ++stats_.decodeErrors;
        return;
    }
    try {
        switch (type) {
            case FrameType::Delta: {
                DeltaFrame frame = decodeDeltaFrame(bytes);
                auto it = clients_.find(frame.clientId);
                if (it == clients_.end()) {
                    ++stats_.decodeErrors;  // frame from a departed client
                    return;
                }
                ClientState& client = it->second;
                // Register first-use region defs before validating the CCT
                // against them.
                for (const RegionDef& def : frame.newRegions) {
                    auto [nameIt, inserted] = regionIds_.try_emplace(
                        def.name,
                        static_cast<scorep::RegionHandle>(regionNames_.size()));
                    if (inserted) {
                        regionNames_.push_back(def.name);
                    }
                    if (def.handle >= client.regionMap.size()) {
                        client.regionMap.resize(def.handle + 1,
                                                scorep::kNoRegion);
                    }
                    client.regionMap[def.handle] = nameIt->second;
                }
                // Cross-frame validation: every referenced handle must have
                // been defined by now, and the node stream must continue at
                // this client's id map. A violation is a torn stream, not a
                // torn frame — drop it and let the client's next frame (or a
                // resync) recover.
                if (frame.cct.baseNodeCount > client.idMap.size()) {
                    ++stats_.decodeErrors;
                    return;
                }
                for (const scorep::CctNewNode& node : frame.cct.newNodes) {
                    if (fleetHandleFor(client, node.region) ==
                        scorep::kNoRegion) {
                        ++stats_.decodeErrors;
                        return;
                    }
                }
                for (const SuppressedDelta& entry : frame.suppressed) {
                    if (fleetHandleFor(client, entry.region) ==
                        scorep::kNoRegion) {
                        ++stats_.decodeErrors;
                        return;
                    }
                }
                stats_.bytesIn += bytes.size();
                client.pending.push_back(std::move(frame));
                return;
            }
            case FrameType::Resync: {
                const std::uint64_t clientId =
                    decodeControlFrame(bytes, FrameType::Resync);
                auto it = clients_.find(clientId);
                if (it == clients_.end()) {
                    return;
                }
                ++stats_.resyncs;
                it->second.needsBaseline = true;
                // Answer immediately — the client is blocked waiting for a
                // baseline, not for the next epoch.
                PolicyFrame base;
                base.epoch = epochsCompleted_;
                base.fingerprint = currentPolicy_.fingerprint();
                base.measuredOverheadRatio = lastRatio_;
                base.budgetNs = lastBudgetNs_;
                base.withinBudget = lastWithinBudget_;
                sendPolicyTo(it->second, base);
                return;
            }
            case FrameType::Bye: {
                const std::uint64_t clientId =
                    decodeControlFrame(bytes, FrameType::Bye);
                auto it = clients_.find(clientId);
                if (it != clients_.end()) {
                    it->second.policyChannel->close();
                    parkedChannels_.push_back(
                        std::move(it->second.policyChannel));
                    clients_.erase(it);
                    ++stats_.clientsDisconnected;
                }
                return;
            }
            default:
                ++stats_.decodeErrors;  // policy frames never flow inbound
                return;
        }
    } catch (const WireError&) {
        ++stats_.decodeErrors;
    }
}

bool Aggregator::epochReady() const {
    if (clients_.empty()) {
        return false;
    }
    for (const auto& [id, client] : clients_) {
        if (client.pending.empty()) {
            return false;
        }
    }
    return true;
}

void Aggregator::closeEpoch() {
    const FleetSpanNames& spans = fleetSpanNames();
    obs::ScopedSpan epochSpan(spans.epoch, obs::SpanCategory::Fleet);
    epochSpan.setArg(epochsCompleted_ + 1);

    // 1. Merge one frame per client, in ascending client-id order — the
    // runtime sum mirrors epochAllRanks' rank-order sum bit for bit.
    obs::ScopedSpan mergeSpan(spans.merge, obs::SpanCategory::Fleet);
    double worldRuntimeNs = 0.0;
    std::size_t divergent = 0;
    std::map<std::string, std::uint64_t> suppressedByName;
    const std::uint64_t reducerFingerprint = currentPolicy_.fingerprint();
    std::size_t framesMerged = 0;
    for (auto& [id, client] : clients_) {
        DeltaFrame frame = std::move(client.pending.front());
        client.pending.pop_front();
        scorep::CctDelta remapped = std::move(frame.cct);
        for (scorep::CctNewNode& node : remapped.newNodes) {
            node.region = fleetHandleFor(client, node.region);
        }
        scorep::applyCctDelta(remapped, fleetTree_, client.idMap);
        worldRuntimeNs += frame.runtimeNs;
        if (frame.policyFingerprint != reducerFingerprint) {
            ++divergent;
        }
        for (const SuppressedDelta& entry : frame.suppressed) {
            suppressedByName[regionNames_[fleetHandleFor(client,
                                                         entry.region)]] +=
                entry.visits;
        }
        ++framesMerged;
    }
    stats_.framesMerged += framesMerged;
    stats_.divergentClients += divergent;
    mergeSpan.setArg(framesMerged);
    mergeSpan.end();

    // 2. The epoch's observation: cumulative per-name totals differenced
    // against the last epoch's snapshot. Matches the per-epoch merged tree
    // an epochAllRanks reference reduces, region for region.
    auto totalsNow = totalsByNameLocked();
    std::map<std::string, adapt::OverheadModel::RegionObservation> byName;
    for (const auto& [name, totals] : totalsNow) {
        scorep::ProfileTree::RegionTotals last;
        if (auto it = lastTotals_.find(name); it != lastTotals_.end()) {
            last = it->second;
        }
        const std::uint64_t dVisits =
            totals.visits >= last.visits ? totals.visits - last.visits : 0;
        const std::uint64_t dExclusive =
            totals.exclusiveNs >= last.exclusiveNs
                ? totals.exclusiveNs - last.exclusiveNs
                : 0;
        const std::uint64_t suppressed = [&] {
            auto it = suppressedByName.find(name);
            return it == suppressedByName.end() ? std::uint64_t{0} : it->second;
        }();
        // Untouched regions stay out of the fold: the model's activeIc decay
        // (regions instrumented but silent this epoch) and freeze semantics
        // (regions not instrumented at all) both key off absence.
        if (dVisits == 0 && dExclusive == 0 && suppressed == 0) {
            continue;
        }
        byName[name] = adapt::OverheadModel::RegionObservation{
            static_cast<double>(dVisits), static_cast<double>(dExclusive),
            static_cast<double>(suppressed)};
    }
    lastTotals_ = std::move(totalsNow);

    model_.observeEpoch(byName, worldRuntimeNs, &currentIc_);
    // Self-observability billing, as Controller::epoch charges it.
    const std::uint64_t obsEventsNow =
        obs::TraceRecorder::global().recordedEvents();
    model_.chargeSelfCost(static_cast<double>(obsEventsNow -
                                              obsEventsAtLastEpoch_) *
                          options_.config.obsCostNs);
    obsEventsAtLastEpoch_ = obsEventsNow;

    // Mirror of Controller's foldVisitMetricsInto: route per-epoch visit
    // counts into the graph as metric-only journal touches.
    if (options_.config.foldVisitMetricsInto != nullptr) {
        cg::CallGraph& graph = *options_.config.foldVisitMetricsInto;
        for (const auto& [name, obs] : byName) {
            cg::FunctionId id = graph.lookup(name);
            if (id == cg::kInvalidFunction || !graph.alive(id)) {
                continue;
            }
            const auto visits = static_cast<std::uint32_t>(std::min<double>(
                obs.visits, static_cast<double>(UINT32_MAX)));
            if (graph.desc(id).metrics.profiledVisits != visits) {
                graph.touchMetrics(id, [visits](cg::FunctionMetrics& metrics) {
                    metrics.profiledVisits = visits;
                });
            }
        }
    }

    const double ratio = model_.lastEpochOverheadRatio();
    const bool within = ratio <= options_.config.budgetFraction;
    mirrorKillSwitch(ratio, within);

    // 3. Replan over the survey candidates (or shed to keep-only in safe
    // mode) — the identical decision the in-process controller would make.
    obs::ScopedSpan planSpan(spans.plan, obs::SpanCategory::Fleet);
    double budgetNs = 0.0;
    if (safeMode_) {
        select::InstrumentationConfig keepIc;
        keepIc.specName = "safe-mode";
        for (const std::string& name : options_.config.keep) {
            keepIc.addFunction(name);
        }
        budgetNs = options_.config.budgetFraction * worldRuntimeNs;
        currentPolicy_ = select::InstrumentationPolicy::fullOf(keepIc);
        currentIc_ = currentPolicy_.patchSet();
    } else {
        adapt::PlanResult plan =
            planner_.plan(surveyIc_, model_, options_.config);
        budgetNs = plan.budgetNs;
        currentPolicy_ = std::move(plan.policy);
        currentIc_ = std::move(plan.ic);
    }
    planSpan.setArg(currentIc_.size());
    planSpan.end();

    ++epochsCompleted_;
    ++stats_.epochsCompleted;
    lastRatio_ = ratio;
    lastBudgetNs_ = budgetNs;
    lastWithinBudget_ = within;

    // 4. Broadcast the converged policy: per-client deltas against what each
    // client last received, baselines for fresh or resyncing clients.
    obs::ScopedSpan broadcastSpan(spans.broadcast, obs::SpanCategory::Fleet);
    PolicyFrame base;
    base.epoch = epochsCompleted_;
    base.fingerprint = currentPolicy_.fingerprint();
    base.measuredOverheadRatio = ratio;
    base.budgetNs = budgetNs;
    base.withinBudget = within;
    std::size_t framesOut = 0;
    for (auto& [id, client] : clients_) {
        sendPolicyTo(client, base);
        ++framesOut;
    }
    broadcastSpan.setArg(framesOut);
}

void Aggregator::sendPolicyTo(ClientState& client, const PolicyFrame& base) {
    PolicyFrame frame = base;
    if (client.needsBaseline) {
        frame.baseline = true;
        frame.prevFingerprint = 0;
        for (std::size_t i = 0; i < currentPolicy_.functions.size(); ++i) {
            frame.upserts.push_back(PolicyFrameEntry{
                currentPolicy_.functions[i], currentPolicy_.regions[i]});
        }
    } else {
        frame.baseline = false;
        frame.prevFingerprint = client.lastSentPolicy.fingerprint();
        for (std::size_t i = 0; i < currentPolicy_.functions.size(); ++i) {
            const std::string& name = currentPolicy_.functions[i];
            const select::RegionPolicy* before =
                client.lastSentPolicy.policyOf(name);
            if (before == nullptr || *before != currentPolicy_.regions[i]) {
                frame.upserts.push_back(
                    PolicyFrameEntry{name, currentPolicy_.regions[i]});
            }
        }
        for (const std::string& name : client.lastSentPolicy.functions) {
            if (!currentPolicy_.contains(name)) {
                frame.removed.push_back(name);
            }
        }
    }
    std::vector<std::uint8_t> bytes = encodePolicyFrame(frame);
    stats_.bytesOut += bytes.size();
    ++stats_.policyFramesSent;
    client.lastSentPolicy = currentPolicy_;
    client.needsBaseline = false;
    client.policyChannel->send(std::move(bytes));
}

void Aggregator::mirrorKillSwitch(double measuredRatio, bool withinBudget) {
    // Controller::updateKillSwitch, minus the patching side: the aggregator
    // trips to a keep-only policy on sustained overshoot and re-arms after
    // the same hysteresis, so fleet and reference runs take the same branch
    // on every epoch.
    const adapt::Config& config = options_.config;
    const double tripRatio = config.budgetFraction * config.killSwitchFactor;
    if (measuredRatio > tripRatio) {
        ++overBudgetStreak_;
        inBudgetStreak_ = 0;
    } else if (withinBudget) {
        ++inBudgetStreak_;
        overBudgetStreak_ = 0;
    } else {
        overBudgetStreak_ = 0;
        inBudgetStreak_ = 0;
    }
    if (!safeMode_ && overBudgetStreak_ >= config.killSwitchEpochs) {
        safeMode_ = true;
        overBudgetStreak_ = 0;
    } else if (safeMode_ && inBudgetStreak_ >= config.killSwitchRearmEpochs) {
        safeMode_ = false;
        inBudgetStreak_ = 0;
    }
}

bool Aggregator::pump() {
    bool progressed = false;
    while (auto frame = data_.tryReceive()) {
        std::lock_guard<std::mutex> lock(mutex_);
        handleFrame(*frame);
        progressed = true;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    while (epochReady()) {
        closeEpoch();
        progressed = true;
    }
    return progressed;
}

void Aggregator::serve() {
    while (true) {
        auto frame = data_.receive();
        if (!frame.has_value()) {
            return;  // channel closed and drained
        }
        std::lock_guard<std::mutex> lock(mutex_);
        handleFrame(*frame);
        while (epochReady()) {
            closeEpoch();
        }
    }
}

void Aggregator::stop() {
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopped_ = true;
        for (auto& [id, client] : clients_) {
            client.policyChannel->close();
        }
    }
    data_.close();
}

std::uint64_t Aggregator::epochsCompleted() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return epochsCompleted_;
}

std::uint64_t Aggregator::convergedFingerprint() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return currentPolicy_.fingerprint();
}

select::InstrumentationPolicy Aggregator::convergedPolicy() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return currentPolicy_;
}

scorep::ProfileTree Aggregator::fleetProfile() const {
    std::lock_guard<std::mutex> lock(mutex_);
    scorep::ProfileTree copy;
    copy.mergeFrom(fleetTree_);
    return copy;
}

std::map<std::string, scorep::ProfileTree::RegionTotals>
Aggregator::totalsByName() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return totalsByNameLocked();
}

std::map<std::string, scorep::ProfileTree::RegionTotals>
Aggregator::totalsByNameLocked() const {
    std::map<std::string, scorep::ProfileTree::RegionTotals> byName;
    for (const auto& [handle, totals] : fleetTree_.regionTotals()) {
        scorep::ProfileTree::RegionTotals& entry = byName[regionNames_[handle]];
        entry.visits += totals.visits;
        entry.exclusiveNs += totals.exclusiveNs;
    }
    return byName;
}

AggregatorStats Aggregator::stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

std::size_t Aggregator::clientCount() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return clients_.size();
}

}  // namespace capi::fleet
