// The producer side of fleet aggregation.
//
// A FleetClient wraps one process's adaptive loop: instead of joining an
// epochAllRanks collective, it encodes the epoch's CCT delta against the
// last acknowledged watermark, ships it to the Aggregator over the shared
// data channel, and adopts the converged policy the aggregator pushes back
// on this client's private policy channel (Controller::adoptPolicy — the
// same reconciliation path divergent MPI ranks take).
//
// Late-joiner protocol, client half: construction connects, then blocks on
// the policy channel for the full-policy baseline the aggregator queues at
// connect() — so a client that joins mid-fleet is converged before its
// first epoch. After the baseline, policy frames are deltas chained by
// fingerprint; a broken chain triggers a Resync request and the client
// discards updates until the fresh baseline arrives.
//
// Backpressure, client half: with `blockingSend` (default) the client
// stalls in the channel until the aggregator drains — epochs stay lossless.
// Without it, a full queue DROPS the frame and the client keeps its
// watermark, suppressed-counter baselines and runtime accumulator
// unadvanced: the next frame coalesces the missed epochs (coveredEpochs >
// 1), so the fleet profile stays exact either way.
//
// Handle-stability contract: the cumulative tree, the acked-region-def
// bookkeeping and the suppressed baselines are all indexed by this
// client's region HANDLES, and a def is shipped exactly once per handle —
// so the (handle -> name) mapping must stay stable for the client's
// lifetime. Either keep one Measurement per client, or, when every epoch
// uses a fresh Measurement instance, define the full region-name universe
// in a fixed order before events fire so repatching can never renumber
// handles by changing first-sighting order. A renumbered handle would
// silently alias another region's history on the aggregator.
#pragma once

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "adapt/controller.hpp"
#include "fleet/aggregator.hpp"
#include "fleet/channel.hpp"
#include "fleet/wire.hpp"
#include "scorepsim/measurement.hpp"
#include "scorepsim/profile.hpp"
#include "scorepsim/profile_delta.hpp"
#include "select/ic.hpp"
#include "support/backoff.hpp"

namespace capi::fleet {

/// Raised by the fleet.client_death fault site at the top of sendEpoch,
/// BEFORE the epoch's profile merges into the cumulative tree — so a caller
/// that reconnect()s can re-drive the same epoch without double counting.
class ClientDeadError : public support::Error {
public:
    explicit ClientDeadError(const std::string& what)
        : support::Error("fleet client: " + what) {}
};

struct FleetClientOptions {
    /// true: send() and stall under backpressure (lossless). false:
    /// trySend() and drop-and-coalesce (bounded producer latency).
    bool blockingSend = true;
    /// Retry schedule for reconnect(): each failed resume handshake waits
    /// one backoff step before the next attempt.
    support::BackoffOptions reconnectBackoff;
    /// Seed for the backoff jitter stream (XORed with the client id so a
    /// fleet of reconnecting clients desynchronizes deterministically).
    std::uint64_t reconnectSeed = 0;
    /// Resume attempts before reconnect() falls back to a full resync.
    std::size_t maxResumeAttempts = 5;
};

/// Cumulative client-side counters.
struct FleetClientStats {
    std::uint64_t framesSent = 0;
    std::uint64_t bytesSent = 0;
    std::uint64_t droppedDeltas = 0;    ///< trySend frames refused on full.
    std::uint64_t coalescedEpochs = 0;  ///< Epochs riding a later frame.
    std::uint64_t policyFramesReceived = 0;
    std::uint64_t baselinesReceived = 0;
    std::uint64_t resyncs = 0;
    // --- fault-tolerance accounting --------------------------------------
    std::uint64_t stallsInjected = 0;  ///< fleet.client_stall fires (coalesced).
    std::uint64_t dropsInjected = 0;   ///< fleet.frame_drop fires (coalesced).
    std::uint64_t reconnects = 0;      ///< reconnect() calls that recovered.
    std::uint64_t sessionResumes = 0;  ///< ... via the resume protocol.
    std::uint64_t fullResyncs = 0;     ///< ... via the register-fresh fallback.
    std::uint64_t restartsDetected = 0;  ///< Policy frames whose incarnation
                                         ///< moved (aggregator restarted).
};

class FleetClient {
public:
    /// Controller-attached: `controller` must have start()ed (its survey
    /// policy applied) — the constructor connects and immediately adopts
    /// the aggregator's baseline through Controller::adoptPolicy, which is
    /// a no-op for a fresh fleet and a catch-up repatch for a late joiner.
    /// Both references must outlive the client.
    FleetClient(Aggregator& aggregator, adapt::Controller& controller,
                FleetClientOptions options = {});
    /// Headless: tracks the converged policy internally without driving a
    /// Controller/DynCapi — the shape soak tests run thousands of.
    explicit FleetClient(Aggregator& aggregator,
                         FleetClientOptions options = {});
    ~FleetClient();

    FleetClient(const FleetClient&) = delete;
    FleetClient& operator=(const FleetClient&) = delete;

    /// One fleet epoch: sendEpoch + awaitPolicy. With blocking sends this
    /// is the drop-in replacement for Controller::epochAllRanks.
    adapt::EpochReport epoch(const scorep::ProfileTree& profile,
                             const scorep::Measurement& measurement,
                             double runtimeNs);

    /// First half: folds `profile` (this epoch's tree, as passed to
    /// Controller::epoch) into the cumulative tree, extracts the delta
    /// since the last ack and ships it. Ok advances the watermark;
    /// Backpressure (non-blocking mode only) leaves everything unadvanced
    /// to coalesce. `measurement` supplies region names and suppressed
    /// counters and must be this client's own (fleet clients never share
    /// one — cumulative counters would multiply-count across frames).
    SendResult sendEpoch(const scorep::ProfileTree& profile,
                         const scorep::Measurement& measurement,
                         double runtimeNs);

    /// Second half: blocks for the aggregator's policy frame, applies the
    /// delta (or baseline), verifies the fingerprint chain (Resync on
    /// mismatch), and adopts the result into the controller if attached.
    /// Returns the epoch report as this client experienced it. A closed
    /// policy channel (aggregator shut down) returns the last report.
    adapt::EpochReport awaitPolicy();

    /// Recovers the session after a failure (injected client death, or an
    /// aggregator crash + restore): retries Aggregator::resume() under the
    /// configured backoff, rewinding the local watermark/region/suppressed/
    /// runtime bookkeeping to the returned acked state so the next delta
    /// coalesces everything unacknowledged — by construction it sums to
    /// exactly what an uninterrupted run would have shipped. After
    /// maxResumeAttempts failures it falls back to registering as a brand
    /// new client whose first delta replays the FULL cumulative history;
    /// that fallback is only exact against an aggregator holding none of
    /// this client's data (the fresh-server-after-failed-restore case).
    /// Returns true on a session resume, false on the fallback. `aggregator`
    /// may be a different (restored) instance than the one connected to.
    bool reconnect(Aggregator& aggregator);

    std::uint64_t clientId() const { return session_.clientId; }
    /// Last aggregator incarnation observed on a policy frame (0 until the
    /// first frame arrives).
    std::uint64_t aggregatorIncarnation() const { return incarnation_; }
    /// Fingerprint of the policy this client currently runs.
    std::uint64_t policyFingerprint() const { return fingerprint_; }
    const select::InstrumentationPolicy& policy() const { return policy_; }
    const adapt::EpochReport& lastReport() const { return lastReport_; }
    const FleetClientStats& stats() const { return stats_; }

private:
    FleetClient(Aggregator& aggregator, adapt::Controller* controller,
                FleetClientOptions options);

    void adoptFrame(const PolicyFrame& frame);
    void requestResync();
    adapt::EpochReport reportOf(const PolicyFrame& frame) const;
    /// Rewinds local bookkeeping to a resume()'s acked state.
    void adoptResume(const Aggregator::Session& session);
    /// The register-fresh fallback: new session, full-history first delta.
    void fullResync();

    Aggregator* aggregator_;
    adapt::Controller* controller_;  ///< nullptr in headless mode.
    FleetClientOptions options_;
    Aggregator::Session session_;

    /// The client's whole history: per-epoch profiles merge in here, deltas
    /// extract against watermark_.
    scorep::ProfileTree cumulative_;
    scorep::CctWatermark watermark_;
    /// Region handles whose (handle -> name) def was acked by the
    /// aggregator; indexed by handle.
    std::vector<bool> sentRegions_;
    /// Cumulative suppressed-visit counters at the last acked frame, keyed
    /// by region handle (reset when the Measurement instance changes).
    std::unordered_map<scorep::RegionHandle, std::uint64_t> suppressedBase_;
    /// Suppressed deltas from dropped frames, carried until the next ack
    /// (ordered so re-encoded frames stay byte-deterministic).
    std::map<scorep::RegionHandle, std::uint64_t> pendingSuppressed_;
    std::uint64_t measurementId_ = 0;

    std::uint64_t localEpoch_ = 0;
    /// Drop-and-coalesce accumulators: epochs/runtime not yet acked.
    std::uint64_t pendingEpochs_ = 0;
    double pendingRuntimeNs_ = 0.0;
    /// Shipped (Ok-sent) totals, accumulated in frame order — the same
    /// order the aggregator accumulates its acked mirror, so the rewind
    /// arithmetic in adoptResume() reproduces identical partial sums.
    double runtimeShippedNs_ = 0.0;
    std::uint64_t epochsShipped_ = 0;
    std::map<scorep::RegionHandle, std::uint64_t> suppressedShipped_;

    select::InstrumentationPolicy policy_;
    std::uint64_t fingerprint_ = 0;
    std::uint64_t incarnation_ = 0;  ///< 0 = no policy frame seen yet.
    bool awaitingBaseline_ = true;
    adapt::EpochReport lastReport_;
    FleetClientStats stats_;
};

}  // namespace capi::fleet
