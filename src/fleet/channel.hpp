// Bounded in-process message channels for the fleet layer.
//
// The aggregator and its clients exchange wire frames (fleet/wire.hpp)
// through bounded MPSC queues. Like mpisim's MpiWorld, this is the
// simulation stand-in for a real transport: the API is shaped so a socket
// transport can slot in behind it later (byte frames in, byte frames out,
// explicit backpressure), while tests get deterministic, in-memory delivery.
//
// Backpressure contract:
//  * send() blocks until the queue has room (or the channel closes) and
//    counts every wait in `stalls` — the producer-slowdown path.
//  * trySend() never blocks: a full queue returns SendResult::Backpressure
//    and counts the frame in `rejected` — the drop-and-coalesce path, where
//    a producer keeps its watermark unadvanced and ships a bigger delta
//    next epoch.
// Either way the queue never exceeds its capacity: memory is bounded by
// capacity x frame size no matter how far producers outrun the consumer.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

namespace capi::fleet {

enum class SendResult : std::uint8_t {
    Ok = 0,
    Backpressure = 1,  ///< trySend only: queue full, frame NOT enqueued.
    Closed = 2,        ///< Channel closed, frame NOT enqueued.
};

/// Counters are cumulative since construction; depth/maxDepth describe the
/// queue itself. Snapshot under the channel lock — internally consistent.
struct ChannelStats {
    std::uint64_t enqueued = 0;
    std::uint64_t dequeued = 0;
    std::uint64_t rejected = 0;       ///< trySend frames refused on full.
    std::uint64_t stalls = 0;         ///< send() calls that had to wait.
    std::uint64_t bytesEnqueued = 0;
    std::size_t depth = 0;
    std::size_t maxDepth = 0;
    std::size_t capacity = 0;
};

class Channel {
public:
    explicit Channel(std::size_t capacity) : capacity_(capacity) {}

    Channel(const Channel&) = delete;
    Channel& operator=(const Channel&) = delete;

    /// Blocks while full. Fails only on a closed channel.
    SendResult send(std::vector<std::uint8_t> frame);
    /// Never blocks; a full queue is reported, not waited out.
    SendResult trySend(std::vector<std::uint8_t> frame);

    /// Blocks until a frame or close. Empty optional = closed and drained.
    std::optional<std::vector<std::uint8_t>> receive();
    /// Bounded wait: like receive() but gives up after `timeoutNs`. An empty
    /// optional means timeout OR closed-and-drained — callers that need to
    /// tell them apart check closed(). This is what lets a serve loop with an
    /// epoch-liveness timeout wake up and close a quorum epoch even when the
    /// missing client will never send again.
    std::optional<std::vector<std::uint8_t>> receiveFor(std::uint64_t timeoutNs);
    std::optional<std::vector<std::uint8_t>> tryReceive();

    /// Wakes every blocked sender/receiver; queued frames stay receivable.
    void close();
    bool closed() const;

    ChannelStats stats() const;
    std::size_t capacity() const { return capacity_; }

private:
    const std::size_t capacity_;
    mutable std::mutex mutex_;
    std::condition_variable spaceCv_;
    std::condition_variable frameCv_;
    std::deque<std::vector<std::uint8_t>> queue_;
    ChannelStats stats_;
    bool closed_ = false;
};

}  // namespace capi::fleet
