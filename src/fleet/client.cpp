#include "fleet/client.hpp"

#include <unordered_set>
#include <utility>

#include "obs/trace.hpp"

namespace capi::fleet {

namespace {

struct ClientSpanNames {
    std::uint32_t encode;
    std::uint32_t send;
    std::uint32_t adopt;
};

const ClientSpanNames& clientSpanNames() {
    static const ClientSpanNames names = [] {
        obs::TraceRecorder& r = obs::TraceRecorder::global();
        return ClientSpanNames{r.internName("fleet.encode"),
                               r.internName("fleet.send"),
                               r.internName("fleet.adopt")};
    }();
    return names;
}

}  // namespace

FleetClient::FleetClient(Aggregator& aggregator, adapt::Controller& controller,
                         FleetClientOptions options)
    : FleetClient(aggregator, &controller, options) {}

FleetClient::FleetClient(Aggregator& aggregator, FleetClientOptions options)
    : FleetClient(aggregator, static_cast<adapt::Controller*>(nullptr),
                  options) {}

FleetClient::FleetClient(Aggregator& aggregator, adapt::Controller* controller,
                         FleetClientOptions options)
    : aggregator_(&aggregator), controller_(controller), options_(options) {
    session_ = aggregator_->connect();
    advanceWatermark(watermark_, cumulative_);
    // Late-joiner catch-up, client half: the baseline connect() queued is
    // adopted before the constructor returns, so the first epoch already
    // measures under the fleet's converged policy.
    lastReport_ = awaitPolicy();
}

FleetClient::~FleetClient() {
    // Best-effort Bye (exercises the wire path when a serve loop is
    // running), then the authoritative deregistration. Whichever lands
    // first wins; the loser is ignored.
    (void)aggregator_->dataChannel().trySend(
        encodeControlFrame(FrameType::Bye, session_.clientId));
    aggregator_->disconnect(session_.clientId);
}

adapt::EpochReport FleetClient::epoch(const scorep::ProfileTree& profile,
                                      const scorep::Measurement& measurement,
                                      double runtimeNs) {
    const SendResult sent = sendEpoch(profile, measurement, runtimeNs);
    if (sent != SendResult::Ok) {
        // Dropped (or the aggregator is gone): no fleet epoch closes on our
        // account, so there is no policy frame to wait for. The next
        // successful send coalesces this epoch.
        return lastReport_;
    }
    return awaitPolicy();
}

SendResult FleetClient::sendEpoch(const scorep::ProfileTree& profile,
                                  const scorep::Measurement& measurement,
                                  double runtimeNs) {
    const ClientSpanNames& spans = clientSpanNames();
    cumulative_.mergeFrom(profile);

    DeltaFrame frame;
    frame.clientId = session_.clientId;
    frame.epoch = ++localEpoch_;
    frame.coveredEpochs = pendingEpochs_ + 1;
    frame.runtimeNs = pendingRuntimeNs_ + runtimeNs;
    frame.policyFingerprint = fingerprint_;

    obs::ScopedSpan encodeSpan(spans.encode, obs::SpanCategory::Fleet);
    frame.cct = scorep::extractCctDelta(cumulative_, watermark_);

    // First-use region defs: handles the aggregator has not acked yet, in
    // first-appearance order. A dropped frame's defs re-collect here next
    // time because sentRegions_ only advances on ack.
    std::unordered_set<scorep::RegionHandle> inFrame;
    auto maybeDefineRegion = [&](scorep::RegionHandle handle) {
        const bool acked =
            handle < sentRegions_.size() && sentRegions_[handle];
        if (acked || !inFrame.insert(handle).second) {
            return;
        }
        frame.newRegions.push_back(
            RegionDef{handle, measurement.region(handle).name});
    };
    for (const scorep::CctNewNode& node : frame.cct.newNodes) {
        maybeDefineRegion(node.region);
    }

    // Suppressed-visit deltas: cumulative gate counters differenced against
    // the last ACKED baseline, plus whatever dropped frames accumulated. A
    // fresh Measurement instance restarts the counters, so its values are
    // already deltas.
    const std::uint64_t instanceId = measurement.instanceId();
    auto suppressedNow = measurement.suppressedVisits();
    std::map<scorep::RegionHandle, std::uint64_t> deltas = pendingSuppressed_;
    for (const auto& [handle, count] : suppressedNow) {
        std::uint64_t base = 0;
        if (instanceId == measurementId_) {
            auto it = suppressedBase_.find(handle);
            base = it == suppressedBase_.end() ? 0 : it->second;
        }
        const std::uint64_t delta = count >= base ? count - base : count;
        if (delta > 0) {
            deltas[handle] += delta;
        }
    }
    for (const auto& [handle, delta] : deltas) {
        maybeDefineRegion(handle);
        frame.suppressed.push_back(SuppressedDelta{handle, delta});
    }

    std::vector<std::uint8_t> bytes = encodeDeltaFrame(frame);
    const std::size_t byteCount = bytes.size();
    encodeSpan.setArg(byteCount);
    encodeSpan.end();

    SendResult result;
    {
        obs::ScopedSpan sendSpan(spans.send, obs::SpanCategory::Fleet);
        sendSpan.setArg(byteCount);
        Channel& data = aggregator_->dataChannel();
        result = options_.blockingSend ? data.send(std::move(bytes))
                                       : data.trySend(std::move(bytes));
    }

    // Either way the baseline moves up to the counters just read; what
    // distinguishes ack from drop is whether the read deltas are consumed
    // or carried.
    suppressedBase_.clear();
    for (const auto& [handle, count] : suppressedNow) {
        suppressedBase_[handle] = count;
    }
    measurementId_ = instanceId;

    if (result == SendResult::Ok) {
        scorep::advanceWatermark(watermark_, cumulative_);
        for (const RegionDef& def : frame.newRegions) {
            if (def.handle >= sentRegions_.size()) {
                sentRegions_.resize(def.handle + 1, false);
            }
            sentRegions_[def.handle] = true;
        }
        pendingSuppressed_.clear();
        stats_.coalescedEpochs += pendingEpochs_;
        pendingEpochs_ = 0;
        pendingRuntimeNs_ = 0.0;
        ++stats_.framesSent;
        stats_.bytesSent += byteCount;
    } else {
        if (result == SendResult::Backpressure) {
            ++stats_.droppedDeltas;
        }
        // Coalesce: watermark and region acks stay put; the runtime and
        // suppressed deltas ride the next frame.
        pendingSuppressed_ = std::move(deltas);
        ++pendingEpochs_;
        pendingRuntimeNs_ += runtimeNs;
    }
    return result;
}

adapt::EpochReport FleetClient::awaitPolicy() {
    const ClientSpanNames& spans = clientSpanNames();
    while (true) {
        auto bytes = session_.policyChannel->receive();
        if (!bytes.has_value()) {
            return lastReport_;  // aggregator shut down
        }
        PolicyFrame frame;
        try {
            const FrameType type = frameTypeOf(*bytes);
            if (type != FrameType::PolicyBaseline &&
                type != FrameType::PolicyUpdate) {
                continue;  // stray frame on a policy channel; ignore
            }
            frame = decodePolicyFrame(*bytes);
        } catch (const WireError&) {
            continue;  // defensive: in-process channels should never corrupt
        }
        ++stats_.policyFramesReceived;
        if (awaitingBaseline_ && !frame.baseline) {
            // Updates queued before our resync was handled: their diff base
            // is gone. The baseline is on its way.
            continue;
        }
        if (!frame.baseline && frame.prevFingerprint != fingerprint_) {
            requestResync();
            continue;
        }
        obs::ScopedSpan adoptSpan(spans.adopt, obs::SpanCategory::Fleet);
        adoptFrame(frame);
        if (policy_.fingerprint() != frame.fingerprint) {
            if (frame.baseline) {
                // A baseline that does not reconstruct is not recoverable
                // by another resync (static IDs, say, are not carried on
                // the wire) — fail loudly rather than run diverged.
                throw WireError("baseline did not reconstruct the "
                                "advertised policy fingerprint");
            }
            requestResync();
            continue;
        }
        fingerprint_ = frame.fingerprint;
        awaitingBaseline_ = false;
        adoptSpan.setArg(policy_.size());
        adoptSpan.end();

        adapt::EpochReport report = reportOf(frame);
        if (controller_ != nullptr) {
            report = controller_->adoptPolicy(policy_, report);
        }
        lastReport_ = report;
        return report;
    }
}

void FleetClient::adoptFrame(const PolicyFrame& frame) {
    if (frame.baseline) {
        select::InstrumentationPolicy fresh;
        fresh.specName = "fleet";
        for (const PolicyFrameEntry& entry : frame.upserts) {
            fresh.setRegion(entry.name, entry.policy);
        }
        policy_ = std::move(fresh);
        ++stats_.baselinesReceived;
        return;
    }
    for (const PolicyFrameEntry& entry : frame.upserts) {
        policy_.setRegion(entry.name, entry.policy);
    }
    for (const std::string& name : frame.removed) {
        policy_.setRegion(name, select::RegionPolicy{});
    }
}

void FleetClient::requestResync() {
    ++stats_.resyncs;
    awaitingBaseline_ = true;
    (void)aggregator_->dataChannel().send(
        encodeControlFrame(FrameType::Resync, session_.clientId));
}

adapt::EpochReport FleetClient::reportOf(const PolicyFrame& frame) const {
    adapt::EpochReport report;
    report.epoch = frame.epoch;
    report.measuredOverheadRatio = frame.measuredOverheadRatio;
    report.withinBudget = frame.withinBudget;
    report.budgetNs = frame.budgetNs;
    report.policyFingerprint = frame.fingerprint;
    report.icSize = policy_.size();
    report.fullRegions = policy_.countOf(select::Tier::Full);
    report.sampledRegions = policy_.countOf(select::Tier::Sampled);
    return report;
}

}  // namespace capi::fleet
