#include "fleet/client.hpp"

#include <chrono>
#include <thread>
#include <unordered_set>
#include <utility>

#include "obs/trace.hpp"
#include "support/fault.hpp"

namespace capi::fleet {

namespace {

struct ClientSpanNames {
    std::uint32_t encode;
    std::uint32_t send;
    std::uint32_t adopt;
};

const ClientSpanNames& clientSpanNames() {
    static const ClientSpanNames names = [] {
        obs::TraceRecorder& r = obs::TraceRecorder::global();
        return ClientSpanNames{r.internName("fleet.encode"),
                               r.internName("fleet.send"),
                               r.internName("fleet.adopt")};
    }();
    return names;
}

}  // namespace

FleetClient::FleetClient(Aggregator& aggregator, adapt::Controller& controller,
                         FleetClientOptions options)
    : FleetClient(aggregator, &controller, options) {}

FleetClient::FleetClient(Aggregator& aggregator, FleetClientOptions options)
    : FleetClient(aggregator, static_cast<adapt::Controller*>(nullptr),
                  options) {}

FleetClient::FleetClient(Aggregator& aggregator, adapt::Controller* controller,
                         FleetClientOptions options)
    : aggregator_(&aggregator), controller_(controller), options_(options) {
    session_ = aggregator_->connect();
    advanceWatermark(watermark_, cumulative_);
    // Late-joiner catch-up, client half: the baseline connect() queued is
    // adopted before the constructor returns, so the first epoch already
    // measures under the fleet's converged policy.
    lastReport_ = awaitPolicy();
}

FleetClient::~FleetClient() {
    // Best-effort Bye (exercises the wire path when a serve loop is
    // running), then the authoritative deregistration. Whichever lands
    // first wins; the loser is ignored.
    (void)aggregator_->dataChannel().trySend(
        encodeControlFrame(FrameType::Bye, session_.clientId));
    aggregator_->disconnect(session_.clientId);
}

adapt::EpochReport FleetClient::epoch(const scorep::ProfileTree& profile,
                                      const scorep::Measurement& measurement,
                                      double runtimeNs) {
    const SendResult sent = sendEpoch(profile, measurement, runtimeNs);
    if (sent != SendResult::Ok) {
        // Dropped (or the aggregator is gone): no fleet epoch closes on our
        // account, so there is no policy frame to wait for. The next
        // successful send coalesces this epoch.
        return lastReport_;
    }
    return awaitPolicy();
}

SendResult FleetClient::sendEpoch(const scorep::ProfileTree& profile,
                                  const scorep::Measurement& measurement,
                                  double runtimeNs) {
    // Injected death fires BEFORE the profile merges: the epoch leaves no
    // trace in the cumulative tree, so re-driving it after reconnect()
    // counts it exactly once.
    if (support::fault::shouldFail(support::fault::sites::kFleetClientDeath)) {
        throw ClientDeadError("injected client death before epoch send");
    }
    const ClientSpanNames& spans = clientSpanNames();
    cumulative_.mergeFrom(profile);

    DeltaFrame frame;
    frame.clientId = session_.clientId;
    frame.epoch = ++localEpoch_;
    frame.coveredEpochs = pendingEpochs_ + 1;
    frame.runtimeNs = pendingRuntimeNs_ + runtimeNs;
    frame.policyFingerprint = fingerprint_;

    obs::ScopedSpan encodeSpan(spans.encode, obs::SpanCategory::Fleet);
    frame.cct = scorep::extractCctDelta(cumulative_, watermark_);

    // First-use region defs: handles the aggregator has not acked yet, in
    // first-appearance order. A dropped frame's defs re-collect here next
    // time because sentRegions_ only advances on ack.
    std::unordered_set<scorep::RegionHandle> inFrame;
    auto maybeDefineRegion = [&](scorep::RegionHandle handle) {
        const bool acked =
            handle < sentRegions_.size() && sentRegions_[handle];
        if (acked || !inFrame.insert(handle).second) {
            return;
        }
        frame.newRegions.push_back(
            RegionDef{handle, measurement.region(handle).name});
    };
    for (const scorep::CctNewNode& node : frame.cct.newNodes) {
        maybeDefineRegion(node.region);
    }

    // Suppressed-visit deltas: cumulative gate counters differenced against
    // the last ACKED baseline, plus whatever dropped frames accumulated. A
    // fresh Measurement instance restarts the counters, so its values are
    // already deltas.
    const std::uint64_t instanceId = measurement.instanceId();
    auto suppressedNow = measurement.suppressedVisits();
    std::map<scorep::RegionHandle, std::uint64_t> deltas = pendingSuppressed_;
    for (const auto& [handle, count] : suppressedNow) {
        std::uint64_t base = 0;
        if (instanceId == measurementId_) {
            auto it = suppressedBase_.find(handle);
            base = it == suppressedBase_.end() ? 0 : it->second;
        }
        const std::uint64_t delta = count >= base ? count - base : count;
        if (delta > 0) {
            deltas[handle] += delta;
        }
    }
    for (const auto& [handle, delta] : deltas) {
        maybeDefineRegion(handle);
        frame.suppressed.push_back(SuppressedDelta{handle, delta});
    }

    std::vector<std::uint8_t> bytes = encodeDeltaFrame(frame);
    const std::size_t byteCount = bytes.size();
    encodeSpan.setArg(byteCount);
    encodeSpan.end();

    // A stall (client wedged past the epoch) and a frame drop (transport
    // ate the frame) are indistinguishable to the protocol: the frame never
    // arrives, nothing is acked, and the next successful send coalesces —
    // the exact Backpressure path, so both reuse it.
    const bool stallInjected =
        support::fault::shouldFail(support::fault::sites::kFleetClientStall);
    const bool dropInjected =
        !stallInjected &&
        support::fault::shouldFail(support::fault::sites::kFleetFrameDrop);
    SendResult result;
    if (stallInjected || dropInjected) {
        if (stallInjected) {
            ++stats_.stallsInjected;
        } else {
            ++stats_.dropsInjected;
        }
        result = SendResult::Backpressure;
    } else {
        obs::ScopedSpan sendSpan(spans.send, obs::SpanCategory::Fleet);
        sendSpan.setArg(byteCount);
        Channel& data = aggregator_->dataChannel();
        result = options_.blockingSend ? data.send(std::move(bytes))
                                       : data.trySend(std::move(bytes));
    }

    // Either way the baseline moves up to the counters just read; what
    // distinguishes ack from drop is whether the read deltas are consumed
    // or carried.
    suppressedBase_.clear();
    for (const auto& [handle, count] : suppressedNow) {
        suppressedBase_[handle] = count;
    }
    measurementId_ = instanceId;

    if (result == SendResult::Ok) {
        scorep::advanceWatermark(watermark_, cumulative_);
        for (const RegionDef& def : frame.newRegions) {
            if (def.handle >= sentRegions_.size()) {
                sentRegions_.resize(def.handle + 1, false);
            }
            sentRegions_[def.handle] = true;
        }
        runtimeShippedNs_ += frame.runtimeNs;
        epochsShipped_ += frame.coveredEpochs;
        for (const SuppressedDelta& entry : frame.suppressed) {
            suppressedShipped_[entry.region] += entry.visits;
        }
        pendingSuppressed_.clear();
        stats_.coalescedEpochs += pendingEpochs_;
        pendingEpochs_ = 0;
        pendingRuntimeNs_ = 0.0;
        ++stats_.framesSent;
        stats_.bytesSent += byteCount;
    } else {
        if (result == SendResult::Backpressure && !stallInjected &&
            !dropInjected) {
            ++stats_.droppedDeltas;
        }
        // Coalesce: watermark and region acks stay put; the runtime and
        // suppressed deltas ride the next frame.
        pendingSuppressed_ = std::move(deltas);
        ++pendingEpochs_;
        pendingRuntimeNs_ += runtimeNs;
    }
    return result;
}

adapt::EpochReport FleetClient::awaitPolicy() {
    const ClientSpanNames& spans = clientSpanNames();
    while (true) {
        auto bytes = session_.policyChannel->receive();
        if (!bytes.has_value()) {
            return lastReport_;  // aggregator shut down
        }
        PolicyFrame frame;
        try {
            const FrameType type = frameTypeOf(*bytes);
            if (type != FrameType::PolicyBaseline &&
                type != FrameType::PolicyUpdate) {
                continue;  // stray frame on a policy channel; ignore
            }
            frame = decodePolicyFrame(*bytes);
        } catch (const WireError&) {
            continue;  // defensive: in-process channels should never corrupt
        }
        ++stats_.policyFramesReceived;
        if (awaitingBaseline_ && !frame.baseline) {
            // Updates queued before our resync was handled: their diff base
            // is gone. The baseline is on its way.
            continue;
        }
        if (!frame.baseline && frame.prevFingerprint != fingerprint_) {
            requestResync();
            continue;
        }
        obs::ScopedSpan adoptSpan(spans.adopt, obs::SpanCategory::Fleet);
        adoptFrame(frame);
        if (policy_.fingerprint() != frame.fingerprint) {
            if (frame.baseline) {
                // A baseline that does not reconstruct is not recoverable
                // by another resync (static IDs, say, are not carried on
                // the wire) — fail loudly rather than run diverged.
                throw WireError("baseline did not reconstruct the "
                                "advertised policy fingerprint");
            }
            requestResync();
            continue;
        }
        fingerprint_ = frame.fingerprint;
        awaitingBaseline_ = false;
        // Restart detection: the incarnation moving means a different
        // aggregator process now holds (a restored copy of) our session.
        if (incarnation_ != 0 && frame.incarnation != incarnation_) {
            ++stats_.restartsDetected;
        }
        incarnation_ = frame.incarnation;
        adoptSpan.setArg(policy_.size());
        adoptSpan.end();

        adapt::EpochReport report = reportOf(frame);
        if (controller_ != nullptr) {
            report = controller_->adoptPolicy(policy_, report);
        }
        lastReport_ = report;
        return report;
    }
}

void FleetClient::adoptFrame(const PolicyFrame& frame) {
    if (frame.baseline) {
        select::InstrumentationPolicy fresh;
        fresh.specName = "fleet";
        for (const PolicyFrameEntry& entry : frame.upserts) {
            fresh.setRegion(entry.name, entry.policy);
        }
        policy_ = std::move(fresh);
        ++stats_.baselinesReceived;
        return;
    }
    for (const PolicyFrameEntry& entry : frame.upserts) {
        policy_.setRegion(entry.name, entry.policy);
    }
    for (const std::string& name : frame.removed) {
        policy_.setRegion(name, select::RegionPolicy{});
    }
}

void FleetClient::requestResync() {
    ++stats_.resyncs;
    awaitingBaseline_ = true;
    (void)aggregator_->dataChannel().send(
        encodeControlFrame(FrameType::Resync, session_.clientId));
}

bool FleetClient::reconnect(Aggregator& aggregator) {
    aggregator_ = &aggregator;
    support::Backoff backoff(options_.reconnectBackoff,
                             options_.reconnectSeed ^ session_.clientId);
    for (std::size_t attempt = 0; attempt < options_.maxResumeAttempts;
         ++attempt) {
        try {
            Aggregator::Session session =
                aggregator_->resume(session_.clientId);
            adoptResume(session);
            ++stats_.reconnects;
            ++stats_.sessionResumes;
            return true;
        } catch (const WireError&) {
            std::this_thread::sleep_for(
                std::chrono::nanoseconds(backoff.nextDelayNs()));
        }
    }
    fullResync();
    ++stats_.reconnects;
    ++stats_.fullResyncs;
    return false;
}

void FleetClient::adoptResume(const Aggregator::Session& session) {
    const Aggregator::ResumeState& rs = session.resume;
    session_ = session;

    // Rewind to the acked state. Everything between the acked totals and
    // the local totals becomes pending, to coalesce onto the next delta.
    // The subtractions are exact: shipped and acked accumulate the same
    // per-frame values in the same order, so their partial sums are
    // bit-identical doubles.
    watermark_ = rs.watermark;
    pendingRuntimeNs_ = (runtimeShippedNs_ + pendingRuntimeNs_) - rs.runtimeNs;
    runtimeShippedNs_ = rs.runtimeNs;
    pendingEpochs_ = localEpoch_ - rs.coveredEpochs;
    epochsShipped_ = rs.coveredEpochs;

    std::map<scorep::RegionHandle, std::uint64_t> ackedSuppressed;
    for (const auto& [handle, count] : rs.suppressed) {
        ackedSuppressed[handle] = count;
    }
    std::map<scorep::RegionHandle, std::uint64_t> totals = pendingSuppressed_;
    for (const auto& [handle, count] : suppressedShipped_) {
        totals[handle] += count;
    }
    pendingSuppressed_.clear();
    for (const auto& [handle, total] : totals) {
        auto it = ackedSuppressed.find(handle);
        const std::uint64_t acked =
            it == ackedSuppressed.end() ? 0 : it->second;
        if (total > acked) {
            pendingSuppressed_[handle] = total - acked;
        }
    }
    suppressedShipped_ = std::move(ackedSuppressed);

    sentRegions_.assign(rs.ackedRegions.begin(), rs.ackedRegions.end());

    if (incarnation_ != 0 && rs.incarnation != incarnation_) {
        ++stats_.restartsDetected;
    }
    incarnation_ = rs.incarnation;

    // The policy chain continues from what the aggregator last sent us. If
    // we are behind (a broadcast refused while we were down), ask for a
    // baseline now; the reply rides the next epoch's policy frame.
    if (fingerprint_ != rs.lastPolicyFingerprint) {
        requestResync();
    }
}

void FleetClient::fullResync() {
    // Register as a brand-new client and replay the entire history in the
    // first delta. Only exact when the aggregator holds none of this
    // client's prior contributions (a fresh server after a failed restore);
    // against a server that kept our data this double-counts — which is why
    // it is strictly the last resort.
    session_ = aggregator_->connect();
    watermark_ = scorep::CctWatermark{};
    sentRegions_.clear();
    suppressedBase_.clear();
    for (const auto& [handle, count] : suppressedShipped_) {
        pendingSuppressed_[handle] += count;
    }
    suppressedShipped_.clear();
    pendingEpochs_ = localEpoch_;
    pendingRuntimeNs_ = runtimeShippedNs_ + pendingRuntimeNs_;
    runtimeShippedNs_ = 0.0;
    epochsShipped_ = 0;
    awaitingBaseline_ = true;
    lastReport_ = awaitPolicy();  // connect() queued a baseline
}

adapt::EpochReport FleetClient::reportOf(const PolicyFrame& frame) const {
    adapt::EpochReport report;
    report.epoch = frame.epoch;
    report.measuredOverheadRatio = frame.measuredOverheadRatio;
    report.withinBudget = frame.withinBudget;
    report.budgetNs = frame.budgetNs;
    report.policyFingerprint = frame.fingerprint;
    report.icSize = policy_.size();
    report.fullRegions = policy_.countOf(select::Tier::Full);
    report.sampledRegions = policy_.countOf(select::Tier::Sampled);
    return report;
}

}  // namespace capi::fleet
