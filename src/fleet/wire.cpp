#include "fleet/wire.hpp"

#include <bit>
#include <cstring>
#include <string_view>

#include "support/hash.hpp"

namespace capi::fleet {

namespace {

constexpr std::size_t kHeaderBytes = 4 /*magic*/ + 1 /*type*/;
constexpr std::size_t kChecksumBytes = 8;

class Writer {
public:
    void u8(std::uint8_t value) { buf_.push_back(value); }

    void varint(std::uint64_t value) {
        while (value >= 0x80) {
            buf_.push_back(static_cast<std::uint8_t>(value) | 0x80u);
            value >>= 7;
        }
        buf_.push_back(static_cast<std::uint8_t>(value));
    }

    void fixed64(std::uint64_t value) {
        for (int i = 0; i < 8; ++i) {
            buf_.push_back(static_cast<std::uint8_t>(value >> (8 * i)));
        }
    }

    void f64(double value) { fixed64(std::bit_cast<std::uint64_t>(value)); }

    void str(const std::string& text) {
        varint(text.size());
        buf_.insert(buf_.end(), text.begin(), text.end());
    }

    std::vector<std::uint8_t> take() { return std::move(buf_); }

private:
    std::vector<std::uint8_t> buf_;
};

class Reader {
public:
    Reader(const std::uint8_t* data, std::size_t size)
        : data_(data), size_(size) {}

    std::size_t remaining() const { return size_ - pos_; }
    bool done() const { return pos_ == size_; }

    std::uint8_t u8() {
        need(1, "byte");
        return data_[pos_++];
    }

    std::uint64_t varint() {
        std::uint64_t value = 0;
        for (int shift = 0; shift < 64; shift += 7) {
            need(1, "varint");
            const std::uint8_t byte = data_[pos_++];
            value |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
            if ((byte & 0x80) == 0) {
                // Reject non-canonical overlong tails that would shift past
                // bit 63 (two encodings of one value breaks byte determinism).
                if (shift == 63 && (byte & 0x7E) != 0) {
                    throw WireError("varint overflows 64 bits");
                }
                return value;
            }
        }
        throw WireError("varint longer than 10 bytes");
    }

    std::uint32_t varint32(const char* what) {
        const std::uint64_t value = varint();
        if (value > 0xFFFFFFFFull) {
            throw WireError(std::string(what) + " exceeds 32 bits");
        }
        return static_cast<std::uint32_t>(value);
    }

    std::uint64_t fixed64() {
        need(8, "fixed64");
        std::uint64_t value = 0;
        for (int i = 0; i < 8; ++i) {
            value |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
        }
        pos_ += 8;
        return value;
    }

    double f64() { return std::bit_cast<double>(fixed64()); }

    std::string str() {
        const std::uint64_t len = varint();
        need(len, "string body");
        std::string text(reinterpret_cast<const char*>(data_ + pos_),
                         static_cast<std::size_t>(len));
        pos_ += static_cast<std::size_t>(len);
        return text;
    }

    /// Guards list reads: every element consumes at least `minBytes`, so a
    /// corrupted count larger than the bytes left is rejected before any
    /// allocation scales with it.
    std::size_t listCount(std::size_t minBytes, const char* what) {
        const std::uint64_t count = varint();
        if (count * minBytes > remaining()) {
            throw WireError(std::string(what) + " count exceeds frame size");
        }
        return static_cast<std::size_t>(count);
    }

private:
    void need(std::uint64_t bytes, const char* what) {
        if (bytes > remaining()) {
            throw WireError(std::string("truncated frame: ") + what);
        }
    }

    const std::uint8_t* data_;
    std::size_t size_;
    std::size_t pos_ = 0;
};

std::uint64_t payloadChecksum(const std::vector<std::uint8_t>& payload) {
    return support::fnv1a(std::string_view(
        reinterpret_cast<const char*>(payload.data()), payload.size()));
}

std::vector<std::uint8_t> seal(FrameType type,
                               std::vector<std::uint8_t> payload) {
    std::vector<std::uint8_t> frame;
    frame.reserve(kHeaderBytes + payload.size() + 10 + kChecksumBytes);
    for (int i = 0; i < 4; ++i) {
        frame.push_back(static_cast<std::uint8_t>(kWireMagic >> (8 * i)));
    }
    frame.push_back(static_cast<std::uint8_t>(type));
    std::uint64_t len = payload.size();
    while (len >= 0x80) {
        frame.push_back(static_cast<std::uint8_t>(len) | 0x80u);
        len >>= 7;
    }
    frame.push_back(static_cast<std::uint8_t>(len));
    frame.insert(frame.end(), payload.begin(), payload.end());
    const std::uint64_t checksum = payloadChecksum(payload);
    for (int i = 0; i < 8; ++i) {
        frame.push_back(static_cast<std::uint8_t>(checksum >> (8 * i)));
    }
    return frame;
}

/// Validates magic / type / length / checksum and returns a Reader over the
/// payload plus the frame type.
FrameType openFrame(const std::vector<std::uint8_t>& bytes, Reader& payload) {
    Reader header(bytes.data(), bytes.size());
    if (header.remaining() < kHeaderBytes + 1 + kChecksumBytes) {
        throw WireError("frame shorter than header");
    }
    std::uint32_t magic = 0;
    for (int i = 0; i < 4; ++i) {
        magic |= static_cast<std::uint32_t>(header.u8()) << (8 * i);
    }
    if (magic != kWireMagic) {
        throw WireError("bad magic");
    }
    const std::uint8_t rawType = header.u8();
    if (rawType < static_cast<std::uint8_t>(FrameType::Delta) ||
        rawType > static_cast<std::uint8_t>(FrameType::Snapshot)) {
        throw WireError("unknown frame type");
    }
    const std::uint64_t len = header.varint();
    if (len + kChecksumBytes != header.remaining()) {
        throw WireError("payload length disagrees with frame size");
    }
    const std::size_t payloadStart = bytes.size() - kChecksumBytes -
                                     static_cast<std::size_t>(len);
    std::uint64_t storedChecksum = 0;
    for (int i = 0; i < 8; ++i) {
        storedChecksum |= static_cast<std::uint64_t>(
                              bytes[bytes.size() - kChecksumBytes + i])
                          << (8 * i);
    }
    const std::uint64_t actual = support::fnv1a(std::string_view(
        reinterpret_cast<const char*>(bytes.data() + payloadStart),
        static_cast<std::size_t>(len)));
    if (actual != storedChecksum) {
        throw WireError("checksum mismatch");
    }
    payload = Reader(bytes.data() + payloadStart, static_cast<std::size_t>(len));
    return static_cast<FrameType>(rawType);
}

void expectType(FrameType actual, FrameType expected) {
    if (actual != expected) {
        throw WireError("unexpected frame type");
    }
}

void encodeRegionPolicy(Writer& out, const select::RegionPolicy& policy) {
    out.u8(static_cast<std::uint8_t>(policy.tier));
    out.varint(policy.sampling.everyN);
    out.varint(policy.sampling.minIntervalNs);
}

select::RegionPolicy decodeRegionPolicy(Reader& in) {
    select::RegionPolicy policy;
    const std::uint8_t tier = in.u8();
    if (tier > static_cast<std::uint8_t>(select::Tier::Full)) {
        throw WireError("invalid tier");
    }
    policy.tier = static_cast<select::Tier>(tier);
    policy.sampling.everyN = in.varint32("sampling everyN");
    policy.sampling.minIntervalNs = in.varint();
    return policy;
}

}  // namespace

std::vector<std::uint8_t> encodeDeltaFrame(const DeltaFrame& frame) {
    Writer out;
    out.varint(frame.clientId);
    out.varint(frame.epoch);
    out.varint(frame.coveredEpochs);
    out.f64(frame.runtimeNs);
    out.fixed64(frame.policyFingerprint);

    out.varint(frame.newRegions.size());
    for (const RegionDef& def : frame.newRegions) {
        out.varint(def.handle);
        out.str(def.name);
    }

    out.varint(frame.cct.baseNodeCount);
    out.varint(frame.cct.newNodes.size());
    for (const scorep::CctNewNode& node : frame.cct.newNodes) {
        out.varint(node.parent);
        out.varint(node.region);
    }
    // Changed ids ascend (extraction order), so gap-encode them.
    out.varint(frame.cct.changed.size());
    std::uint64_t lastId = 0;
    for (const scorep::CctNodeChange& change : frame.cct.changed) {
        out.varint(change.node - lastId);
        lastId = change.node;
        out.varint(change.visitsDelta);
        out.varint(change.inclusiveNsDelta);
    }

    out.varint(frame.suppressed.size());
    for (const SuppressedDelta& entry : frame.suppressed) {
        out.varint(entry.region);
        out.varint(entry.visits);
    }
    return seal(FrameType::Delta, out.take());
}

DeltaFrame decodeDeltaFrame(const std::vector<std::uint8_t>& bytes) {
    Reader in(nullptr, 0);
    expectType(openFrame(bytes, in), FrameType::Delta);

    DeltaFrame frame;
    frame.clientId = in.varint();
    frame.epoch = in.varint();
    frame.coveredEpochs = in.varint();
    if (frame.coveredEpochs == 0) {
        throw WireError("delta frame covers zero epochs");
    }
    frame.runtimeNs = in.f64();
    frame.policyFingerprint = in.fixed64();

    const std::size_t regionCount = in.listCount(2, "region def");
    for (std::size_t i = 0; i < regionCount; ++i) {
        RegionDef def;
        def.handle = in.varint32("region handle");
        def.name = in.str();
        frame.newRegions.push_back(std::move(def));
    }

    frame.cct.baseNodeCount = in.varint();
    const std::size_t newNodes = in.listCount(2, "new node");
    for (std::size_t i = 0; i < newNodes; ++i) {
        scorep::CctNewNode node;
        node.parent = in.varint32("new node parent");
        node.region = in.varint32("new node region");
        // A new node's parent must precede it: old, or earlier in this list.
        if (node.parent >= frame.cct.baseNodeCount + i) {
            throw WireError("new node parent not before node");
        }
        frame.cct.newNodes.push_back(node);
    }
    const std::size_t changed = in.listCount(3, "changed node");
    std::uint64_t lastId = 0;
    for (std::size_t i = 0; i < changed; ++i) {
        scorep::CctNodeChange change;
        const std::uint64_t id = lastId + in.varint();
        const std::uint64_t maxId =
            frame.cct.baseNodeCount + frame.cct.newNodes.size();
        if (id >= maxId || (i > 0 && id <= lastId)) {
            throw WireError("changed node id out of range");
        }
        lastId = id;
        change.node = static_cast<std::uint32_t>(id);
        change.visitsDelta = in.varint();
        change.inclusiveNsDelta = in.varint();
        frame.cct.changed.push_back(change);
    }

    const std::size_t suppressed = in.listCount(2, "suppressed entry");
    for (std::size_t i = 0; i < suppressed; ++i) {
        SuppressedDelta entry;
        entry.region = in.varint32("suppressed region");
        entry.visits = in.varint();
        frame.suppressed.push_back(entry);
    }
    if (!in.done()) {
        throw WireError("trailing bytes after delta payload");
    }
    return frame;
}

std::vector<std::uint8_t> encodePolicyFrame(const PolicyFrame& frame) {
    Writer out;
    out.varint(frame.epoch);
    out.varint(frame.incarnation);
    out.u8(frame.baseline ? 1 : 0);
    out.fixed64(frame.prevFingerprint);
    out.fixed64(frame.fingerprint);
    out.f64(frame.measuredOverheadRatio);
    out.f64(frame.budgetNs);
    out.u8(frame.withinBudget ? 1 : 0);
    out.varint(frame.upserts.size());
    for (const PolicyFrameEntry& entry : frame.upserts) {
        out.str(entry.name);
        encodeRegionPolicy(out, entry.policy);
    }
    out.varint(frame.removed.size());
    for (const std::string& name : frame.removed) {
        out.str(name);
    }
    return seal(frame.baseline ? FrameType::PolicyBaseline
                               : FrameType::PolicyUpdate,
                out.take());
}

PolicyFrame decodePolicyFrame(const std::vector<std::uint8_t>& bytes) {
    Reader in(nullptr, 0);
    const FrameType type = openFrame(bytes, in);
    if (type != FrameType::PolicyBaseline && type != FrameType::PolicyUpdate) {
        throw WireError("unexpected frame type");
    }

    PolicyFrame frame;
    frame.epoch = in.varint();
    frame.incarnation = in.varint();
    if (frame.incarnation == 0) {
        throw WireError("zero incarnation");
    }
    frame.baseline = in.u8() != 0;
    if (frame.baseline != (type == FrameType::PolicyBaseline)) {
        throw WireError("baseline flag disagrees with frame type");
    }
    frame.prevFingerprint = in.fixed64();
    frame.fingerprint = in.fixed64();
    frame.measuredOverheadRatio = in.f64();
    frame.budgetNs = in.f64();
    frame.withinBudget = in.u8() != 0;
    const std::size_t upserts = in.listCount(4, "policy upsert");
    for (std::size_t i = 0; i < upserts; ++i) {
        PolicyFrameEntry entry;
        entry.name = in.str();
        entry.policy = decodeRegionPolicy(in);
        if (entry.policy.tier == select::Tier::Off) {
            throw WireError("upsert with Off tier");
        }
        frame.upserts.push_back(std::move(entry));
    }
    const std::size_t removed = in.listCount(1, "policy removal");
    for (std::size_t i = 0; i < removed; ++i) {
        frame.removed.push_back(in.str());
    }
    if (frame.baseline && !frame.removed.empty()) {
        throw WireError("baseline frame with removals");
    }
    if (!in.done()) {
        throw WireError("trailing bytes after policy payload");
    }
    return frame;
}

std::vector<std::uint8_t> encodeControlFrame(FrameType type,
                                             std::uint64_t clientId) {
    Writer out;
    out.varint(clientId);
    return seal(type, out.take());
}

namespace {

constexpr std::uint64_t kSnapshotVersion = 1;

/// Full-policy codec used only inside snapshots (policy frames on the wire
/// stay diff-shaped). Carries everything fingerprint() hashes — entries AND
/// static IDs — so a restored lastSentPolicy reproduces the client's chain.
void encodeFullPolicy(Writer& out, const select::InstrumentationPolicy& p) {
    out.varint(p.functions.size());
    for (std::size_t i = 0; i < p.functions.size(); ++i) {
        out.str(p.functions[i]);
        encodeRegionPolicy(out, p.regions[i]);
    }
    out.varint(p.staticIds.size());
    for (const auto& [name, id] : p.staticIds) {
        out.str(name);
        out.varint(id);
    }
    out.str(p.specName);
    out.str(p.application);
}

select::InstrumentationPolicy decodeFullPolicy(Reader& in) {
    select::InstrumentationPolicy p;
    const std::size_t entries = in.listCount(4, "policy entry");
    std::string lastName;
    for (std::size_t i = 0; i < entries; ++i) {
        std::string name = in.str();
        if (i > 0 && name <= lastName) {
            throw WireError("policy entries not strictly sorted");
        }
        select::RegionPolicy policy = decodeRegionPolicy(in);
        if (policy.tier == select::Tier::Off) {
            throw WireError("policy entry with Off tier");
        }
        lastName = name;
        p.functions.push_back(std::move(name));
        p.regions.push_back(policy);
    }
    const std::size_t ids = in.listCount(2, "static id");
    for (std::size_t i = 0; i < ids; ++i) {
        std::string name = in.str();
        const std::uint32_t id = in.varint32("static id");
        if (!p.staticIds.emplace(std::move(name), id).second) {
            throw WireError("duplicate static id");
        }
    }
    p.specName = in.str();
    p.application = in.str();
    return p;
}

void encodeWatermark(Writer& out, const scorep::CctWatermark& mark) {
    out.varint(mark.nodeCount);
    for (std::size_t i = 0; i < mark.nodeCount; ++i) {
        out.varint(mark.visits[i]);
        out.varint(mark.inclusiveNs[i]);
    }
}

scorep::CctWatermark decodeWatermark(Reader& in) {
    scorep::CctWatermark mark;
    mark.nodeCount = in.listCount(2, "watermark node");
    mark.visits.reserve(mark.nodeCount);
    mark.inclusiveNs.reserve(mark.nodeCount);
    for (std::size_t i = 0; i < mark.nodeCount; ++i) {
        mark.visits.push_back(in.varint());
        mark.inclusiveNs.push_back(in.varint());
    }
    return mark;
}

}  // namespace

std::vector<std::uint8_t> encodeSnapshotFrame(const SnapshotFrame& frame) {
    Writer out;
    out.varint(kSnapshotVersion);
    out.varint(frame.incarnation);
    out.varint(frame.epochsCompleted);
    out.varint(frame.nextClientId);
    out.u8(frame.safeMode ? 1 : 0);
    out.varint(frame.overBudgetStreak);
    out.varint(frame.inBudgetStreak);
    out.f64(frame.lastRatio);
    out.f64(frame.lastBudgetNs);
    out.u8(frame.lastWithinBudget ? 1 : 0);
    out.fixed64(frame.surveyFingerprint);
    encodeFullPolicy(out, frame.currentPolicy);

    out.varint(frame.regionNames.size());
    for (const std::string& name : frame.regionNames) {
        out.str(name);
    }

    out.varint(frame.nodes.size());
    for (const SnapshotNode& node : frame.nodes) {
        out.varint(node.parent);
        out.varint(node.region);
        out.varint(node.visits);
        out.varint(node.inclusiveNs);
    }

    out.varint(frame.lastTotals.size());
    for (const auto& [name, totals] : frame.lastTotals) {
        out.str(name);
        out.varint(totals.visits);
        out.varint(totals.exclusiveNs);
    }

    out.varint(frame.model.epochs);
    out.f64(frame.model.runtimeNs);
    out.f64(frame.model.incurredCostNs);
    out.f64(frame.model.lastEpochCostNs);
    out.f64(frame.model.lastEpochRuntimeNs);
    out.varint(frame.model.lastMeasurementId);
    out.varint(frame.model.estimates.size());
    for (const auto& [name, estimate] : frame.model.estimates) {
        out.str(name);
        out.f64(estimate.visits);
        out.f64(estimate.exclusiveNs);
        out.varint(estimate.epochsObserved);
        out.f64(estimate.samplingFactor);
    }
    out.varint(frame.model.lastSuppressed.size());
    for (const auto& [name, count] : frame.model.lastSuppressed) {
        out.str(name);
        out.varint(count);
    }

    out.varint(frame.clients.size());
    for (const SnapshotClient& client : frame.clients) {
        out.varint(client.id);
        out.u8(client.evicted ? 1 : 0);
        out.varint(client.missedEpochs);
        out.u8(client.needsBaseline ? 1 : 0);
        out.varint(client.idMap.size());
        for (std::uint32_t fleetId : client.idMap) {
            out.varint(fleetId);
        }
        out.varint(client.regionMap.size());
        for (std::uint32_t handle : client.regionMap) {
            out.varint(handle);
        }
        encodeWatermark(out, client.watermark);
        out.varint(client.suppressedAcked.size());
        for (const auto& [handle, count] : client.suppressedAcked) {
            out.varint(handle);
            out.varint(count);
        }
        out.f64(client.runtimeAckedNs);
        out.varint(client.epochsAcked);
        encodeFullPolicy(out, client.lastSentPolicy);
        out.varint(client.pending.size());
        for (const std::vector<std::uint8_t>& pending : client.pending) {
            out.varint(pending.size());
            for (std::uint8_t byte : pending) {
                out.u8(byte);
            }
        }
    }
    return seal(FrameType::Snapshot, out.take());
}

SnapshotFrame decodeSnapshotFrame(const std::vector<std::uint8_t>& bytes) {
    Reader in(nullptr, 0);
    expectType(openFrame(bytes, in), FrameType::Snapshot);

    const std::uint64_t version = in.varint();
    if (version != kSnapshotVersion) {
        throw WireError("unsupported snapshot version");
    }
    SnapshotFrame frame;
    frame.incarnation = in.varint();
    if (frame.incarnation == 0) {
        throw WireError("zero incarnation");
    }
    frame.epochsCompleted = in.varint();
    frame.nextClientId = in.varint();
    frame.safeMode = in.u8() != 0;
    frame.overBudgetStreak = in.varint();
    frame.inBudgetStreak = in.varint();
    frame.lastRatio = in.f64();
    frame.lastBudgetNs = in.f64();
    frame.lastWithinBudget = in.u8() != 0;
    frame.surveyFingerprint = in.fixed64();
    frame.currentPolicy = decodeFullPolicy(in);

    const std::size_t regionCount = in.listCount(1, "region name");
    for (std::size_t i = 0; i < regionCount; ++i) {
        frame.regionNames.push_back(in.str());
    }

    const std::size_t nodeCount = in.listCount(4, "snapshot node");
    for (std::size_t i = 0; i < nodeCount; ++i) {
        SnapshotNode node;
        node.parent = in.varint32("node parent");
        node.region = in.varint32("node region");
        // Node i in the list has id i + 1; its parent must precede it.
        if (node.parent > i) {
            throw WireError("snapshot node parent not before node");
        }
        if (node.region >= frame.regionNames.size()) {
            throw WireError("snapshot node region out of range");
        }
        node.visits = in.varint();
        node.inclusiveNs = in.varint();
        frame.nodes.push_back(node);
    }

    const std::size_t totalCount = in.listCount(3, "last total");
    std::string lastName;
    for (std::size_t i = 0; i < totalCount; ++i) {
        std::string name = in.str();
        if (i > 0 && name <= lastName) {
            throw WireError("last totals not strictly sorted");
        }
        scorep::ProfileTree::RegionTotals totals;
        totals.visits = in.varint();
        totals.exclusiveNs = in.varint();
        lastName = name;
        frame.lastTotals.emplace_back(std::move(name), totals);
    }

    frame.model.epochs = static_cast<std::size_t>(in.varint());
    frame.model.runtimeNs = in.f64();
    frame.model.incurredCostNs = in.f64();
    frame.model.lastEpochCostNs = in.f64();
    frame.model.lastEpochRuntimeNs = in.f64();
    frame.model.lastMeasurementId = in.varint();
    const std::size_t estimateCount = in.listCount(27, "model estimate");
    lastName.clear();
    for (std::size_t i = 0; i < estimateCount; ++i) {
        std::string name = in.str();
        if (i > 0 && name <= lastName) {
            throw WireError("model estimates not strictly sorted");
        }
        adapt::RegionEstimate estimate;
        estimate.visits = in.f64();
        estimate.exclusiveNs = in.f64();
        estimate.epochsObserved = static_cast<std::size_t>(in.varint());
        estimate.samplingFactor = in.f64();
        lastName = name;
        frame.model.estimates.emplace_back(std::move(name), estimate);
    }
    const std::size_t suppressedCount = in.listCount(2, "model suppressed");
    lastName.clear();
    for (std::size_t i = 0; i < suppressedCount; ++i) {
        std::string name = in.str();
        if (i > 0 && name <= lastName) {
            throw WireError("model suppressed not strictly sorted");
        }
        const std::uint64_t count = in.varint();
        lastName = name;
        frame.model.lastSuppressed.emplace_back(std::move(name), count);
    }

    const std::size_t clientCount = in.listCount(8, "snapshot client");
    std::uint64_t lastClientId = 0;
    for (std::size_t c = 0; c < clientCount; ++c) {
        SnapshotClient client;
        client.id = in.varint();
        if (c > 0 && client.id <= lastClientId) {
            throw WireError("snapshot clients not strictly sorted");
        }
        lastClientId = client.id;
        if (client.id >= frame.nextClientId) {
            throw WireError("snapshot client id beyond next id");
        }
        client.evicted = in.u8() != 0;
        client.missedEpochs = in.varint();
        client.needsBaseline = in.u8() != 0;
        const std::size_t idMapSize = in.listCount(1, "id map entry");
        for (std::size_t i = 0; i < idMapSize; ++i) {
            const std::uint32_t fleetId = in.varint32("id map entry");
            // Fleet node ids: root plus the snapshot's node list.
            if (fleetId > frame.nodes.size()) {
                throw WireError("id map entry out of range");
            }
            client.idMap.push_back(fleetId);
        }
        const std::size_t regionMapSize = in.listCount(1, "region map entry");
        for (std::size_t i = 0; i < regionMapSize; ++i) {
            const std::uint32_t handle = in.varint32("region map entry");
            if (handle != scorep::kNoRegion &&
                handle >= frame.regionNames.size()) {
                throw WireError("region map entry out of range");
            }
            client.regionMap.push_back(handle);
        }
        client.watermark = decodeWatermark(in);
        if (client.watermark.nodeCount != client.idMap.size()) {
            throw WireError("watermark disagrees with id map");
        }
        const std::size_t ackedCount = in.listCount(2, "suppressed acked");
        std::uint64_t lastHandle = 0;
        for (std::size_t i = 0; i < ackedCount; ++i) {
            const std::uint32_t handle = in.varint32("suppressed handle");
            if (i > 0 && handle <= lastHandle) {
                throw WireError("suppressed acked not strictly sorted");
            }
            lastHandle = handle;
            client.suppressedAcked.emplace_back(handle, in.varint());
        }
        client.runtimeAckedNs = in.f64();
        client.epochsAcked = in.varint();
        client.lastSentPolicy = decodeFullPolicy(in);
        const std::size_t pendingCount = in.listCount(1, "pending frame");
        for (std::size_t i = 0; i < pendingCount; ++i) {
            const std::uint64_t size = in.varint();
            std::vector<std::uint8_t> pending;
            pending.reserve(static_cast<std::size_t>(size));
            for (std::uint64_t b = 0; b < size; ++b) {
                pending.push_back(in.u8());
            }
            // Each pending frame must itself be a sound delta frame from
            // this client — decode it now so restore never replays garbage.
            DeltaFrame delta = decodeDeltaFrame(pending);
            if (delta.clientId != client.id) {
                throw WireError("pending frame from wrong client");
            }
            client.pending.push_back(std::move(pending));
        }
        frame.clients.push_back(std::move(client));
    }
    if (!in.done()) {
        throw WireError("trailing bytes after snapshot payload");
    }
    return frame;
}

FrameType frameTypeOf(const std::vector<std::uint8_t>& bytes) {
    Reader in(nullptr, 0);
    return openFrame(bytes, in);
}

std::uint64_t decodeControlFrame(const std::vector<std::uint8_t>& bytes,
                                 FrameType expected) {
    Reader in(nullptr, 0);
    expectType(openFrame(bytes, in), expected);
    const std::uint64_t clientId = in.varint();
    if (!in.done()) {
        throw WireError("trailing bytes after control payload");
    }
    return clientId;
}

}  // namespace capi::fleet
