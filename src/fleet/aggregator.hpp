// The fleet aggregation server: one controller, thousands of producers.
//
// Clients stream per-epoch CCT deltas (fleet/wire.hpp) into a bounded MPSC
// data channel; the aggregator merges them into a fleet-wide ProfileTree
// under epochal snapshots, runs the SAME OverheadModel/BudgetPlanner the
// in-process controller runs, and pushes one converged policy back out to
// every client as a policy delta on its private channel.
//
// Epoch discipline: fleet epoch E closes when every connected client has an
// unconsumed delta frame; frames beyond the first stay queued for E+1, so a
// fast producer never outruns the epoch structure. Closing an epoch:
//   1. folds each client's oldest frame into the fleet tree in ascending
//      client-id order (the floating-point runtime sum must match the
//      rank-order sum of an epochAllRanks reference run bit for bit),
//   2. observes the per-epoch region totals (the cumulative fleet totals
//      differenced against the last epoch's snapshot) into the model by
//      NAME — see OverheadModel::observeEpoch(byName),
//   3. replans over the survey candidates and diffs against the previous
//      converged policy,
//   4. broadcasts: clients that saw the previous policy get upserts +
//      removals; fresh or resyncing clients get a full baseline. A client
//      whose fingerprint chain breaks asks for a resync instead of running
//      diverged (fleet/client.hpp).
//
// Determinism: given the same per-client epoch streams, the converged
// policy fingerprints are bit-identical to a Controller::epochAllRanks
// reference run over the same profiles — the property the tests pin. That
// is why merge order, model fold order, and runtime summation order are all
// fixed here rather than left to arrival order.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "adapt/budget_planner.hpp"
#include "adapt/config.hpp"
#include "adapt/overhead_model.hpp"
#include "fleet/channel.hpp"
#include "fleet/wire.hpp"
#include "scorepsim/profile.hpp"
#include "scorepsim/profile_delta.hpp"
#include "select/ic.hpp"

namespace capi::fleet {

struct AggregatorOptions {
    /// Bounded MPSC queue all clients send delta frames into. Memory is
    /// capped at capacity x frame size; producers feel backpressure here.
    std::size_t dataQueueCapacity = 256;
    /// Per-client policy queue (aggregator -> client).
    std::size_t policyQueueCapacity = 8;
    /// Model/planner/kill-switch knobs — the same Config an in-process
    /// Controller takes, so reference runs and fleet runs share every
    /// constant.
    adapt::Config config;
};

/// Cumulative counters; snapshot under the aggregator lock.
struct AggregatorStats {
    std::uint64_t framesMerged = 0;
    std::uint64_t bytesIn = 0;
    std::uint64_t bytesOut = 0;     ///< Policy frames, encoded size.
    std::uint64_t policyFramesSent = 0;
    std::uint64_t epochsCompleted = 0;
    std::uint64_t decodeErrors = 0;  ///< WireError frames dropped at the door.
    std::uint64_t resyncs = 0;
    std::uint64_t divergentClients = 0;  ///< Summed over epochs (cf.
                                         ///< EpochReport::divergentRanks).
    std::uint64_t clientsConnected = 0;
    std::uint64_t clientsDisconnected = 0;
};

class Aggregator {
public:
    /// What connect() hands a client: its id and the channel its policy
    /// frames arrive on (owned by the aggregator, valid until disconnect).
    struct Session {
        std::uint64_t clientId = 0;
        Channel* policyChannel = nullptr;
    };

    /// `graph` must outlive the aggregator (the planner's SCC grouping).
    /// `surveyIc` is the candidate set every epoch replans over — the same
    /// survey the clients' controllers started from.
    Aggregator(const cg::CallGraph& graph, select::InstrumentationConfig surveyIc,
               AggregatorOptions options = {});
    ~Aggregator();

    Aggregator(const Aggregator&) = delete;
    Aggregator& operator=(const Aggregator&) = delete;

    /// Registers a client and immediately queues its catch-up baseline (the
    /// current converged policy) on the returned policy channel — the
    /// late-joiner protocol's first half. Thread-safe.
    Session connect();
    /// Deregisters; pending frames from this client are discarded and the
    /// epoch completion rule stops waiting for it. Unknown ids are ignored
    /// (a Bye frame may race a direct disconnect).
    void disconnect(std::uint64_t clientId);

    /// The shared ingress every client sends delta/control frames into.
    Channel& dataChannel() { return data_; }

    /// Drains every frame currently queued and closes the fleet epoch if
    /// complete. Non-blocking; returns true when any frame was processed or
    /// an epoch closed. For tests that single-step the server.
    bool pump();
    /// Blocking serve loop for a dedicated thread: receives until stop()
    /// (or dataChannel().close()) and processes epochs as they complete.
    void serve();
    void stop();

    std::uint64_t epochsCompleted() const;
    /// Fingerprint of the latest converged policy.
    std::uint64_t convergedFingerprint() const;
    select::InstrumentationPolicy convergedPolicy() const;
    /// Fleet-wide cumulative profile, merged across all clients and epochs.
    scorep::ProfileTree fleetProfile() const;
    /// Cumulative per-region-name totals of the fleet profile.
    std::map<std::string, scorep::ProfileTree::RegionTotals> totalsByName() const;
    AggregatorStats stats() const;
    std::size_t clientCount() const;

private:
    struct ClientState {
        std::uint64_t id = 0;
        std::unique_ptr<Channel> policyChannel;
        /// Client node id -> fleet node id (grows as the client's tree does).
        std::vector<std::uint32_t> idMap;
        /// Client region handle -> fleet region handle.
        std::vector<scorep::RegionHandle> regionMap;
        std::deque<DeltaFrame> pending;
        /// The policy this client last received, the diff base for the next
        /// policy frame. A broken chain (resync) falls back to a baseline.
        select::InstrumentationPolicy lastSentPolicy;
        bool needsBaseline = false;
    };

    void handleFrame(const std::vector<std::uint8_t>& bytes);
    bool epochReady() const;
    void closeEpoch();
    void sendPolicyTo(ClientState& client, const PolicyFrame& base);
    scorep::RegionHandle fleetHandleFor(ClientState& client,
                                        std::uint32_t clientHandle);
    void mirrorKillSwitch(double measuredRatio, bool withinBudget);
    std::map<std::string, scorep::ProfileTree::RegionTotals>
    totalsByNameLocked() const;

    const cg::CallGraph* graph_;
    AggregatorOptions options_;
    Channel data_;

    mutable std::mutex mutex_;
    std::map<std::uint64_t, ClientState> clients_;  // ordered: merge order.
    /// Channels of departed clients, kept alive until destruction so a
    /// receiver still blocked on one wakes on close() instead of reading
    /// freed memory.
    std::vector<std::unique_ptr<Channel>> parkedChannels_;
    std::uint64_t nextClientId_ = 0;
    bool stopped_ = false;

    // --- the fleet-wide profile ------------------------------------------
    scorep::ProfileTree fleetTree_;
    /// Fleet-side region interning: name <-> dense handle.
    std::vector<std::string> regionNames_;
    std::map<std::string, scorep::RegionHandle> regionIds_;
    /// Cumulative per-name totals at the last closed epoch; the difference
    /// against the current totals is the epoch's observation.
    std::map<std::string, scorep::ProfileTree::RegionTotals> lastTotals_;

    // --- the mirrored controller decision state ---------------------------
    adapt::OverheadModel model_;
    adapt::BudgetPlanner planner_;
    select::InstrumentationConfig surveyIc_;
    select::InstrumentationConfig currentIc_;
    select::InstrumentationPolicy currentPolicy_;
    std::uint64_t epochsCompleted_ = 0;
    bool safeMode_ = false;
    std::size_t overBudgetStreak_ = 0;
    std::size_t inBudgetStreak_ = 0;
    /// Last epoch's headline numbers, repeated on catch-up/resync frames.
    double lastRatio_ = 0.0;
    double lastBudgetNs_ = 0.0;
    bool lastWithinBudget_ = true;
    std::uint64_t obsEventsAtLastEpoch_ = 0;

    AggregatorStats stats_;
    std::uint64_t metricsCollectorId_ = 0;
};

}  // namespace capi::fleet
