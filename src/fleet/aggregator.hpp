// The fleet aggregation server: one controller, thousands of producers.
//
// Clients stream per-epoch CCT deltas (fleet/wire.hpp) into a bounded MPSC
// data channel; the aggregator merges them into a fleet-wide ProfileTree
// under epochal snapshots, runs the SAME OverheadModel/BudgetPlanner the
// in-process controller runs, and pushes one converged policy back out to
// every client as a policy delta on its private channel.
//
// Epoch discipline: fleet epoch E closes when every connected client has an
// unconsumed delta frame; frames beyond the first stay queued for E+1, so a
// fast producer never outruns the epoch structure. Closing an epoch:
//   1. folds each client's oldest frame into the fleet tree in ascending
//      client-id order (the floating-point runtime sum must match the
//      rank-order sum of an epochAllRanks reference run bit for bit),
//   2. observes the per-epoch region totals (the cumulative fleet totals
//      differenced against the last epoch's snapshot) into the model by
//      NAME — see OverheadModel::observeEpoch(byName),
//   3. replans over the survey candidates and diffs against the previous
//      converged policy,
//   4. broadcasts: clients that saw the previous policy get upserts +
//      removals; fresh or resyncing clients get a full baseline. A client
//      whose fingerprint chain breaks asks for a resync instead of running
//      diverged (fleet/client.hpp).
//
// Determinism: given the same per-client epoch streams, the converged
// policy fingerprints are bit-identical to a Controller::epochAllRanks
// reference run over the same profiles — the property the tests pin. That
// is why merge order, model fold order, and runtime summation order are all
// fixed here rather than left to arrival order.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "adapt/budget_planner.hpp"
#include "adapt/config.hpp"
#include "adapt/overhead_model.hpp"
#include "fleet/channel.hpp"
#include "fleet/wire.hpp"
#include "scorepsim/profile.hpp"
#include "scorepsim/profile_delta.hpp"
#include "select/ic.hpp"

namespace capi::fleet {

/// Raised by the fleet.aggregator_crash fault site at the top of an epoch
/// close, before any state mutates — the simulation stand-in for the server
/// process dying. Tests catch it, discard the aggregator, and restore a twin
/// from the last checkpoint.
class AggregatorCrashError : public support::Error {
public:
    explicit AggregatorCrashError(const std::string& what)
        : support::Error("fleet aggregator: " + what) {}
};

/// Epoch liveness policy, mirroring MpiWorld::CollectivePolicy: with both
/// knobs set, a fleet epoch no longer waits forever for every client — it
/// closes once `timeoutNs` has elapsed since the epoch's first delta arrived
/// and at least `quorum` clients have one pending. Clients that miss a
/// timeout close are Lagging; `graceEpochs` consecutive misses evict them
/// from the epoch completion rule (their session state is RETAINED, so a
/// returning client resumes with one coalesced delta instead of a full
/// resync). Defaults keep the strict rule: every connected client blocks the
/// epoch, no timeouts, no eviction.
struct EpochPolicy {
    /// 0 = strict (never close on time). Measured from the first delta
    /// queued into an open epoch.
    std::uint64_t timeoutNs = 0;
    /// Minimum clients with a pending frame before a timeout may close the
    /// epoch. 0 = strict; a timeout close never merges zero frames.
    std::size_t quorum = 0;
    /// Consecutive missed epochs before a Lagging client is evicted
    /// (0 = lag forever, never evict).
    std::size_t graceEpochs = 2;
};

struct AggregatorOptions {
    /// Bounded MPSC queue all clients send delta frames into. Memory is
    /// capped at capacity x frame size; producers feel backpressure here.
    std::size_t dataQueueCapacity = 256;
    /// Per-client policy queue (aggregator -> client).
    std::size_t policyQueueCapacity = 8;
    /// Model/planner/kill-switch knobs — the same Config an in-process
    /// Controller takes, so reference runs and fleet runs share every
    /// constant.
    adapt::Config config;
    /// Liveness rule for epoch completion (strict by default).
    EpochPolicy epochPolicy;
};

/// Cumulative counters; snapshot under the aggregator lock. Counters are
/// per-incarnation: a restored aggregator starts them fresh (except
/// `restores`), because the property tests compare fleet state — totals and
/// fingerprints — not operational history.
struct AggregatorStats {
    std::uint64_t framesMerged = 0;
    std::uint64_t bytesIn = 0;
    std::uint64_t bytesOut = 0;     ///< Policy frames, encoded size.
    std::uint64_t policyFramesSent = 0;
    std::uint64_t epochsCompleted = 0;
    std::uint64_t decodeErrors = 0;  ///< WireError frames dropped at the door.
    std::uint64_t resyncs = 0;
    std::uint64_t divergentClients = 0;  ///< Summed over epochs (cf.
                                         ///< EpochReport::divergentRanks).
    std::uint64_t clientsConnected = 0;
    std::uint64_t clientsDisconnected = 0;
    // --- liveness / fault-tolerance accounting ---------------------------
    std::uint64_t timeoutEpochs = 0;   ///< Epochs closed by the liveness rule.
    std::uint64_t missedFrames = 0;    ///< Client-epochs merged without a frame.
    std::uint64_t evictions = 0;       ///< Clients dropped after graceEpochs.
    std::uint64_t resumes = 0;         ///< Evicted clients whose next delta
                                       ///< re-admitted them (auto-resume).
    std::uint64_t sessionResumes = 0;  ///< resume() handshakes served.
    std::uint64_t laggingPolicyDrops = 0;  ///< Broadcasts a lagging client's
                                           ///< full queue refused (trySend).
    std::uint64_t abandonedClients = 0;    ///< Still registered at serve() exit.
    std::uint64_t checkpoints = 0;
    std::uint64_t checkpointBytes = 0;
    std::uint64_t crashes = 0;   ///< Injected aggregator_crash fires.
    std::uint64_t restores = 0;  ///< 1 on an aggregator built from a snapshot.
};

class Aggregator {
public:
    /// Everything a returning client needs to continue its session instead
    /// of resyncing from scratch: the watermark/region/suppressed state the
    /// aggregator last ACKED, so the client rewinds its own bookkeeping to
    /// that point and its next delta coalesces everything since.
    struct ResumeState {
        /// The acked watermark, in CLIENT node ids — the client adopts it
        /// verbatim (its tree is append-only, so ids still line up).
        scorep::CctWatermark watermark;
        /// Region handles whose defs the aggregator holds; indexed by the
        /// client's handle.
        std::vector<bool> ackedRegions;
        /// Cumulative acked suppressed visits per client handle, sorted.
        std::vector<std::pair<std::uint32_t, std::uint64_t>> suppressed;
        double runtimeNs = 0.0;         ///< Cumulative acked runtime.
        std::uint64_t coveredEpochs = 0;  ///< Cumulative acked epoch count.
        /// Fingerprint of the policy this client was last sent — the diff
        /// base the next policy frame will chain from.
        std::uint64_t lastPolicyFingerprint = 0;
        std::uint64_t incarnation = 1;
    };

    /// What connect() hands a client: its id and the channel its policy
    /// frames arrive on (owned by the aggregator, valid until disconnect).
    /// resume() additionally fills `resume` and sets `resumed`.
    struct Session {
        std::uint64_t clientId = 0;
        Channel* policyChannel = nullptr;
        bool resumed = false;
        ResumeState resume;
    };

    /// `graph` must outlive the aggregator (the planner's SCC grouping).
    /// `surveyIc` is the candidate set every epoch replans over — the same
    /// survey the clients' controllers started from.
    Aggregator(const cg::CallGraph& graph, select::InstrumentationConfig surveyIc,
               AggregatorOptions options = {});
    /// Restores from a checkpoint() snapshot: the rebuilt aggregator
    /// continues bit-identically to an uninterrupted twin fed the same
    /// subsequent frames, under the next incarnation. `surveyIc` must be the
    /// survey the snapshot was accumulated against (fingerprint-checked).
    /// Throws WireError on a corrupt/mismatched snapshot — callers fall back
    /// to a fresh aggregator and a fleet-wide resync.
    Aggregator(const cg::CallGraph& graph, select::InstrumentationConfig surveyIc,
               const std::vector<std::uint8_t>& snapshot,
               AggregatorOptions options = {});
    ~Aggregator();

    Aggregator(const Aggregator&) = delete;
    Aggregator& operator=(const Aggregator&) = delete;

    /// Registers a client and immediately queues its catch-up baseline (the
    /// current converged policy) on the returned policy channel — the
    /// late-joiner protocol's first half. Thread-safe.
    Session connect();
    /// Re-admits a known client after a disconnect-less failure (client
    /// crash, aggregator restart): hands back a fresh policy channel plus
    /// the ResumeState the client rewinds to. Clears any eviction. Throws
    /// WireError when the session is unknown (the client must connect()
    /// fresh and resync) or when the fleet.frame_drop site eats the
    /// handshake (the client retries under backoff). Thread-safe.
    Session resume(std::uint64_t clientId);
    /// Deregisters; pending frames from this client are discarded and the
    /// epoch completion rule stops waiting for it. Unknown ids are ignored
    /// (a Bye frame may race a direct disconnect).
    void disconnect(std::uint64_t clientId);

    /// Byte-deterministic snapshot of the aggregator's complete state —
    /// same state, same bytes — sealed like every other wire frame. Restore
    /// with the snapshot constructor.
    std::vector<std::uint8_t> checkpoint();

    /// The shared ingress every client sends delta/control frames into.
    Channel& dataChannel() { return data_; }

    /// Drains every frame currently queued and closes the fleet epoch if
    /// complete. Non-blocking; returns true when any frame was processed or
    /// an epoch closed. For tests that single-step the server.
    bool pump();
    /// Blocking serve loop for a dedicated thread: receives until stop()
    /// (or dataChannel().close()) and processes epochs as they complete.
    void serve();
    void stop();

    std::uint64_t epochsCompleted() const;
    /// 1 for a fresh aggregator; previous + 1 after every snapshot restore.
    std::uint64_t incarnation() const;
    /// Divergence *diagnosis* from the last closed epoch: the region-level
    /// diff between the policy a divergent client reported measuring under
    /// and the reducer's converged policy — names, not just a fingerprint
    /// mismatch count. Empty when the last epoch had no divergent client.
    select::PolicyDelta lastDivergence() const;
    /// Fingerprint of the latest converged policy.
    std::uint64_t convergedFingerprint() const;
    select::InstrumentationPolicy convergedPolicy() const;
    /// Fleet-wide cumulative profile, merged across all clients and epochs.
    scorep::ProfileTree fleetProfile() const;
    /// Cumulative per-region-name totals of the fleet profile.
    std::map<std::string, scorep::ProfileTree::RegionTotals> totalsByName() const;
    AggregatorStats stats() const;
    std::size_t clientCount() const;

private:
    struct ClientState {
        std::uint64_t id = 0;
        std::unique_ptr<Channel> policyChannel;
        /// Client node id -> fleet node id (grows as the client's tree does).
        std::vector<std::uint32_t> idMap;
        /// Client region handle -> fleet region handle.
        std::vector<scorep::RegionHandle> regionMap;
        std::deque<DeltaFrame> pending;
        /// The policy this client last received, the diff base for the next
        /// policy frame. A broken chain (resync) falls back to a baseline.
        select::InstrumentationPolicy lastSentPolicy;
        bool needsBaseline = false;
        // --- acked session state, updated at INGEST (not merge) so a
        // checkpoint that also carries the pending queue is self-consistent,
        // and a resume() rewinds the client to exactly what was received.
        /// Mirror of the client's watermark after its last acked frame
        /// (client-side node ids; counters are exact — monotone integers).
        scorep::CctWatermark acked;
        /// Cumulative acked suppressed visits, by client handle.
        std::map<std::uint32_t, std::uint64_t> suppressedAcked;
        double runtimeAckedNs = 0.0;
        std::uint64_t epochsAcked = 0;
        // --- liveness ----------------------------------------------------
        bool evicted = false;
        std::uint64_t missedEpochs = 0;  ///< Consecutive timeout-close misses.
    };

    void restoreFromSnapshot(const SnapshotFrame& snap);
    std::vector<std::uint8_t> checkpointLocked();
    void handleFrame(const std::vector<std::uint8_t>& bytes);
    bool epochReady() const;
    /// True when the liveness policy is armed, an epoch is open past its
    /// timeout, and quorum is met.
    bool timeoutClosable(std::uint64_t nowNs) const;
    void closeEpoch(bool timedOut);
    /// blocking=false is the Lagging-client path: trySend, and on refusal
    /// leave the diff chain anchored (never block the epoch pipeline on a
    /// stalled client's full queue).
    void sendPolicyTo(ClientState& client, const PolicyFrame& base,
                      bool blocking = true);
    scorep::RegionHandle fleetHandleFor(ClientState& client,
                                        std::uint32_t clientHandle);
    void mirrorKillSwitch(double measuredRatio, bool withinBudget);
    std::map<std::string, scorep::ProfileTree::RegionTotals>
    totalsByNameLocked() const;

    const cg::CallGraph* graph_;
    AggregatorOptions options_;
    Channel data_;

    mutable std::mutex mutex_;
    std::map<std::uint64_t, ClientState> clients_;  // ordered: merge order.
    /// Channels of departed clients, kept alive until destruction so a
    /// receiver still blocked on one wakes on close() instead of reading
    /// freed memory.
    std::vector<std::unique_ptr<Channel>> parkedChannels_;
    std::uint64_t nextClientId_ = 0;
    bool stopped_ = false;

    // --- the fleet-wide profile ------------------------------------------
    scorep::ProfileTree fleetTree_;
    /// Fleet-side region interning: name <-> dense handle.
    std::vector<std::string> regionNames_;
    std::map<std::string, scorep::RegionHandle> regionIds_;
    /// Cumulative per-name totals at the last closed epoch; the difference
    /// against the current totals is the epoch's observation.
    std::map<std::string, scorep::ProfileTree::RegionTotals> lastTotals_;

    // --- the mirrored controller decision state ---------------------------
    adapt::OverheadModel model_;
    adapt::BudgetPlanner planner_;
    select::InstrumentationConfig surveyIc_;
    select::InstrumentationConfig currentIc_;
    select::InstrumentationPolicy currentPolicy_;
    std::uint64_t epochsCompleted_ = 0;
    std::uint64_t incarnation_ = 1;
    /// nowNs() when the open epoch's first delta was ingested; 0 = no epoch
    /// open. The liveness timeout measures from here.
    std::uint64_t epochOpenedAtNs_ = 0;
    /// Diagnosis from the last epoch's divergent client (see lastDivergence).
    select::PolicyDelta lastDivergence_;
    bool safeMode_ = false;
    std::size_t overBudgetStreak_ = 0;
    std::size_t inBudgetStreak_ = 0;
    /// Last epoch's headline numbers, repeated on catch-up/resync frames.
    double lastRatio_ = 0.0;
    double lastBudgetNs_ = 0.0;
    bool lastWithinBudget_ = true;
    std::uint64_t obsEventsAtLastEpoch_ = 0;

    AggregatorStats stats_;
    std::uint64_t metricsCollectorId_ = 0;
};

}  // namespace capi::fleet
