// Binary wire format for fleet-scale profile streaming.
//
// Producers ship per-epoch deltas of their flat CCT (scorepsim/
// profile_delta.hpp) to the aggregator and receive converged policy deltas
// back. The format is byte-deterministic — the same frame struct always
// encodes to the same bytes — so golden-byte tests can pin it and the
// aggregator can deduplicate retransmissions by content.
//
// Frame layout (little-endian):
//
//   u32    magic "CFW1"
//   u8     frame type
//   varint payload length
//   ...    payload (type-specific, see the structs below)
//   u64    FNV-1a of the payload bytes
//
// Varints are LEB128 (7 bits per byte, high bit = continue) and carry only
// non-negative quantities: counts, ids, and counter deltas — which are
// non-negative by the CCT's monotonicity. Full-entropy words (policy
// fingerprints, double bit patterns) are fixed 8-byte fields; varint would
// inflate them.
//
// Decoding is defensive end to end: every read is bounds-checked, counts are
// validated against the bytes that remain, tier/handle values are range
// checked, and the checksum must match — any violation throws WireError
// (never UB, never a silent mis-merge). A frame that decodes cleanly is
// structurally sound; cross-frame consistency (id maps, fingerprint chains)
// is the aggregator's job.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "adapt/overhead_model.hpp"
#include "scorepsim/profile.hpp"
#include "scorepsim/profile_delta.hpp"
#include "select/ic.hpp"
#include "support/error.hpp"

namespace capi::fleet {

/// Raised on any malformed, truncated, or corrupted frame.
class WireError : public support::Error {
public:
    explicit WireError(const std::string& what)
        : support::Error("fleet wire: " + what) {}
};

inline constexpr std::uint32_t kWireMagic = 0x31574643u;  // "CFW1"

enum class FrameType : std::uint8_t {
    Delta = 1,           ///< client -> aggregator: one epoch's CCT delta.
    PolicyBaseline = 2,  ///< aggregator -> client: full converged policy.
    PolicyUpdate = 3,    ///< aggregator -> client: policy diff vs last sent.
    Resync = 4,          ///< client -> aggregator: fingerprint chain broken.
    Bye = 5,             ///< client -> aggregator: clean disconnect.
    Snapshot = 6,        ///< aggregator state checkpoint (never on channels).
};

/// First-use region definition: producers intern (handle -> name) once per
/// stream; later frames carry bare handles.
struct RegionDef {
    std::uint32_t handle = 0;
    std::string name;
};

/// Per-region gate-suppressed visit delta (Sampled tier bookkeeping).
struct SuppressedDelta {
    std::uint32_t region = 0;
    std::uint64_t visits = 0;
};

/// client -> aggregator: everything one epoch accumulated. Node ids and
/// region handles are producer-side; the aggregator remaps both.
struct DeltaFrame {
    std::uint64_t clientId = 0;
    std::uint64_t epoch = 0;          ///< Client-local epoch of the last covered epoch.
    std::uint64_t coveredEpochs = 1;  ///< >1 when a dropped delta coalesced.
    double runtimeNs = 0.0;           ///< Summed over covered epochs.
    std::uint64_t policyFingerprint = 0;  ///< Policy applied while measuring.
    std::vector<RegionDef> newRegions;
    scorep::CctDelta cct;
    std::vector<SuppressedDelta> suppressed;
};

/// aggregator -> client: the converged policy for one fleet epoch, either as
/// a full baseline (late-joiner catch-up, resync) or as upserts/removals
/// against the last policy this client was sent. `fingerprint` is the full
/// policy's fingerprint after applying — the client verifies it and requests
/// a resync on mismatch instead of running diverged.
struct PolicyFrameEntry {
    std::string name;
    select::RegionPolicy policy;
};

struct PolicyFrame {
    std::uint64_t epoch = 0;
    /// The sending aggregator's incarnation (1 for a fresh aggregator,
    /// previous + 1 after every checkpoint restore). A client that sees the
    /// incarnation move knows the server restarted and its session state now
    /// lives on the restored twin — the restart-detection half of the
    /// checkpoint/resume protocol.
    std::uint64_t incarnation = 1;
    bool baseline = false;
    std::uint64_t prevFingerprint = 0;  ///< Update only: expected base.
    std::uint64_t fingerprint = 0;
    std::vector<PolicyFrameEntry> upserts;
    std::vector<std::string> removed;   ///< Update only.
    // Headline epoch telemetry so clients can fill their EpochReport.
    double measuredOverheadRatio = 0.0;
    double budgetNs = 0.0;
    bool withinBudget = false;
};

/// One fleet-tree node in a snapshot, in node-id order (ids 1..n-1; the
/// root is implicit with zero counters, as in CctWatermark). Parents always
/// precede children, so a restore can rebuild the tree in one pass.
struct SnapshotNode {
    std::uint32_t parent = 0;
    std::uint32_t region = 0;
    std::uint64_t visits = 0;
    std::uint64_t inclusiveNs = 0;
};

/// Per-client session state in a snapshot: everything the aggregator must
/// remember for a client to resume after a restart without a full resync —
/// its id maps, the acked watermark the client rewinds to, the fingerprint
/// chain base (lastSentPolicy), and any ingested-but-unmerged frames.
struct SnapshotClient {
    std::uint64_t id = 0;
    bool evicted = false;
    std::uint64_t missedEpochs = 0;
    bool needsBaseline = false;
    /// Client node id -> fleet node id.
    std::vector<std::uint32_t> idMap;
    /// Client region handle -> fleet region handle (kNoRegion = undefined).
    std::vector<std::uint32_t> regionMap;
    /// Mirror of the client's watermark at its last acked frame (client-side
    /// node ids) — what ResumeState hands back after a restore.
    scorep::CctWatermark watermark;
    /// Cumulative suppressed visits acked per client handle, sorted.
    std::vector<std::pair<std::uint32_t, std::uint64_t>> suppressedAcked;
    double runtimeAckedNs = 0.0;
    std::uint64_t epochsAcked = 0;
    select::InstrumentationPolicy lastSentPolicy;
    /// Ingested but unmerged delta frames, verbatim (each carries its own
    /// seal, so snapshot corruption inside one is still caught typed).
    std::vector<std::vector<std::uint8_t>> pending;
};

/// The aggregator's complete persistent state: a byte-deterministic,
/// versioned payload under the same CFW seal every other frame uses.
/// Aggregator::checkpoint() emits one; the restoring constructor replays it
/// so the restored aggregator continues bit-identically to an uninterrupted
/// twin. The survey fingerprint guards against restoring under a different
/// candidate set than the one the state was accumulated against.
struct SnapshotFrame {
    std::uint64_t incarnation = 1;
    std::uint64_t epochsCompleted = 0;
    std::uint64_t nextClientId = 0;
    bool safeMode = false;
    std::uint64_t overBudgetStreak = 0;
    std::uint64_t inBudgetStreak = 0;
    double lastRatio = 0.0;
    double lastBudgetNs = 0.0;
    bool lastWithinBudget = true;
    std::uint64_t surveyFingerprint = 0;
    select::InstrumentationPolicy currentPolicy;
    std::vector<std::string> regionNames;
    std::vector<SnapshotNode> nodes;
    std::vector<std::pair<std::string, scorep::ProfileTree::RegionTotals>>
        lastTotals;
    adapt::ModelState model;
    std::vector<SnapshotClient> clients;  ///< Ascending client id.
};

std::vector<std::uint8_t> encodeDeltaFrame(const DeltaFrame& frame);
std::vector<std::uint8_t> encodePolicyFrame(const PolicyFrame& frame);
std::vector<std::uint8_t> encodeSnapshotFrame(const SnapshotFrame& frame);
/// Resync / Bye: payload is just the client id.
std::vector<std::uint8_t> encodeControlFrame(FrameType type,
                                             std::uint64_t clientId);

/// Validates header + checksum and returns the frame type.
FrameType frameTypeOf(const std::vector<std::uint8_t>& bytes);

DeltaFrame decodeDeltaFrame(const std::vector<std::uint8_t>& bytes);
PolicyFrame decodePolicyFrame(const std::vector<std::uint8_t>& bytes);
/// Throws WireError on anything but a structurally sound v1 snapshot —
/// truncation, bit flips, bad version, inconsistent per-client state.
SnapshotFrame decodeSnapshotFrame(const std::vector<std::uint8_t>& bytes);
std::uint64_t decodeControlFrame(const std::vector<std::uint8_t>& bytes,
                                 FrameType expected);

}  // namespace capi::fleet
