// Overhead-budget exclusion planning: pick the IC subset that retains the
// most measured exclusive time while its predicted probe cost stays under a
// fraction of the application runtime.
//
// Candidates are grouped by SCC condensation component of the call graph —
// the same collapsing statementAggregation uses — and a group is kept or
// dropped as a whole, so mutually recursive regions (whose statements and
// times aggregate jointly) never end up half-instrumented. The knapsack is
// solved greedily by value density (retained exclusive ns per probe-cost
// ns), which is deterministic and within a group-size of optimal for this
// shape of instance; `keep`-listed groups are admitted first regardless of
// budget. The per-candidate lookups (graph id, SCC component, model
// estimate) dominate at OpenFOAM scale and shard over the process-wide
// support::Executor pool; the greedy sweep itself consumes a per-candidate
// array in fixed order, so results are thread-count invariant.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "adapt/overhead_model.hpp"
#include "cg/call_graph.hpp"
#include "cg/csr_view.hpp"
#include "select/ic.hpp"
#include "select/scc.hpp"

namespace capi::support {
class ThreadPool;
}

namespace capi::adapt {

/// DEPRECATED thin shim: prefer adapt::Config, which adds the sampled-tier
/// knobs. Plans made through this struct run with the sampled tier disabled
/// (the binary Full|Off planner, unchanged).
struct PlannerOptions {
    /// Probe-time budget as a fraction of *application* runtime (probe cost
    /// excluded), so the realized overhead ratio stays below the fraction
    /// even after trimming shrinks the total runtime.
    double budgetFraction = 0.05;
    /// Regions never excluded; their SCC group is admitted before the
    /// budget sweep and may alone exceed the budget (the user's call).
    std::vector<std::string> keep;
    /// As in PipelineOptions: 1 = serial reference, anything else borrows
    /// the process-wide Executor pool unless `pool` injects one.
    std::size_t threads = 1;
    support::ThreadPool* pool = nullptr;
};

struct PlanResult {
    select::InstrumentationConfig ic;     ///< The trimmed patch set (the
                                          ///< policy's Full + Sampled regions).
    select::InstrumentationPolicy policy; ///< The tiered plan itself.
    std::vector<std::string> excluded;    ///< Dropped candidates, sorted.
    double budgetNs = 0.0;                ///< Absolute budget this plan used.
    double plannedProbeCostNs = 0.0;      ///< Predicted cost of `policy`.
    double retainedValueNs = 0.0;         ///< Exclusive ns kept visible.
    std::size_t groupsConsidered = 0;
    std::size_t groupsRetained = 0;       ///< Full + Sampled groups.
    std::size_t groupsSampled = 0;        ///< Groups demoted, not evicted.
    std::size_t fullRegions = 0;
    std::size_t sampledRegions = 0;
};

class BudgetPlanner {
public:
    /// `graph` must outlive the planner. SCC decompositions are cached per
    /// generation stamp, so repeated plans against an unchanged graph pay
    /// Tarjan once.
    explicit BudgetPlanner(const cg::CallGraph& graph) : graph_(&graph) {}

    BudgetPlanner(const BudgetPlanner&) = delete;
    BudgetPlanner& operator=(const BudgetPlanner&) = delete;

    /// Plans over `candidate` (typically the survey IC, so previously
    /// excluded regions can be re-admitted when budget allows). A model
    /// with no observed epochs keeps every candidate: there is no data to
    /// exclude on. Candidates unknown to both graph and model cost nothing
    /// and are kept — cold paths stay covered, exactly like refineIc's
    /// unmeasured rule.
    ///
    /// With config.enableSampledTier the greedy sweep gains a middle rung:
    /// a group whose Full cost overflows the remaining budget is retried at
    /// its Sampled cost (Full/everyN plus the gate toll on the suppressed
    /// visits) and demoted rather than evicted when that fits — SCC-group-
    /// atomically, so a recursion group is never half-sampled. keep-listed
    /// groups are pinned at Full.
    PlanResult plan(const select::InstrumentationConfig& candidate,
                    const OverheadModel& model, const Config& config) const;

    /// DEPRECATED binary overload: forwards with the sampled tier disabled.
    PlanResult plan(const select::InstrumentationConfig& candidate,
                    const OverheadModel& model,
                    const PlannerOptions& options = {}) const;

private:
    const cg::CallGraph* graph_;
    /// (generation, scc) of the last plan; rebuilt when the graph mutates.
    mutable std::mutex cacheMutex_;
    mutable std::uint64_t cachedGeneration_ = 0;
    mutable std::shared_ptr<const select::SccResult> cachedScc_;
};

}  // namespace capi::adapt
