// Per-region probe-cost estimation across measurement epochs.
//
// The adaptive controller (see controller.hpp) needs two numbers per region
// to trade instrumentation coverage against overhead: what keeping the
// region's probes costs per epoch (visit count x calibrated per-event cost,
// the model of Arafa et al.'s "redundancy" — probes whose cost exceeds their
// information value) and what measuring it buys (its exclusive time). Both
// are folded across epochs with an exponentially weighted moving average so
// a single bursty epoch cannot thrash the instrumented set, following the
// adaptive-sampling feedback designs of Mertz & Nunes.
//
// Regions carried in the active IC but absent from an epoch's profile
// observed a true zero (they did not run); regions *outside* the active IC
// are unobservable — their probes are unpatched — so their estimates stay
// frozen at the last measured value, which is the best predictor available
// should the planner re-admit them.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>

#include "scorepsim/measurement.hpp"
#include "scorepsim/profile.hpp"
#include "select/ic.hpp"

namespace capi::adapt {

struct ModelOptions {
    /// Calibrated wall (or virtual) cost of one probe event; see
    /// scorep::calibrateProbeCostNs(). Re-run the calibration whenever the
    /// measurement hot path changes (it is the constant every budget
    /// decision scales with); frozen estimates survive such a shift because
    /// cost is recomputed as visits x perEventCostNs at planning time — only
    /// the EWMA'd visit counts are stored, never a stale cost product.
    double perEventCostNs = 120.0;
    /// Weight of the newest epoch in the moving average (1.0 = no memory).
    double ewmaAlpha = 0.5;
};

/// Smoothed per-epoch behaviour of one region.
struct RegionEstimate {
    double visits = 0.0;        ///< Visits per epoch (EWMA).
    double exclusiveNs = 0.0;   ///< Exclusive time per epoch (EWMA).
    std::size_t epochsObserved = 0;
};

class OverheadModel {
public:
    explicit OverheadModel(ModelOptions options = {}) : options_(options) {}

    /// Folds one epoch's merged profile into the estimates. `activeIc`
    /// names the regions that were instrumented during the epoch (see the
    /// freeze semantics above); nullptr treats every known region as active.
    void observeEpoch(const scorep::ProfileTree& profile,
                      const scorep::Measurement& measurement,
                      double epochRuntimeNs,
                      const select::InstrumentationConfig* activeIc = nullptr);

    /// Same, over pre-aggregated per-region totals — for callers that need
    /// the totals themselves (the controller's metric folding) so the
    /// profile tree is walked once per epoch, not once per consumer.
    void observeEpoch(
        const std::unordered_map<scorep::RegionHandle,
                                 scorep::ProfileTree::RegionTotals>& regionTotals,
        const scorep::Measurement& measurement, double epochRuntimeNs,
        const select::InstrumentationConfig* activeIc = nullptr);

    std::size_t epochCount() const { return epochs_; }
    const ModelOptions& options() const { return options_; }

    const RegionEstimate* estimate(const std::string& name) const;
    const std::unordered_map<std::string, RegionEstimate>& estimates() const {
        return estimates_;
    }

    /// Predicted per-epoch probe cost of keeping a region instrumented:
    /// one enter plus one exit event per visit.
    double probeCostNs(const RegionEstimate& estimate) const {
        return estimate.visits * 2.0 * options_.perEventCostNs;
    }

    /// Smoothed epoch runtime and the probe cost actually incurred.
    double epochRuntimeNs() const { return runtimeNs_; }
    double incurredProbeCostNs() const { return incurredCostNs_; }
    /// Runtime attributable to the application itself — the base the
    /// planner's budget is computed against, so the post-trim overhead
    /// ratio stays below the budget even as the runtime shrinks.
    double appRuntimeNs() const {
        double app = runtimeNs_ - incurredCostNs_;
        return app > 0.0 ? app : 0.0;
    }

    /// The latest epoch alone, un-smoothed: this is the "measured probe
    /// overhead" the controller checks for convergence.
    double lastEpochProbeCostNs() const { return lastEpochCostNs_; }
    double lastEpochOverheadRatio() const {
        return lastEpochRuntimeNs_ > 0.0 ? lastEpochCostNs_ / lastEpochRuntimeNs_
                                         : 0.0;
    }

private:
    ModelOptions options_;
    std::unordered_map<std::string, RegionEstimate> estimates_;
    std::size_t epochs_ = 0;
    double runtimeNs_ = 0.0;
    double incurredCostNs_ = 0.0;
    double lastEpochCostNs_ = 0.0;
    double lastEpochRuntimeNs_ = 0.0;
};

}  // namespace capi::adapt
