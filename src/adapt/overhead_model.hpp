// Per-region probe-cost estimation across measurement epochs.
//
// The adaptive controller (see controller.hpp) needs two numbers per region
// to trade instrumentation coverage against overhead: what keeping the
// region's probes costs per epoch (visit count x calibrated per-event cost,
// the model of Arafa et al.'s "redundancy" — probes whose cost exceeds their
// information value) and what measuring it buys (its exclusive time). Both
// are folded across epochs with an exponentially weighted moving average so
// a single bursty epoch cannot thrash the instrumented set, following the
// adaptive-sampling feedback designs of Mertz & Nunes.
//
// Regions carried in the active IC but absent from an epoch's profile
// observed a true zero (they did not run); regions *outside* the active IC
// are unobservable — their probes are unpatched — so their estimates stay
// frozen at the last measured value, which is the best predictor available
// should the planner re-admit them.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "adapt/config.hpp"
#include "scorepsim/measurement.hpp"
#include "scorepsim/profile.hpp"
#include "select/ic.hpp"

namespace capi::adapt {

/// DEPRECATED thin shim: prefer adapt::Config, which carries these knobs
/// (and the gate cost the tiered model needs). Kept for one release so the
/// binary Full|Off call sites keep compiling unchanged.
struct ModelOptions {
    /// Calibrated wall (or virtual) cost of one probe event; see
    /// scorep::calibrateProbeCostNs(). Re-run the calibration whenever the
    /// measurement hot path changes (it is the constant every budget
    /// decision scales with); frozen estimates survive such a shift because
    /// cost is recomputed as visits x perEventCostNs at planning time — only
    /// the EWMA'd visit counts are stored, never a stale cost product.
    double perEventCostNs = 120.0;
    /// Weight of the newest epoch in the moving average (1.0 = no memory).
    double ewmaAlpha = 0.5;
};

/// Smoothed per-epoch behaviour of one region.
struct RegionEstimate {
    double visits = 0.0;        ///< *True* visits per epoch (EWMA): recorded
                                ///< plus gate-suppressed, so a Sampled epoch
                                ///< estimates the same count a Full epoch
                                ///< would have measured.
    double exclusiveNs = 0.0;   ///< Exclusive time per epoch (EWMA). At a
                                ///< Sampled region this is the recorded time
                                ///< extrapolated by trueVisits/recorded.
    std::size_t epochsObserved = 0;
    /// EWMA of trueVisits / recordedVisits for the region: 1.0 while fully
    /// measured, everyN-ish while decimated, decaying back toward 1.0 over
    /// Full epochs. A high factor flags estimates carrying extrapolation
    /// noise; an epoch whose samples were ALL suppressed (no time recorded)
    /// updates visits exactly but leaves exclusiveNs frozen.
    double samplingFactor = 1.0;
};

/// The model's complete mutable state, exported for checkpointing (the
/// fleet aggregator's snapshot frame). Map-backed members are flattened to
/// name-sorted vectors so two saves of the same model are byte-identical
/// once encoded, and doubles are carried verbatim — restoreState followed by
/// the same observations continues bit-identically.
struct ModelState {
    std::size_t epochs = 0;
    double runtimeNs = 0.0;
    double incurredCostNs = 0.0;
    double lastEpochCostNs = 0.0;
    double lastEpochRuntimeNs = 0.0;
    std::uint64_t lastMeasurementId = 0;
    std::vector<std::pair<std::string, RegionEstimate>> estimates;
    std::vector<std::pair<std::string, std::uint64_t>> lastSuppressed;
};

class OverheadModel {
public:
    explicit OverheadModel(ModelOptions options = {}) : options_(options) {}
    /// Config-driven construction: takes perEventCostNs/ewmaAlpha plus the
    /// gate cost the tiered accounting charges per suppressed event.
    explicit OverheadModel(const Config& config)
        : options_{config.perEventCostNs, config.ewmaAlpha},
          gateCostNs_(config.gateCostNs) {}

    /// Folds one epoch's merged profile into the estimates. `activeIc`
    /// names the regions that were instrumented during the epoch (see the
    /// freeze semantics above); nullptr treats every known region as active.
    void observeEpoch(const scorep::ProfileTree& profile,
                      const scorep::Measurement& measurement,
                      double epochRuntimeNs,
                      const select::InstrumentationConfig* activeIc = nullptr);

    /// Same, over pre-aggregated per-region totals — for callers that need
    /// the totals themselves (the controller's metric folding) so the
    /// profile tree is walked once per epoch, not once per consumer.
    void observeEpoch(
        const std::unordered_map<scorep::RegionHandle,
                                 scorep::ProfileTree::RegionTotals>& regionTotals,
        const scorep::Measurement& measurement, double epochRuntimeNs,
        const select::InstrumentationConfig* activeIc = nullptr);

    /// One region-name's worth of epoch observation, for callers that
    /// aggregate regions themselves. `suppressed` is the epoch's
    /// gate-suppressed visit DELTA (already differenced — the by-handle
    /// overloads derive it from the Measurement's cumulative counters).
    struct RegionObservation {
        double visits = 0.0;
        double exclusiveNs = 0.0;
        double suppressed = 0.0;
    };

    /// Same fold over name-keyed observations with no Measurement in sight —
    /// the fleet aggregator's entry point, where region identity arrives as
    /// wire-interned names and suppression counters arrive pre-differenced.
    /// The ordered map pins the floating-point fold order, so a fleet
    /// aggregation and an in-process reference run accumulate epoch cost in
    /// the identical sequence (every by-handle overload funnels through this
    /// one) — bit-identical budgets, bit-identical plans.
    void observeEpoch(const std::map<std::string, RegionObservation>& byName,
                      double epochRuntimeNs,
                      const select::InstrumentationConfig* activeIc = nullptr);

    std::size_t epochCount() const { return epochs_; }
    const ModelOptions& options() const { return options_; }
    double gateCostNs() const { return gateCostNs_; }

    const RegionEstimate* estimate(const std::string& name) const;
    const std::unordered_map<std::string, RegionEstimate>& estimates() const {
        return estimates_;
    }

    /// Predicted per-epoch probe cost of keeping a region instrumented:
    /// one enter plus one exit event per visit.
    double probeCostNs(const RegionEstimate& estimate) const {
        return estimate.visits * 2.0 * options_.perEventCostNs;
    }

    /// Smoothed epoch runtime and the probe cost actually incurred.
    double epochRuntimeNs() const { return runtimeNs_; }
    double incurredProbeCostNs() const { return incurredCostNs_; }
    /// Runtime attributable to the application itself — the base the
    /// planner's budget is computed against, so the post-trim overhead
    /// ratio stays below the budget even as the runtime shrinks.
    double appRuntimeNs() const {
        double app = runtimeNs_ - incurredCostNs_;
        return app > 0.0 ? app : 0.0;
    }

    /// Charges additional measurement-infrastructure cost (the trace
    /// recorder's own events, obs::calibrateObsCostNs x events) against the
    /// CURRENT epoch — call directly after observeEpoch. The charge lands in
    /// both the un-smoothed epoch cost (so the convergence check and the
    /// kill-switch see it) and the EWMA'd incurred cost (so the planner's
    /// budget base shrinks by it), with the same first/alpha fold
    /// observeEpoch applied to this epoch's probe cost.
    void chargeSelfCost(double selfCostNs);

    /// Exports the EWMA state (sorted, deterministic) for checkpointing.
    /// Knobs (perEventCostNs/ewmaAlpha/gateCostNs) are NOT part of the
    /// state — a restored model takes them from its own construction, the
    /// same way a fleet reference run does.
    ModelState saveState() const;
    /// Replaces the model's state wholesale with a previously saved one.
    void restoreState(const ModelState& state);

    /// The latest epoch alone, un-smoothed: this is the "measured probe
    /// overhead" the controller checks for convergence.
    double lastEpochProbeCostNs() const { return lastEpochCostNs_; }
    double lastEpochOverheadRatio() const {
        return lastEpochRuntimeNs_ > 0.0 ? lastEpochCostNs_ / lastEpochRuntimeNs_
                                         : 0.0;
    }

private:
    ModelOptions options_;
    double gateCostNs_ = 10.0;
    std::unordered_map<std::string, RegionEstimate> estimates_;
    /// Cumulative per-name suppressed-visit counters at the last observed
    /// epoch, so each epoch folds only its own delta. Keyed to a Measurement
    /// instance: when observeEpoch sees a different instanceId() the
    /// baselines reset, because a fresh Measurement's cumulative counters
    /// ARE the epoch's delta — even when a deterministic workload makes
    /// them numerically identical to the previous epoch's.
    std::unordered_map<std::string, std::uint64_t> lastSuppressed_;
    std::uint64_t lastMeasurementId_ = 0;
    std::size_t epochs_ = 0;
    double runtimeNs_ = 0.0;
    double incurredCostNs_ = 0.0;
    double lastEpochCostNs_ = 0.0;
    double lastEpochRuntimeNs_ = 0.0;
};

/// Estimated-vs-true profile error, in percent: for every region the `truth`
/// measurement recorded, compare the `estimated` measurement's extrapolated
/// totals (recorded + suppressed visits; exclusive time scaled by
/// trueVisits/recordedVisits) against the fully measured ones, and average
/// the per-region relative errors of visit count and exclusive time. This is
/// the accuracy a Sampled tier trades for its overhead reduction; both
/// measurements must be quiescent. Returns 0 when `truth` saw nothing.
double profileErrorPercent(const scorep::Measurement& estimated,
                           const scorep::Measurement& truth);

}  // namespace capi::adapt
