#include "adapt/budget_planner.hpp"

#include <algorithm>
#include <string_view>
#include <unordered_map>
#include <unordered_set>

#include "support/executor.hpp"
#include "support/thread_pool.hpp"

namespace capi::adapt {

namespace {

/// Below this candidate count the sharded lookup phase costs more than the
/// loop it splits (same family as select's sharding threshold).
constexpr std::size_t kParallelPlanThreshold = 1 << 14;

struct CandidateInfo {
    std::uint64_t group = 0;
    double costNs = 0.0;
    double valueNs = 0.0;
};

struct Group {
    double costNs = 0.0;
    double valueNs = 0.0;
    std::size_t firstCandidate = 0;  ///< Deterministic tie-break.
    bool keep = false;
    bool included = false;
};

}  // namespace

PlanResult BudgetPlanner::plan(const select::InstrumentationConfig& candidate,
                               const OverheadModel& model,
                               const PlannerOptions& options) const {
    PlanResult result;
    result.ic.specName = candidate.specName.empty() ? "budget"
                                                    : candidate.specName + "+budget";
    result.ic.application = candidate.application;

    if (model.epochCount() == 0) {
        // Nothing measured yet: no basis to exclude anything.
        result.ic.functions = candidate.functions;
        result.ic.staticIds = candidate.staticIds;
        return result;
    }

    std::shared_ptr<const select::SccResult> scc;
    {
        std::lock_guard<std::mutex> lock(cacheMutex_);
        if (cachedScc_ == nullptr || cachedGeneration_ != graph_->generation()) {
            cachedScc_ = std::make_shared<const select::SccResult>(
                select::computeScc(*graph_));
            cachedGeneration_ = graph_->generation();
        }
        scc = cachedScc_;
    }
    const std::size_t comps = scc->componentCount;

    // Phase 1 (sharded): per-candidate graph/SCC/model lookups. Each shard
    // writes a disjoint slice, so the array is identical at any width; the
    // serial sweep below consumes it in fixed candidate order, which is what
    // makes the whole plan thread-count invariant.
    const std::size_t count = candidate.functions.size();
    std::vector<CandidateInfo> info(count);
    auto lookupRange = [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
            const std::string& name = candidate.functions[i];
            CandidateInfo& entry = info[i];
            cg::FunctionId id = graph_->lookup(name);
            // Candidates outside the graph (added by inlining compensation
            // against a newer binary, say) form singleton pseudo-groups
            // above the component id space.
            entry.group = id == cg::kInvalidFunction
                              ? static_cast<std::uint64_t>(comps) + i
                              : scc->component[id];
            if (const RegionEstimate* estimate = model.estimate(name)) {
                entry.costNs = model.probeCostNs(*estimate);
                entry.valueNs = estimate->exclusiveNs;
            }
        }
    };
    support::ThreadPool* pool =
        options.pool != nullptr ? options.pool : support::Executor::poolFor(options.threads);
    if (pool != nullptr && pool->threadCount() > 1 && count >= kParallelPlanThreshold) {
        std::size_t grain = std::max<std::size_t>(512, count / (pool->threadCount() * 4));
        pool->parallelFor(count, grain, lookupRange);
    } else {
        lookupRange(0, count);
    }

    // Phase 2 (serial, deterministic): fold candidates into groups in
    // candidate order.
    std::unordered_set<std::string_view> keepSet(options.keep.begin(),
                                                 options.keep.end());
    std::unordered_map<std::uint64_t, std::size_t> groupIndex;
    std::vector<Group> groups;
    std::vector<std::size_t> groupOf(count);
    groupIndex.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        auto [it, inserted] = groupIndex.try_emplace(info[i].group, groups.size());
        if (inserted) {
            groups.push_back(Group{0.0, 0.0, i, false, false});
        }
        Group& group = groups[it->second];
        groupOf[i] = it->second;
        group.costNs += info[i].costNs;
        group.valueNs += info[i].valueNs;
        group.keep = group.keep || keepSet.count(candidate.functions[i]) != 0;
    }
    result.groupsConsidered = groups.size();

    // Phase 3: greedy cost/value knapsack. Keep-listed groups first (budget
    // notwithstanding), free groups next (they cannot spend budget), then
    // the rest by value density — compared by cross multiplication so no
    // division noise enters the ordering.
    result.budgetNs = options.budgetFraction * model.appRuntimeNs();
    double spentNs = 0.0;
    std::vector<std::size_t> sweep;
    for (std::size_t g = 0; g < groups.size(); ++g) {
        if (groups[g].keep || groups[g].costNs <= 0.0) {
            groups[g].included = true;
            spentNs += groups[g].costNs;
        } else {
            sweep.push_back(g);
        }
    }
    std::sort(sweep.begin(), sweep.end(), [&](std::size_t a, std::size_t b) {
        double lhs = groups[a].valueNs * groups[b].costNs;
        double rhs = groups[b].valueNs * groups[a].costNs;
        if (lhs != rhs) {
            return lhs > rhs;
        }
        return groups[a].firstCandidate < groups[b].firstCandidate;
    });
    for (std::size_t g : sweep) {
        if (spentNs + groups[g].costNs <= result.budgetNs) {
            groups[g].included = true;
            spentNs += groups[g].costNs;
        }
    }

    for (std::size_t i = 0; i < count; ++i) {
        const std::string& name = candidate.functions[i];
        if (groups[groupOf[i]].included) {
            result.ic.addFunction(name);
            auto staticIt = candidate.staticIds.find(name);
            if (staticIt != candidate.staticIds.end()) {
                result.ic.staticIds.insert(*staticIt);
            }
        } else {
            result.excluded.push_back(name);
        }
    }
    for (const Group& group : groups) {
        if (group.included) {
            result.plannedProbeCostNs += group.costNs;
            result.retainedValueNs += group.valueNs;
            ++result.groupsRetained;
        }
    }
    return result;
}

}  // namespace capi::adapt
