#include "adapt/budget_planner.hpp"

#include <algorithm>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "support/executor.hpp"
#include "support/thread_pool.hpp"

namespace capi::adapt {

namespace {

/// Below this candidate count the sharded lookup phase costs more than the
/// loop it splits (same family as select's sharding threshold).
constexpr std::size_t kParallelPlanThreshold = 1 << 14;

struct CandidateInfo {
    std::uint64_t group = 0;
    double costNs = 0.0;         ///< Full-tier probe cost.
    double sampledCostNs = 0.0;  ///< Sampled-tier cost: timed share + gate toll.
    double valueNs = 0.0;
};

struct Group {
    double costNs = 0.0;
    double sampledCostNs = 0.0;
    double valueNs = 0.0;
    std::size_t firstCandidate = 0;  ///< Deterministic tie-break.
    bool keep = false;
    bool included = false;
    bool sampled = false;  ///< Included at the Sampled tier.
};

}  // namespace

PlanResult BudgetPlanner::plan(const select::InstrumentationConfig& candidate,
                               const OverheadModel& model,
                               const PlannerOptions& options) const {
    Config config;
    config.budgetFraction = options.budgetFraction;
    config.keep = options.keep;
    config.threads = options.threads;
    config.pool = options.pool;
    config.enableSampledTier = false;
    return plan(candidate, model, config);
}

PlanResult BudgetPlanner::plan(const select::InstrumentationConfig& candidate,
                               const OverheadModel& model,
                               const Config& config) const {
    PlanResult result;
    result.ic.specName = candidate.specName.empty() ? "budget"
                                                    : candidate.specName + "+budget";
    result.ic.application = candidate.application;
    result.policy.specName = result.ic.specName;
    result.policy.application = result.ic.application;

    if (model.epochCount() == 0) {
        // Nothing measured yet: no basis to exclude anything.
        result.ic.functions = candidate.functions;
        result.ic.staticIds = candidate.staticIds;
        result.policy = select::InstrumentationPolicy::fullOf(result.ic);
        result.policy.specName = result.ic.specName;
        result.fullRegions = result.policy.size();
        return result;
    }

    std::shared_ptr<const select::SccResult> scc;
    {
        std::lock_guard<std::mutex> lock(cacheMutex_);
        if (cachedScc_ == nullptr || cachedGeneration_ != graph_->generation()) {
            cachedScc_ = std::make_shared<const select::SccResult>(
                select::computeScc(*graph_));
            cachedGeneration_ = graph_->generation();
        }
        scc = cachedScc_;
    }
    const std::size_t comps = scc->componentCount;

    // Phase 1 (sharded): per-candidate graph/SCC/model lookups. Each shard
    // writes a disjoint slice, so the array is identical at any width; the
    // serial sweep below consumes it in fixed candidate order, which is what
    // makes the whole plan thread-count invariant.
    const std::size_t count = candidate.functions.size();
    const double everyN =
        static_cast<double>(std::max<std::uint32_t>(config.sampledEveryN, 1));
    std::vector<CandidateInfo> info(count);
    auto lookupRange = [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
            const std::string& name = candidate.functions[i];
            CandidateInfo& entry = info[i];
            cg::FunctionId id = graph_->lookup(name);
            // Candidates outside the graph (added by inlining compensation
            // against a newer binary, say) form singleton pseudo-groups
            // above the component id space.
            entry.group = id == cg::kInvalidFunction
                              ? static_cast<std::uint64_t>(comps) + i
                              : scc->component[id];
            if (const RegionEstimate* estimate = model.estimate(name)) {
                entry.costNs = model.probeCostNs(*estimate);
                // 1-in-N visits pay the full probe, the other N-1 the gate.
                entry.sampledCostNs =
                    entry.costNs / everyN +
                    estimate->visits * 2.0 * config.gateCostNs *
                        (everyN - 1.0) / everyN;
                entry.valueNs = estimate->exclusiveNs;
            }
        }
    };
    support::ThreadPool* pool =
        config.pool != nullptr ? config.pool : support::Executor::poolFor(config.threads);
    if (pool != nullptr && pool->threadCount() > 1 && count >= kParallelPlanThreshold) {
        std::size_t grain = std::max<std::size_t>(512, count / (pool->threadCount() * 4));
        pool->parallelFor(count, grain, lookupRange);
    } else {
        lookupRange(0, count);
    }

    // Phase 2 (serial, deterministic): fold candidates into groups in
    // candidate order.
    std::unordered_set<std::string_view> keepSet(config.keep.begin(),
                                                 config.keep.end());
    std::unordered_map<std::uint64_t, std::size_t> groupIndex;
    std::vector<Group> groups;
    std::vector<std::size_t> groupOf(count);
    groupIndex.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        auto [it, inserted] = groupIndex.try_emplace(info[i].group, groups.size());
        if (inserted) {
            groups.push_back(Group{0.0, 0.0, 0.0, i, false, false, false});
        }
        Group& group = groups[it->second];
        groupOf[i] = it->second;
        group.costNs += info[i].costNs;
        group.sampledCostNs += info[i].sampledCostNs;
        group.valueNs += info[i].valueNs;
        group.keep = group.keep || keepSet.count(candidate.functions[i]) != 0;
    }
    result.groupsConsidered = groups.size();

    // Phase 3: greedy cost/value knapsack. Keep-listed groups first (budget
    // notwithstanding, pinned at Full), free groups next (they cannot spend
    // budget), then the rest by value density — compared by cross
    // multiplication so no division noise enters the ordering. With the
    // sampled tier enabled, a group whose Full cost overflows the remaining
    // budget is demoted to Sampled before it is evicted.
    result.budgetNs = config.budgetFraction * model.appRuntimeNs();
    double spentNs = 0.0;
    std::vector<std::size_t> sweep;
    for (std::size_t g = 0; g < groups.size(); ++g) {
        if (groups[g].keep || groups[g].costNs <= 0.0) {
            groups[g].included = true;
            spentNs += groups[g].costNs;
        } else {
            sweep.push_back(g);
        }
    }
    std::sort(sweep.begin(), sweep.end(), [&](std::size_t a, std::size_t b) {
        double lhs = groups[a].valueNs * groups[b].costNs;
        double rhs = groups[b].valueNs * groups[a].costNs;
        if (lhs != rhs) {
            return lhs > rhs;
        }
        return groups[a].firstCandidate < groups[b].firstCandidate;
    });
    for (std::size_t g : sweep) {
        if (spentNs + groups[g].costNs <= result.budgetNs) {
            groups[g].included = true;
            spentNs += groups[g].costNs;
        } else if (config.enableSampledTier &&
                   spentNs + groups[g].sampledCostNs <= result.budgetNs) {
            groups[g].included = true;
            groups[g].sampled = true;
            spentNs += groups[g].sampledCostNs;
        }
    }

    // Emit the policy with its regions in sorted order (the parallel-vector
    // invariant), then project the binary patch set from it.
    const select::SamplingSpec sampledSpec{
        std::max<std::uint32_t>(config.sampledEveryN, 1),
        config.sampledMinIntervalNs};
    std::vector<std::pair<std::string_view, bool>> included;  // name, sampled
    included.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        const Group& group = groups[groupOf[i]];
        if (group.included) {
            included.emplace_back(candidate.functions[i], group.sampled);
        } else {
            result.excluded.push_back(candidate.functions[i]);
        }
    }
    std::sort(included.begin(), included.end());
    for (const auto& [name, sampled] : included) {
        result.policy.functions.emplace_back(name);
        select::RegionPolicy region;
        region.tier = sampled ? select::Tier::Sampled : select::Tier::Full;
        if (sampled) {
            region.sampling = sampledSpec;
            ++result.sampledRegions;
        } else {
            ++result.fullRegions;
        }
        result.policy.regions.push_back(region);
        auto staticIt = candidate.staticIds.find(std::string(name));
        if (staticIt != candidate.staticIds.end()) {
            result.policy.staticIds.insert(*staticIt);
        }
    }
    result.ic.functions = result.policy.functions;
    result.ic.staticIds = result.policy.staticIds;

    for (const Group& group : groups) {
        if (group.included) {
            result.plannedProbeCostNs +=
                group.sampled ? group.sampledCostNs : group.costNs;
            result.retainedValueNs += group.valueNs;
            ++result.groupsRetained;
            if (group.sampled) {
                ++result.groupsSampled;
            }
        }
    }
    return result;
}

}  // namespace capi::adapt
