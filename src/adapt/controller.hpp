// The adaptive controller: a continuous measure -> model -> plan ->
// delta-patch loop that converges the instrumented set onto an overhead
// budget at runtime, without recompilation.
//
//          +-----------(next epoch)------------+
//          v                                   |
//   [measure epoch] -> [OverheadModel] -> [BudgetPlanner] -> [applyIcDelta]
//    profile, runtime    EWMA per-region        greedy knapsack    flip only
//                        visits/excl. time      under the budget   changed sleds
//
// The controller replaces the one-shot refineIc threshold rule with a closed
// feedback loop: every epoch re-plans over the full survey candidate set, so
// regions excluded earlier are re-admitted when their smoothed cost drops —
// the instrumentation breathes with the workload. Repatching applies only
// the IC delta; the epochs after the first touch a handful of code pages
// where a full applyIc re-flips every sled page in the process.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "adapt/budget_planner.hpp"
#include "adapt/overhead_model.hpp"
#include "binsim/execution_engine.hpp"
#include "dyncapi/dyncapi.hpp"
#include "dyncapi/refinement.hpp"
#include "mpisim/mpi_world.hpp"
#include "select/ic.hpp"

namespace capi::adapt {

/// DEPRECATED thin shim: prefer adapt::Config, which merges these knobs
/// with the model's and planner's (they had grown overlapping copies of
/// probe cost and budget fraction) and adds the sampled-tier controls.
/// Controllers built from this struct run with the sampled tier disabled —
/// the binary Full|Off loop, unchanged.
struct ControllerOptions {
    /// Probe-time budget as a fraction of application runtime.
    double budgetFraction = 0.05;
    /// Epoch cap for run() convenience loops (the controller itself keeps
    /// accepting epochs beyond it).
    std::size_t maxEpochs = 10;
    ModelOptions model;
    /// Regions never excluded (forwarded to the planner).
    std::vector<std::string> keep;
    /// Selection/planning parallelism, as in PipelineOptions.
    std::size_t threads = 1;
    /// When set (to the SAME graph the controller was constructed over),
    /// every epoch folds the measured per-region visit counts into
    /// FunctionMetrics::profiledVisits through CallGraph::touchMetrics —
    /// metric-only journal records. Specs re-run through the session (e.g.
    /// `profiledVisits(">=", n, ...)` refinements) then see fresh runtime
    /// metrics while structural stages stay cache-warm and the CsrView is
    /// patched, not rebuilt.
    cg::CallGraph* foldVisitMetricsInto = nullptr;

    /// The consolidated equivalent (sampled tier disabled).
    Config toConfig() const {
        Config config;
        config.perEventCostNs = model.perEventCostNs;
        config.ewmaAlpha = model.ewmaAlpha;
        config.budgetFraction = budgetFraction;
        config.keep = keep;
        config.enableSampledTier = false;
        config.maxEpochs = maxEpochs;
        config.threads = threads;
        config.foldVisitMetricsInto = foldVisitMetricsInto;
        return config;
    }
};

/// The controller's self-healing state machine.
///
///   Healthy --patch failed / kill-switch armed--> Degraded/SafeMode
///   Degraded: the last epoch needed retries or reverted to the last
///             known-good policy; a clean epoch heals back to Healthy.
///   SafeMode: the overhead kill-switch tripped (or reversion itself
///             failed): only the keep-list stays instrumented until
///             killSwitchRearmEpochs consecutive in-budget epochs re-arm
///             the planner.
enum class EpochHealth : std::uint8_t { Healthy = 0, Degraded = 1, SafeMode = 2 };

const char* healthName(EpochHealth health);

/// Cumulative self-healing counters over the controller's lifetime.
struct HealthStats {
    std::uint64_t patchFailures = 0;   ///< PatchErrors caught (retries included).
    std::uint64_t patchRetries = 0;    ///< Re-apply attempts after a failure.
    std::uint64_t reversions = 0;      ///< Epochs that fell back to last-good.
    std::uint64_t killSwitchTrips = 0;
    std::uint64_t killSwitchRearms = 0;
};

/// What one epoch measured and what the controller did about it.
struct EpochReport {
    std::size_t epoch = 0;                ///< 1-based.
    double runtimeNs = 0.0;               ///< As reported by the embedder.
    double measuredProbeCostNs = 0.0;     ///< Observed visits x event cost.
    double measuredOverheadRatio = 0.0;   ///< Cost / runtime, this epoch.
    bool withinBudget = false;            ///< ratio <= budgetFraction.
    double budgetNs = 0.0;                ///< Planner budget applied.
    double plannedProbeCostNs = 0.0;      ///< Predicted cost of the new IC.
    std::size_t icSize = 0;               ///< Functions in the new IC.
    std::size_t addedFunctions = 0;       ///< Re-admitted vs previous IC.
    std::size_t removedFunctions = 0;     ///< Excluded vs previous IC.
    dyncapi::DeltaStats patch;            ///< The delta repatch that applied it.
    // --- tiered policy (zero on the binary Full|Off path) ------------------
    std::size_t fullRegions = 0;          ///< Regions at Full in the new policy.
    std::size_t sampledRegions = 0;       ///< Regions demoted to Sampled.
    std::size_t promotedFunctions = 0;    ///< Sampled -> Full this epoch.
    std::size_t demotedFunctions = 0;     ///< Full -> Sampled this epoch.
    std::uint64_t policyFingerprint = 0;  ///< Fingerprint of the new policy.
    /// epochAllRanks only: ranks whose pre-epoch policy fingerprint differed
    /// from the reducing rank's — nonzero means the world had diverged going
    /// into this epoch. Divergent ranks re-apply the converged policy on
    /// their own controller before epochAllRanks returns, so the world
    /// leaves every epoch converged on one policy.
    std::size_t divergentRanks = 0;
    /// Divergence *diagnosis*: when this controller's live policy disagreed
    /// with the converged one (adoptPolicy on a divergent rank / fleet
    /// client), the actual region-level diff live -> converged — which
    /// regions diverged and in which direction, not just that a fingerprint
    /// mismatched. Empty while converged.
    select::PolicyDelta divergence;
    /// epochAllRanks only: ranks dropped from the world as of this epoch.
    std::size_t droppedRanks = 0;
    // --- self-healing ------------------------------------------------------
    EpochHealth health = EpochHealth::Healthy;  ///< State after this epoch.
    std::size_t retriesThisEpoch = 0;  ///< Patch re-applies this epoch.
    bool revertedToLastGood = false;   ///< Retries exhausted; kept old policy.
    bool killSwitchTripped = false;    ///< Entered SafeMode this epoch.
    bool killSwitchRearmed = false;    ///< Left SafeMode this epoch.
    // --- self-observability ------------------------------------------------
    /// Trace events the global recorder accepted since the previous epoch.
    std::uint64_t obsEventsObserved = 0;
    /// Those events charged at Config::obsCostNs and folded into the model —
    /// already included in measuredProbeCostNs/measuredOverheadRatio.
    double selfObsCostNs = 0.0;
};

class Controller {
public:
    /// `graph` and `dyn` must outlive the controller. Owns a
    /// dyncapi::RefinementSession so spec-driven survey selection shares
    /// stage results across epochs and borrows the process-wide pool.
    Controller(const cg::CallGraph& graph, dyncapi::DynCapi& dyn,
               Config config);
    /// DEPRECATED shim constructor: converts to Config with the sampled
    /// tier disabled (identical to the pre-tier controller).
    Controller(const cg::CallGraph& graph, dyncapi::DynCapi& dyn,
               ControllerOptions options = {});
    ~Controller();

    Controller(const Controller&) = delete;
    Controller& operator=(const Controller&) = delete;

    /// Runs `specText` through the session and installs the result as the
    /// survey IC (full repatch — the reference path; every later epoch
    /// patches deltas only).
    select::SelectionReport startFromSpec(const std::string& specText,
                                          const std::string& specName = "survey",
                                          select::SelectionOptions base = {});

    /// Installs a ready-made survey IC via full applyIc.
    dyncapi::InitStats start(select::InstrumentationConfig surveyIc);

    /// One epoch: folds the measured profile into the model, re-plans over
    /// the survey candidates under the budget, and delta-patches the result.
    /// `runtimeNs` is the epoch's runtime in the same time base as the
    /// model's perEventCostNs (wall or virtual — consistency is what
    /// matters).
    EpochReport epoch(const scorep::ProfileTree& profile,
                      const scorep::Measurement& measurement, double runtimeNs);

    /// MPI variant: a data-carrying allreduce merges every rank's profile
    /// tree, one rank runs epoch() over the merged tree (with the runtimes
    /// summed across ranks, matching the summed visit counts), and all
    /// ranks return the identical report — so the whole world converges on
    /// one IC, as the paper's MPI use case requires. Collective: every rank
    /// must call it. Precondition: all ranks share ONE Measurement (the
    /// in-process simulation's natural shape), so region handles mean the
    /// same thing in every deposited tree.
    EpochReport epochAllRanks(mpi::MpiWorld& world, int rank, double virtualNow,
                              const scorep::ProfileTree& localProfile,
                              const scorep::Measurement& measurement,
                              double runtimeNs);

    /// Adopts a policy converged OFF this controller — by another rank's
    /// reduction (epochAllRanks calls this after the collective) or by the
    /// fleet aggregator (fleet::FleetClient drives a controller from
    /// streamed policy deltas through here). When the live fingerprint
    /// already matches `worldReport`'s, only the report is adopted;
    /// otherwise `converged` is applied with the usual retry machinery and
    /// a failure degrades health (kept last-good, reconciled next epoch).
    /// Returns the report as this controller experienced it (patch stats
    /// and health filled in).
    EpochReport adoptPolicy(const select::InstrumentationPolicy& converged,
                            const EpochReport& worldReport);

    /// The last epoch's measured overhead met the budget.
    bool converged() const { return lastReport_.epoch > 0 && lastReport_.withinBudget; }
    /// Converged, or the maxEpochs cap is exhausted.
    bool done() const {
        return converged() || lastReport_.epoch >= config_.maxEpochs;
    }

    std::size_t epochsRun() const { return lastReport_.epoch; }
    const EpochReport& lastReport() const { return lastReport_; }
    EpochHealth health() const { return health_; }
    const HealthStats& healthStats() const { return healthStats_; }
    const select::InstrumentationConfig& currentIc() const { return currentIc_; }
    /// The tiered policy currently applied (currentIc() is its patch set).
    const select::InstrumentationPolicy& currentPolicy() const {
        return currentPolicy_;
    }
    const select::InstrumentationConfig& surveyIc() const { return surveyIc_; }
    const OverheadModel& model() const { return model_; }
    const Config& config() const { return config_; }
    dyncapi::RefinementSession& session() { return *session_; }

private:
    /// The keep-list-only fallback policy SafeMode runs under (empty keep
    /// list = fully uninstrumented): the minimal state whose overhead is by
    /// construction as low as this controller can go.
    select::InstrumentationPolicy safeModePolicy() const;

    /// Applies `target` with up to config_.patchRetries backoff-spaced
    /// re-applies on PatchError. Returns true and fills report.patch on
    /// success; false once the attempts are exhausted.
    bool applyWithRetry(const select::InstrumentationPolicy& target,
                        EpochReport& report);

    /// Advances the kill-switch streaks for one epoch's measured ratio and
    /// performs the SafeMode trip / re-arm transitions.
    void updateKillSwitch(EpochReport& report);

    dyncapi::DynCapi* dyn_;
    Config config_;
    std::unique_ptr<dyncapi::RefinementSession> session_;
    OverheadModel model_;
    BudgetPlanner planner_;
    select::InstrumentationConfig surveyIc_;
    select::InstrumentationConfig currentIc_;
    select::InstrumentationPolicy currentPolicy_;
    EpochReport lastReport_;

    EpochHealth health_ = EpochHealth::Healthy;
    HealthStats healthStats_;
    std::size_t overBudgetStreak_ = 0;  ///< Consecutive epochs past the trip ratio.
    std::size_t inBudgetStreak_ = 0;    ///< Consecutive epochs within budget.

    /// Global-recorder recordedEvents() baseline for the self-cost delta.
    /// Captured at construction (the counter is process-monotonic: a zero
    /// start would bill this controller for every event any earlier run
    /// recorded).
    std::uint64_t obsEventsAtLastEpoch_ = 0;
    /// obs::MetricsRegistry collector handle (label ctl="<instance seq>").
    std::uint64_t metricsCollectorId_ = 0;
    /// Guards the snapshot copies the metrics collector reads; the live
    /// HealthStats/EpochReport stay single-threaded controller state.
    mutable std::mutex obsMutex_;
    HealthStats obsHealth_;
    EpochReport obsReport_;
};

/// The "instrument everything with a body" survey IC — the broadest useful
/// starting point for the controller (tools, examples and tests share it).
select::InstrumentationConfig surveyOfDefinedFunctions(const cg::CallGraph& graph);

/// Epoch runtime for virtual-clock embedders: the engine's virtual time
/// excludes probe cost, so add the modelled cost back to get the total a
/// wall clock would have seen (wall-clock embedders pass elapsed time).
/// This overload charges every probe event at the full rate — correct for
/// binary (Full/Off) instrumentation, pessimistic under sampling gates.
double virtualEpochRuntimeNs(const binsim::RunStats& stats,
                             const scorep::Measurement& measurement,
                             double perEventCostNs);

/// Gate-aware variant for tiered policies: events whose visit the sampling
/// gate suppressed cost a counter decrement, not a full probe, so they are
/// charged at gateCostNs. Without this split the virtual clock would hide
/// exactly the savings the Sampled tier exists to buy.
double virtualEpochRuntimeNs(const binsim::RunStats& stats,
                             const scorep::Measurement& measurement,
                             double perEventCostNs, double gateCostNs);

}  // namespace capi::adapt
