#include "adapt/overhead_model.hpp"

namespace capi::adapt {

namespace {

double ewma(double previous, double observed, double alpha, bool first) {
    return first ? observed : alpha * observed + (1.0 - alpha) * previous;
}

}  // namespace

void OverheadModel::observeEpoch(const scorep::ProfileTree& profile,
                                 const scorep::Measurement& measurement,
                                 double epochRuntimeNs,
                                 const select::InstrumentationConfig* activeIc) {
    observeEpoch(profile.regionTotals(), measurement, epochRuntimeNs, activeIc);
}

void OverheadModel::observeEpoch(
    const std::unordered_map<scorep::RegionHandle,
                             scorep::ProfileTree::RegionTotals>& regionTotals,
    const scorep::Measurement& measurement, double epochRuntimeNs,
    const select::InstrumentationConfig* activeIc) {
    // Aggregate the epoch per region name (several handles can share a name
    // when measurements are recreated across epochs, so fold by name).
    struct Observed {
        double visits = 0.0;
        double exclusiveNs = 0.0;
    };
    std::unordered_map<std::string, Observed> observed;
    for (const auto& [region, totals] : regionTotals) {
        Observed& entry = observed[measurement.region(region).name];
        entry.visits += static_cast<double>(totals.visits);
        entry.exclusiveNs += static_cast<double>(totals.exclusiveNs);
    }

    double epochCostNs = 0.0;
    for (const auto& [name, obs] : observed) {
        epochCostNs += obs.visits * 2.0 * options_.perEventCostNs;
        RegionEstimate& estimate = estimates_[name];
        bool first = estimate.epochsObserved == 0;
        estimate.visits = ewma(estimate.visits, obs.visits, options_.ewmaAlpha, first);
        estimate.exclusiveNs =
            ewma(estimate.exclusiveNs, obs.exclusiveNs, options_.ewmaAlpha, first);
        ++estimate.epochsObserved;
    }

    // Active regions without profile data observed zero this epoch; inactive
    // regions are unobservable and keep their frozen estimate.
    if (activeIc != nullptr) {
        for (const std::string& name : activeIc->functions) {
            if (observed.count(name) != 0) {
                continue;
            }
            auto it = estimates_.find(name);
            if (it == estimates_.end() || it->second.epochsObserved == 0) {
                continue;  // Never seen: nothing to decay.
            }
            RegionEstimate& estimate = it->second;
            estimate.visits = ewma(estimate.visits, 0.0, options_.ewmaAlpha, false);
            estimate.exclusiveNs =
                ewma(estimate.exclusiveNs, 0.0, options_.ewmaAlpha, false);
            ++estimate.epochsObserved;
        }
    }

    bool first = epochs_ == 0;
    runtimeNs_ = ewma(runtimeNs_, epochRuntimeNs, options_.ewmaAlpha, first);
    incurredCostNs_ = ewma(incurredCostNs_, epochCostNs, options_.ewmaAlpha, first);
    lastEpochCostNs_ = epochCostNs;
    lastEpochRuntimeNs_ = epochRuntimeNs;
    ++epochs_;
}

const RegionEstimate* OverheadModel::estimate(const std::string& name) const {
    auto it = estimates_.find(name);
    return it == estimates_.end() ? nullptr : &it->second;
}

}  // namespace capi::adapt
