#include "adapt/overhead_model.hpp"

#include <algorithm>
#include <cmath>

namespace capi::adapt {

namespace {

double ewma(double previous, double observed, double alpha, bool first) {
    return first ? observed : alpha * observed + (1.0 - alpha) * previous;
}

}  // namespace

void OverheadModel::observeEpoch(const scorep::ProfileTree& profile,
                                 const scorep::Measurement& measurement,
                                 double epochRuntimeNs,
                                 const select::InstrumentationConfig* activeIc) {
    observeEpoch(profile.regionTotals(), measurement, epochRuntimeNs, activeIc);
}

void OverheadModel::observeEpoch(
    const std::unordered_map<scorep::RegionHandle,
                             scorep::ProfileTree::RegionTotals>& regionTotals,
    const scorep::Measurement& measurement, double epochRuntimeNs,
    const select::InstrumentationConfig* activeIc) {
    // Aggregate the epoch per region name (several handles can share a name
    // when measurements are recreated across epochs, so fold by name).
    // Integer accumulation first, double conversion once per name: the sums
    // stay exact regardless of the unordered source map's iteration order.
    struct RawTotals {
        std::uint64_t visits = 0;
        std::uint64_t exclusiveNs = 0;
        std::uint64_t suppressed = 0;  ///< Gate-suppressed visits (Sampled).
    };
    std::map<std::string, RawTotals> raw;
    for (const auto& [region, totals] : regionTotals) {
        RawTotals& entry = raw[measurement.region(region).name];
        entry.visits += totals.visits;
        entry.exclusiveNs += totals.exclusiveNs;
    }

    // Sampled regions report their skipped visits through the gate's
    // per-thread suppression counters — cumulative, so fold the per-epoch
    // delta. A fresh Measurement restarts the baselines: its cumulative
    // counters are the epoch's delta, and a deterministic workload can make
    // them numerically identical to last epoch's, so the values alone
    // cannot signal the restart. A region whose samples were all suppressed
    // still lands in the fold with zero recorded visits.
    if (measurement.instanceId() != lastMeasurementId_) {
        lastSuppressed_.clear();
        lastMeasurementId_ = measurement.instanceId();
    }
    for (const auto& [region, count] : measurement.suppressedVisits()) {
        if (count == 0) {
            continue;
        }
        const std::string& name = measurement.region(region).name;
        std::uint64_t& last = lastSuppressed_[name];
        std::uint64_t delta = count >= last ? count - last : count;
        last = count;
        if (delta > 0) {
            raw[name].suppressed += delta;
        }
    }

    std::map<std::string, RegionObservation> byName;
    for (const auto& [name, totals] : raw) {
        byName[name] = RegionObservation{
            static_cast<double>(totals.visits),
            static_cast<double>(totals.exclusiveNs),
            static_cast<double>(totals.suppressed)};
    }
    observeEpoch(byName, epochRuntimeNs, activeIc);
}

void OverheadModel::observeEpoch(
    const std::map<std::string, RegionObservation>& byName,
    double epochRuntimeNs, const select::InstrumentationConfig* activeIc) {
    const auto& observed = byName;
    double epochCostNs = 0.0;
    for (const auto& [name, obs] : observed) {
        // Recorded events pay the full probe; suppressed ones only the gate.
        epochCostNs += obs.visits * 2.0 * options_.perEventCostNs +
                       obs.suppressed * 2.0 * gateCostNs_;
        // Extrapolate to what a Full epoch would have measured: the visit
        // count is exact (every suppression was counted); the exclusive time
        // scales the recorded sample by the decimation factor. An epoch with
        // suppressions but no recorded sample carries no time information —
        // visits update, exclusiveNs stays frozen at the last estimate.
        const double trueVisits = obs.visits + obs.suppressed;
        const double factor = obs.visits > 0.0 ? trueVisits / obs.visits : 1.0;
        RegionEstimate& estimate = estimates_[name];
        bool first = estimate.epochsObserved == 0;
        estimate.visits =
            ewma(estimate.visits, trueVisits, options_.ewmaAlpha, first);
        if (obs.visits > 0.0 || obs.suppressed == 0.0) {
            estimate.exclusiveNs = ewma(estimate.exclusiveNs,
                                        obs.exclusiveNs * factor,
                                        options_.ewmaAlpha, first);
        }
        estimate.samplingFactor =
            ewma(estimate.samplingFactor, factor, options_.ewmaAlpha, first);
        ++estimate.epochsObserved;
    }

    // Active regions without profile data observed zero this epoch; inactive
    // regions are unobservable and keep their frozen estimate.
    if (activeIc != nullptr) {
        for (const std::string& name : activeIc->functions) {
            if (observed.count(name) != 0) {
                continue;
            }
            auto it = estimates_.find(name);
            if (it == estimates_.end() || it->second.epochsObserved == 0) {
                continue;  // Never seen: nothing to decay.
            }
            RegionEstimate& estimate = it->second;
            estimate.visits = ewma(estimate.visits, 0.0, options_.ewmaAlpha, false);
            estimate.exclusiveNs =
                ewma(estimate.exclusiveNs, 0.0, options_.ewmaAlpha, false);
            // A region that did not run carries no extrapolation noise.
            estimate.samplingFactor =
                ewma(estimate.samplingFactor, 1.0, options_.ewmaAlpha, false);
            ++estimate.epochsObserved;
        }
    }

    bool first = epochs_ == 0;
    runtimeNs_ = ewma(runtimeNs_, epochRuntimeNs, options_.ewmaAlpha, first);
    incurredCostNs_ = ewma(incurredCostNs_, epochCostNs, options_.ewmaAlpha, first);
    lastEpochCostNs_ = epochCostNs;
    lastEpochRuntimeNs_ = epochRuntimeNs;
    ++epochs_;
}

void OverheadModel::chargeSelfCost(double selfCostNs) {
    if (selfCostNs <= 0.0 || epochs_ == 0) {
        return;
    }
    lastEpochCostNs_ += selfCostNs;
    // observeEpoch already folded this epoch's probe cost; add the same
    // epoch's self cost with the identical weight (epochs_ was incremented,
    // so "first" is now epochs_ == 1).
    incurredCostNs_ +=
        epochs_ == 1 ? selfCostNs : options_.ewmaAlpha * selfCostNs;
}

const RegionEstimate* OverheadModel::estimate(const std::string& name) const {
    auto it = estimates_.find(name);
    return it == estimates_.end() ? nullptr : &it->second;
}

ModelState OverheadModel::saveState() const {
    ModelState state;
    state.epochs = epochs_;
    state.runtimeNs = runtimeNs_;
    state.incurredCostNs = incurredCostNs_;
    state.lastEpochCostNs = lastEpochCostNs_;
    state.lastEpochRuntimeNs = lastEpochRuntimeNs_;
    state.lastMeasurementId = lastMeasurementId_;
    state.estimates.assign(estimates_.begin(), estimates_.end());
    std::sort(state.estimates.begin(), state.estimates.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    state.lastSuppressed.assign(lastSuppressed_.begin(), lastSuppressed_.end());
    std::sort(state.lastSuppressed.begin(), state.lastSuppressed.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    return state;
}

void OverheadModel::restoreState(const ModelState& state) {
    epochs_ = state.epochs;
    runtimeNs_ = state.runtimeNs;
    incurredCostNs_ = state.incurredCostNs;
    lastEpochCostNs_ = state.lastEpochCostNs;
    lastEpochRuntimeNs_ = state.lastEpochRuntimeNs;
    lastMeasurementId_ = state.lastMeasurementId;
    estimates_.clear();
    estimates_.insert(state.estimates.begin(), state.estimates.end());
    lastSuppressed_.clear();
    lastSuppressed_.insert(state.lastSuppressed.begin(),
                           state.lastSuppressed.end());
}

double profileErrorPercent(const scorep::Measurement& estimated,
                           const scorep::Measurement& truth) {
    struct Totals {
        double visits = 0.0;
        double exclusiveNs = 0.0;
        double suppressed = 0.0;
    };
    auto foldByName = [](const scorep::Measurement& m) {
        std::unordered_map<std::string, Totals> byName;
        for (const auto& [region, totals] : m.mergedProfile().regionTotals()) {
            Totals& entry = byName[m.region(region).name];
            entry.visits += static_cast<double>(totals.visits);
            entry.exclusiveNs += static_cast<double>(totals.exclusiveNs);
        }
        for (const auto& [region, count] : m.suppressedVisits()) {
            byName[m.region(region).name].suppressed +=
                static_cast<double>(count);
        }
        return byName;
    };

    const auto est = foldByName(estimated);
    const auto ref = foldByName(truth);
    double errorSum = 0.0;
    std::size_t regions = 0;
    for (const auto& [name, truthTotals] : ref) {
        const double trueVisits = truthTotals.visits + truthTotals.suppressed;
        if (trueVisits <= 0.0) {
            continue;
        }
        Totals estTotals;
        if (auto it = est.find(name); it != est.end()) {
            estTotals = it->second;
        }
        const double estVisits = estTotals.visits + estTotals.suppressed;
        const double factor =
            estTotals.visits > 0.0 ? estVisits / estTotals.visits : 0.0;
        const double estExclusive = estTotals.exclusiveNs * factor;
        double error = std::abs(estVisits - trueVisits) / trueVisits;
        if (truthTotals.exclusiveNs > 0.0) {
            error = 0.5 * (error + std::abs(estExclusive - truthTotals.exclusiveNs) /
                                       truthTotals.exclusiveNs);
        }
        errorSum += error;
        ++regions;
    }
    return regions == 0 ? 0.0 : 100.0 * errorSum / static_cast<double>(regions);
}

}  // namespace capi::adapt
