#include "adapt/controller.hpp"

#include <algorithm>
#include <string>
#include <unordered_map>

namespace capi::adapt {

Controller::Controller(const cg::CallGraph& graph, dyncapi::DynCapi& dyn,
                       Config config)
    : dyn_(&dyn),
      config_(std::move(config)),
      session_(std::make_unique<dyncapi::RefinementSession>(graph,
                                                            config_.threads)),
      model_(config_),
      planner_(graph) {}

Controller::Controller(const cg::CallGraph& graph, dyncapi::DynCapi& dyn,
                       ControllerOptions options)
    : Controller(graph, dyn, options.toConfig()) {}

Controller::~Controller() = default;

select::SelectionReport Controller::startFromSpec(const std::string& specText,
                                                  const std::string& specName,
                                                  select::SelectionOptions base) {
    select::SelectionReport report = session_->select(specText, specName, base);
    start(report.ic);
    return report;
}

dyncapi::InitStats Controller::start(select::InstrumentationConfig surveyIc) {
    surveyIc_ = std::move(surveyIc);
    currentIc_ = surveyIc_;
    // The survey epoch always measures at Full: the model needs unsampled
    // ground truth before the planner can demote anything.
    currentPolicy_ = select::InstrumentationPolicy::fullOf(currentIc_);
    lastReport_ = EpochReport{};
    return dyn_->applyPolicy(currentPolicy_);
}

EpochReport Controller::epoch(const scorep::ProfileTree& profile,
                              const scorep::Measurement& measurement,
                              double runtimeNs) {
    // One profile walk per epoch, shared by the model and the metric fold.
    const auto regionTotals = profile.regionTotals();
    model_.observeEpoch(regionTotals, measurement, runtimeNs, &currentIc_);

    if (config_.foldVisitMetricsInto != nullptr) {
        // Route the epoch's observed visit counts into the graph as
        // metric-only journal touches: only the regions whose count actually
        // changed are dirtied, so a following re-selection patches its CSR
        // snapshot and keeps every cached stage that reads no metrics of the
        // touched nodes. Summed per name first — several region handles can
        // share one function name across measurement recreations.
        std::unordered_map<std::string, std::uint64_t> visitsByName;
        for (const auto& [region, totals] : regionTotals) {
            visitsByName[measurement.region(region).name] += totals.visits;
        }
        cg::CallGraph& graph = *config_.foldVisitMetricsInto;
        for (const auto& [name, totalVisits] : visitsByName) {
            cg::FunctionId id = graph.lookup(name);
            if (id == cg::kInvalidFunction || !graph.alive(id)) {
                continue;
            }
            const auto visits = static_cast<std::uint32_t>(
                std::min<std::uint64_t>(totalVisits, UINT32_MAX));
            if (graph.desc(id).metrics.profiledVisits != visits) {
                graph.touchMetrics(id, [visits](cg::FunctionMetrics& metrics) {
                    metrics.profiledVisits = visits;
                });
            }
        }
    }

    EpochReport report;
    report.epoch = lastReport_.epoch + 1;
    report.runtimeNs = runtimeNs;
    report.measuredProbeCostNs = model_.lastEpochProbeCostNs();
    report.measuredOverheadRatio = model_.lastEpochOverheadRatio();
    report.withinBudget = report.measuredOverheadRatio <= config_.budgetFraction;

    // Re-plan over the survey candidates, not the shrunken current IC:
    // the model's frozen estimates let the planner re-admit regions whose
    // smoothed cost no longer blocks the budget (and re-promote regions it
    // demoted to Sampled).
    PlanResult plan = planner_.plan(surveyIc_, model_, config_);
    report.budgetNs = plan.budgetNs;
    report.plannedProbeCostNs = plan.plannedProbeCostNs;
    report.icSize = plan.ic.size();
    report.fullRegions = plan.fullRegions;
    report.sampledRegions = plan.sampledRegions;

    select::PolicyDelta delta = select::policyDiff(currentPolicy_, plan.policy);
    report.addedFunctions = delta.added.size();
    report.removedFunctions = delta.removed.size();
    report.promotedFunctions = delta.promoted.size();
    report.demotedFunctions = delta.demoted.size();
    report.patch = dyn_->applyPolicyDelta(plan.policy);
    currentPolicy_ = std::move(plan.policy);
    currentIc_ = std::move(plan.ic);
    report.policyFingerprint = currentPolicy_.fingerprint();

    lastReport_ = report;
    return report;
}

EpochReport Controller::epochAllRanks(mpi::MpiWorld& world, int rank,
                                      double virtualNow,
                                      const scorep::ProfileTree& localProfile,
                                      const scorep::Measurement& measurement,
                                      double runtimeNs) {
    struct Slot {
        const scorep::ProfileTree* local;
        double runtimeNs;
        std::uint64_t policyFingerprint;
        EpochReport report;
    };
    // Each rank deposits the fingerprint of the tiered policy it believes is
    // live, so the reducing rank can detect pre-epoch divergence across the
    // world (a rank that missed a repatch, say) and surface it in the report.
    Slot slot{&localProfile, runtimeNs, currentPolicy_.fingerprint(), {}};
    // The last-arriving rank reduces every deposited tree, runs the epoch
    // once and broadcasts the report back through the slots — one plan, one
    // delta repatch, one IC for the whole world. Runtimes are SUMMED across
    // ranks to match the merged profile's summed visit counts: the world's
    // probe cost over the world's aggregate compute time is the average
    // per-rank overhead, so the ratio (and the budget derived from it) does
    // not scale with world size.
    world.allreduceData(
        rank, virtualNow, &slot, [&](const std::vector<void*>& all) {
            scorep::ProfileTree merged;
            double worldRuntimeNs = 0.0;
            const std::uint64_t reducerFingerprint =
                currentPolicy_.fingerprint();
            std::size_t divergent = 0;
            for (void* entry : all) {
                auto* other = static_cast<Slot*>(entry);
                merged.mergeFrom(*other->local);
                worldRuntimeNs += other->runtimeNs;
                if (other->policyFingerprint != reducerFingerprint) {
                    ++divergent;
                }
            }
            EpochReport report = epoch(merged, measurement, worldRuntimeNs);
            report.divergentRanks = divergent;
            lastReport_.divergentRanks = divergent;
            for (void* entry : all) {
                static_cast<Slot*>(entry)->report = report;
            }
        });
    return slot.report;
}

select::InstrumentationConfig surveyOfDefinedFunctions(
    const cg::CallGraph& graph) {
    select::InstrumentationConfig ic;
    ic.specName = "survey";
    for (cg::FunctionId id = 0; id < graph.size(); ++id) {
        if (graph.desc(id).flags.hasBody) {
            ic.addFunction(graph.name(id));
        }
    }
    return ic;
}

double virtualEpochRuntimeNs(const binsim::RunStats& stats,
                             const scorep::Measurement& measurement,
                             double perEventCostNs) {
    return virtualEpochRuntimeNs(stats, measurement, perEventCostNs,
                                 perEventCostNs);
}

double virtualEpochRuntimeNs(const binsim::RunStats& stats,
                             const scorep::Measurement& measurement,
                             double perEventCostNs, double gateCostNs) {
    const double suppressed =
        static_cast<double>(measurement.suppressedEvents());
    const double recorded =
        static_cast<double>(measurement.probeEvents()) - suppressed;
    return stats.virtualNs + recorded * perEventCostNs +
           suppressed * gateCostNs;
}

}  // namespace capi::adapt
