#include "adapt/controller.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <unordered_map>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/backoff.hpp"
#include "support/timer.hpp"
#include "xraysim/xray_runtime.hpp"

namespace capi::adapt {

namespace {

/// Interned span names for the controller phases, resolved once.
struct ControllerSpanNames {
    std::uint32_t epoch;
    std::uint32_t model;
    std::uint32_t plan;
    std::uint32_t patch;
    std::uint32_t revert;
    std::uint32_t killSwitchTrip;
    std::uint32_t killSwitchRearm;
};

const ControllerSpanNames& controllerSpanNames() {
    static const ControllerSpanNames names = [] {
        obs::TraceRecorder& r = obs::TraceRecorder::global();
        return ControllerSpanNames{r.internName("adapt.epoch"),
                                   r.internName("adapt.model"),
                                   r.internName("adapt.plan"),
                                   r.internName("adapt.patch"),
                                   r.internName("adapt.revert"),
                                   r.internName("adapt.kill_switch_trip"),
                                   r.internName("adapt.kill_switch_rearm")};
    }();
    return names;
}

}  // namespace

const char* healthName(EpochHealth health) {
    switch (health) {
        case EpochHealth::Healthy: return "healthy";
        case EpochHealth::Degraded: return "degraded";
        case EpochHealth::SafeMode: return "safe-mode";
    }
    return "<unknown>";
}

Controller::Controller(const cg::CallGraph& graph, dyncapi::DynCapi& dyn,
                       Config config)
    : dyn_(&dyn),
      config_(std::move(config)),
      session_(std::make_unique<dyncapi::RefinementSession>(graph,
                                                            config_.threads)),
      model_(config_),
      planner_(graph),
      obsEventsAtLastEpoch_(obs::TraceRecorder::global().recordedEvents()) {
    // Lifetime HealthStats and the latest epoch's headline numbers, exported
    // from end-of-epoch snapshot copies so the collector never races the
    // controller's working state.
    static std::atomic<std::uint64_t> nextSeq{0};
    const std::uint64_t seq = nextSeq.fetch_add(1, std::memory_order_relaxed);
    metricsCollectorId_ = obs::MetricsRegistry::global().addCollector(
        [this, seq](std::vector<obs::Sample>& out) {
            HealthStats health;
            EpochReport report;
            {
                std::lock_guard<std::mutex> lock(obsMutex_);
                health = obsHealth_;
                report = obsReport_;
            }
            const std::string base = "{ctl=\"" + std::to_string(seq) + "\"}";
            auto counter = [&out, &base](const char* name,
                                         std::uint64_t value) {
                obs::Sample s;
                s.name = std::string(name) + base;
                s.kind = obs::MetricKind::Counter;
                s.value = static_cast<double>(value);
                out.push_back(std::move(s));
            };
            auto gauge = [&out, &base](const char* name, double value) {
                obs::Sample s;
                s.name = std::string(name) + base;
                s.kind = obs::MetricKind::Gauge;
                s.value = value;
                out.push_back(std::move(s));
            };
            counter("capi_adapt_patch_failures_total", health.patchFailures);
            counter("capi_adapt_patch_retries_total", health.patchRetries);
            counter("capi_adapt_reversions_total", health.reversions);
            counter("capi_adapt_kill_switch_trips_total",
                    health.killSwitchTrips);
            counter("capi_adapt_kill_switch_rearms_total",
                    health.killSwitchRearms);
            gauge("capi_adapt_epoch", static_cast<double>(report.epoch));
            gauge("capi_adapt_overhead_ratio", report.measuredOverheadRatio);
            gauge("capi_adapt_ic_size", static_cast<double>(report.icSize));
            gauge("capi_adapt_health",
                  static_cast<double>(static_cast<int>(report.health)));
            gauge("capi_adapt_self_obs_cost_ns", report.selfObsCostNs);
        });
}

Controller::Controller(const cg::CallGraph& graph, dyncapi::DynCapi& dyn,
                       ControllerOptions options)
    : Controller(graph, dyn, options.toConfig()) {}

Controller::~Controller() {
    obs::MetricsRegistry::global().removeCollector(metricsCollectorId_);
}

select::SelectionReport Controller::startFromSpec(const std::string& specText,
                                                  const std::string& specName,
                                                  select::SelectionOptions base) {
    select::SelectionReport report = session_->select(specText, specName, base);
    start(report.ic);
    return report;
}

dyncapi::InitStats Controller::start(select::InstrumentationConfig surveyIc) {
    surveyIc_ = std::move(surveyIc);
    currentIc_ = surveyIc_;
    // The survey epoch always measures at Full: the model needs unsampled
    // ground truth before the planner can demote anything.
    currentPolicy_ = select::InstrumentationPolicy::fullOf(currentIc_);
    lastReport_ = EpochReport{};
    return dyn_->applyPolicy(currentPolicy_);
}

EpochReport Controller::epoch(const scorep::ProfileTree& profile,
                              const scorep::Measurement& measurement,
                              double runtimeNs) {
    const ControllerSpanNames& spans = controllerSpanNames();
    obs::ScopedSpan epochSpan(spans.epoch, obs::SpanCategory::Epoch);
    epochSpan.setArg(lastReport_.epoch + 1);

    // Everything the recorder accepted since the last epoch — the measured
    // run's collective/fault/patch events — is this epoch's observation
    // bill, charged into the model below at the calibrated per-event cost.
    const std::uint64_t obsEventsNow =
        obs::TraceRecorder::global().recordedEvents();
    const std::uint64_t obsEventsDelta = obsEventsNow - obsEventsAtLastEpoch_;
    obsEventsAtLastEpoch_ = obsEventsNow;

    obs::ScopedSpan modelSpan(spans.model, obs::SpanCategory::Model);
    // One profile walk per epoch, shared by the model and the metric fold.
    const auto regionTotals = profile.regionTotals();
    model_.observeEpoch(regionTotals, measurement, runtimeNs, &currentIc_);

    if (config_.foldVisitMetricsInto != nullptr) {
        // Route the epoch's observed visit counts into the graph as
        // metric-only journal touches: only the regions whose count actually
        // changed are dirtied, so a following re-selection patches its CSR
        // snapshot and keeps every cached stage that reads no metrics of the
        // touched nodes. Summed per name first — several region handles can
        // share one function name across measurement recreations.
        std::unordered_map<std::string, std::uint64_t> visitsByName;
        for (const auto& [region, totals] : regionTotals) {
            visitsByName[measurement.region(region).name] += totals.visits;
        }
        cg::CallGraph& graph = *config_.foldVisitMetricsInto;
        for (const auto& [name, totalVisits] : visitsByName) {
            cg::FunctionId id = graph.lookup(name);
            if (id == cg::kInvalidFunction || !graph.alive(id)) {
                continue;
            }
            const auto visits = static_cast<std::uint32_t>(
                std::min<std::uint64_t>(totalVisits, UINT32_MAX));
            if (graph.desc(id).metrics.profiledVisits != visits) {
                graph.touchMetrics(id, [visits](cg::FunctionMetrics& metrics) {
                    metrics.profiledVisits = visits;
                });
            }
        }
    }

    EpochReport report;
    report.epoch = lastReport_.epoch + 1;
    report.runtimeNs = runtimeNs;
    report.obsEventsObserved = obsEventsDelta;
    report.selfObsCostNs =
        static_cast<double>(obsEventsDelta) * config_.obsCostNs;
    // Charged before the headline numbers are read, so the convergence check
    // and the kill-switch both see probe cost PLUS observation cost.
    model_.chargeSelfCost(report.selfObsCostNs);
    modelSpan.end();
    report.measuredProbeCostNs = model_.lastEpochProbeCostNs();
    report.measuredOverheadRatio = model_.lastEpochOverheadRatio();
    report.withinBudget = report.measuredOverheadRatio <= config_.budgetFraction;

    updateKillSwitch(report);

    // Pick the target policy: the planner's, or — with the kill-switch
    // tripped — the keep-list-only fallback, whose cost does not depend on
    // the planner's (apparently miscalibrated) model at all.
    obs::ScopedSpan planSpan(spans.plan, obs::SpanCategory::Plan);
    select::InstrumentationPolicy target;
    select::InstrumentationConfig targetIc;
    if (health_ == EpochHealth::SafeMode) {
        target = safeModePolicy();
        targetIc = target.patchSet();
        report.budgetNs = config_.budgetFraction * runtimeNs;
        report.plannedProbeCostNs = 0.0;
        report.icSize = targetIc.size();
        report.fullRegions = target.countOf(select::Tier::Full);
        report.sampledRegions = 0;
    } else {
        // Re-plan over the survey candidates, not the shrunken current IC:
        // the model's frozen estimates let the planner re-admit regions whose
        // smoothed cost no longer blocks the budget (and re-promote regions
        // it demoted to Sampled).
        PlanResult plan = planner_.plan(surveyIc_, model_, config_);
        report.budgetNs = plan.budgetNs;
        report.plannedProbeCostNs = plan.plannedProbeCostNs;
        report.icSize = plan.ic.size();
        report.fullRegions = plan.fullRegions;
        report.sampledRegions = plan.sampledRegions;
        target = std::move(plan.policy);
        targetIc = std::move(plan.ic);
    }

    select::PolicyDelta delta = select::policyDiff(currentPolicy_, target);
    report.addedFunctions = delta.added.size();
    report.removedFunctions = delta.removed.size();
    report.promotedFunctions = delta.promoted.size();
    report.demotedFunctions = delta.demoted.size();
    planSpan.setArg(report.icSize);
    planSpan.end();

    obs::ScopedSpan patchSpan(spans.patch, obs::SpanCategory::Patch);
    if (applyWithRetry(target, report)) {
        currentPolicy_ = std::move(target);
        currentIc_ = std::move(targetIc);
        if (report.retriesThisEpoch > 0) {
            if (health_ == EpochHealth::Healthy) {
                health_ = EpochHealth::Degraded;
            }
        } else if (health_ == EpochHealth::Degraded && !report.killSwitchRearmed) {
            // A clean epoch heals — but the rearm epoch itself stays
            // Degraded: the planner must prove a full epoch clean first.
            health_ = EpochHealth::Healthy;
        }
    } else {
        // Retries exhausted. The transaction rolled every attempt back, so
        // the live sled/tier state still IS currentPolicy_ — the last
        // known-good. Re-apply it as a consistency pass (normally a no-op
        // delta) and stay on the old IC.
        report.revertedToLastGood = true;
        ++healthStats_.reversions;
        {
            obs::TraceRecorder& recorder = obs::TraceRecorder::global();
            if (recorder.enabled()) {
                recorder.recordInstant(spans.revert, obs::SpanCategory::Epoch,
                                       support::probeNowNs(),
                                       report.retriesThisEpoch);
            }
        }
        if (health_ != EpochHealth::SafeMode) {
            health_ = EpochHealth::Degraded;
        }
        try {
            report.patch = dyn_->applyPolicyDelta(currentPolicy_);
        } catch (const xray::PatchError&) {
            // Even the no-op revert failed: wedge into SafeMode and make a
            // best-effort attempt to shed down to the minimal policy.
            ++healthStats_.patchFailures;
            health_ = EpochHealth::SafeMode;
            try {
                select::InstrumentationPolicy safe = safeModePolicy();
                report.patch = dyn_->applyPolicyDelta(safe);
                currentIc_ = safe.patchSet();
                currentPolicy_ = std::move(safe);
            } catch (const xray::PatchError&) {
                ++healthStats_.patchFailures;  // Keep last-good; next epoch retries.
            }
        }
    }
    patchSpan.setArg(report.patch.functionsPatched +
                     report.patch.functionsUnpatched);
    patchSpan.end();
    report.policyFingerprint = currentPolicy_.fingerprint();
    report.health = health_;

    lastReport_ = report;
    {
        // Publish the epoch's results for the metrics collector.
        std::lock_guard<std::mutex> lock(obsMutex_);
        obsHealth_ = healthStats_;
        obsReport_ = report;
    }
    return report;
}

select::InstrumentationPolicy Controller::safeModePolicy() const {
    select::InstrumentationConfig keepIc;
    keepIc.specName = "safe-mode";
    for (const std::string& name : config_.keep) {
        keepIc.addFunction(name);
    }
    return select::InstrumentationPolicy::fullOf(keepIc);
}

bool Controller::applyWithRetry(const select::InstrumentationPolicy& target,
                                EpochReport& report) {
    support::Backoff backoff(config_.retryBackoff, config_.retrySeed);
    for (std::size_t attempt = 0; attempt <= config_.patchRetries; ++attempt) {
        try {
            report.patch = dyn_->applyPolicyDelta(target);
            return true;
        } catch (const xray::PatchError&) {
            ++healthStats_.patchFailures;
            if (attempt == config_.patchRetries) {
                return false;
            }
            ++healthStats_.patchRetries;
            ++report.retriesThisEpoch;
            std::this_thread::sleep_for(
                std::chrono::nanoseconds(backoff.nextDelayNs()));
        }
    }
    return false;
}

void Controller::updateKillSwitch(EpochReport& report) {
    const double tripRatio = config_.budgetFraction * config_.killSwitchFactor;
    if (report.measuredOverheadRatio > tripRatio) {
        ++overBudgetStreak_;
        inBudgetStreak_ = 0;
    } else if (report.withinBudget) {
        ++inBudgetStreak_;
        overBudgetStreak_ = 0;
    } else {
        // The grey zone between budget and trip ratio: breaks both streaks,
        // which is the hysteresis that keeps a borderline workload from
        // flapping between tripped and re-armed.
        overBudgetStreak_ = 0;
        inBudgetStreak_ = 0;
    }
    obs::TraceRecorder& recorder = obs::TraceRecorder::global();
    if (health_ != EpochHealth::SafeMode &&
        overBudgetStreak_ >= config_.killSwitchEpochs) {
        health_ = EpochHealth::SafeMode;
        ++healthStats_.killSwitchTrips;
        report.killSwitchTripped = true;
        overBudgetStreak_ = 0;
        if (recorder.enabled()) {
            recorder.recordInstant(controllerSpanNames().killSwitchTrip,
                                   obs::SpanCategory::Epoch,
                                   support::probeNowNs(), report.epoch);
        }
    } else if (health_ == EpochHealth::SafeMode &&
               inBudgetStreak_ >= config_.killSwitchRearmEpochs) {
        // Re-arm into Degraded, not Healthy: the next planned epoch must
        // prove itself clean before the controller reports full health.
        health_ = EpochHealth::Degraded;
        ++healthStats_.killSwitchRearms;
        report.killSwitchRearmed = true;
        inBudgetStreak_ = 0;
        if (recorder.enabled()) {
            recorder.recordInstant(controllerSpanNames().killSwitchRearm,
                                   obs::SpanCategory::Epoch,
                                   support::probeNowNs(), report.epoch);
        }
    }
}

EpochReport Controller::epochAllRanks(mpi::MpiWorld& world, int rank,
                                      double virtualNow,
                                      const scorep::ProfileTree& localProfile,
                                      const scorep::Measurement& measurement,
                                      double runtimeNs) {
    struct Slot {
        const scorep::ProfileTree* local;
        double runtimeNs;
        std::uint64_t policyFingerprint;
        EpochReport report;
        /// The policy the reduction converged on, copied into every slot
        /// under the world lock so divergent ranks can re-apply it after
        /// they wake (satisfying the fingerprint-equality postcondition).
        select::InstrumentationPolicy convergedPolicy;
        /// True on the slot of the rank whose controller ran the reduction
        /// (that controller is already up to date; every other one must
        /// check its fingerprint).
        bool reducedByMe = false;
    };
    // Each rank deposits the fingerprint of the tiered policy it believes is
    // live, so the reducing rank can detect pre-epoch divergence across the
    // world (a rank that missed a repatch, say) and surface it in the report.
    Slot slot{&localProfile, runtimeNs, currentPolicy_.fingerprint(), {}, {},
              false};
    // The last-arriving rank reduces every deposited tree, runs the epoch
    // once and broadcasts the report back through the slots — one plan, one
    // delta repatch, one IC for the whole world. Runtimes are SUMMED across
    // ranks to match the merged profile's summed visit counts: the world's
    // probe cost over the world's aggregate compute time is the average
    // per-rank overhead, so the ratio (and the budget derived from it) does
    // not scale with world size. Dropped ranks contribute no slot; the
    // collective completes over the survivors (see MpiWorld's quorum policy).
    world.allreduceData(
        rank, virtualNow, &slot, [&](const std::vector<void*>& all) {
            scorep::ProfileTree merged;
            double worldRuntimeNs = 0.0;
            const std::uint64_t reducerFingerprint =
                currentPolicy_.fingerprint();
            std::size_t divergent = 0;
            for (void* entry : all) {
                auto* other = static_cast<Slot*>(entry);
                merged.mergeFrom(*other->local);
                worldRuntimeNs += other->runtimeNs;
                if (other->policyFingerprint != reducerFingerprint) {
                    ++divergent;
                }
            }
            EpochReport report = epoch(merged, measurement, worldRuntimeNs);
            report.divergentRanks = divergent;
            lastReport_.divergentRanks = divergent;
            for (void* entry : all) {
                auto* other = static_cast<Slot*>(entry);
                other->report = report;
                other->convergedPolicy = currentPolicy_;
                other->reducedByMe = (other == &slot);
            }
        });
    // Visible to every rank in its own returned report; lastReport_ is only
    // written by adoptPolicy on controllers that this rank exclusively owns.
    slot.report.droppedRanks =
        static_cast<std::size_t>(world.worldSize() - world.liveRankCount());
    // Reconciliation: a rank driving its own controller (one per process,
    // the real-MPI shape) wakes here with a stale currentPolicy_ — the
    // reduction patched only the reducing rank's. Adopt the converged
    // policy so every rank's fingerprint equals the report's before this
    // collective returns. When all ranks share one controller the
    // fingerprints already match and nothing is written (no data race: the
    // reducer's writes happened-before the wake-up).
    if (!slot.reducedByMe) {
        slot.report = adoptPolicy(slot.convergedPolicy, slot.report);
    }
    return slot.report;
}

EpochReport Controller::adoptPolicy(
    const select::InstrumentationPolicy& converged,
    const EpochReport& worldReport) {
    EpochReport report = worldReport;
    if (currentPolicy_.fingerprint() != report.policyFingerprint) {
        // Diagnose, not just count: the region-level diff between what this
        // controller was running and what the world converged on.
        report.divergence = select::policyDiff(currentPolicy_, converged);
        EpochReport applied = report;
        applied.retriesThisEpoch = 0;
        if (applyWithRetry(converged, applied)) {
            currentPolicy_ = converged;
            currentIc_ = currentPolicy_.patchSet();
            report.patch = applied.patch;
        }
        // On exhausted retries this controller stays on its last-good policy
        // — Degraded, to be reconciled again next epoch.
        if (applied.retriesThisEpoch > 0 ||
            currentPolicy_.fingerprint() != report.policyFingerprint) {
            health_ = EpochHealth::Degraded;
            report.health = health_;
        }
        lastReport_ = report;
    } else if (lastReport_.epoch != report.epoch) {
        // Same fingerprint but a controller that did not run the reduction
        // itself (already converged): adopt the world report.
        lastReport_ = report;
    } else {
        return report;
    }
    {
        // Publish for the metrics collector, as epoch() does.
        std::lock_guard<std::mutex> lock(obsMutex_);
        obsHealth_ = healthStats_;
        obsReport_ = lastReport_;
    }
    return report;
}

select::InstrumentationConfig surveyOfDefinedFunctions(
    const cg::CallGraph& graph) {
    select::InstrumentationConfig ic;
    ic.specName = "survey";
    for (cg::FunctionId id = 0; id < graph.size(); ++id) {
        if (graph.desc(id).flags.hasBody) {
            ic.addFunction(graph.name(id));
        }
    }
    return ic;
}

double virtualEpochRuntimeNs(const binsim::RunStats& stats,
                             const scorep::Measurement& measurement,
                             double perEventCostNs) {
    return virtualEpochRuntimeNs(stats, measurement, perEventCostNs,
                                 perEventCostNs);
}

double virtualEpochRuntimeNs(const binsim::RunStats& stats,
                             const scorep::Measurement& measurement,
                             double perEventCostNs, double gateCostNs) {
    const double suppressed =
        static_cast<double>(measurement.suppressedEvents());
    const double recorded =
        static_cast<double>(measurement.probeEvents()) - suppressed;
    return stats.virtualNs + recorded * perEventCostNs +
           suppressed * gateCostNs;
}

}  // namespace capi::adapt
