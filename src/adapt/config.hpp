// The one configuration surface of the adaptive layer.
//
// ModelOptions, PlannerOptions and ControllerOptions grew overlapping knobs
// (probe cost, budget fraction, EWMA alpha each appeared in more than one
// struct, silently divergeable). Config consolidates every knob in one
// struct owned by the Controller and passed down to the model and planner;
// the old structs remain as thin deprecated shims for one release (see
// their headers) and convert into a Config with the sampled tier disabled,
// which reproduces the binary Full|Off behaviour bit for bit.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "support/backoff.hpp"

namespace capi::support {
class ThreadPool;
}
namespace capi::cg {
class CallGraph;
}

namespace capi::adapt {

struct Config {
    // --- measurement model -------------------------------------------------
    /// Calibrated wall (or virtual) cost of one probe event; see
    /// scorep::calibrateProbeCostNs(). Frozen estimates survive recalibration
    /// because cost is recomputed as visits x perEventCostNs at planning
    /// time — only EWMA'd visit counts are stored, never a stale product.
    double perEventCostNs = 120.0;
    /// Calibrated cost of one *suppressed* event at a Sampled region — the
    /// gate's countdown/TSC check without timestamping or CCT accounting;
    /// see scorep::calibrateGateCostNs(). This is what a demoted region
    /// still costs per skipped visit.
    double gateCostNs = 10.0;
    /// Weight of the newest epoch in the moving average (1.0 = no memory).
    double ewmaAlpha = 0.5;
    /// Calibrated cost of one self-observability trace event (see
    /// obs::calibrateObsCostNs). When nonzero, each epoch charges
    /// (events recorded since the last epoch) x this into the overhead
    /// model, so the budget covers observation of the observer. 0 (the
    /// default) keeps self-cost accounting off — matching a disabled
    /// recorder, whose record path cost is one load and a branch.
    double obsCostNs = 0.0;

    // --- budget & tiers ----------------------------------------------------
    /// Probe-time budget as a fraction of *application* runtime (probe cost
    /// excluded), so the realized overhead ratio stays below the fraction
    /// even after trimming shrinks the total runtime.
    double budgetFraction = 0.05;
    /// Regions never excluded (and never demoted): their SCC group is
    /// admitted at Full before the budget sweep and may alone exceed the
    /// budget (the user's call).
    std::vector<std::string> keep;
    /// Enables the middle knapsack rung: a group too expensive to keep at
    /// Full is demoted to Sampled (1-in-sampledEveryN decimation) before it
    /// is evicted. Off reproduces the binary Full|Off planner exactly.
    bool enableSampledTier = false;
    /// Decimation factor for demoted regions: one visit in N is timed, the
    /// other N-1 pay only gateCostNs each and are counted for extrapolation.
    std::uint32_t sampledEveryN = 64;
    /// Optional rate cap for demoted regions (0 = none): admitted samples
    /// are additionally spaced at least this many ns apart.
    std::uint64_t sampledMinIntervalNs = 0;

    // --- controller --------------------------------------------------------
    /// Epoch cap for run() convenience loops (the controller itself keeps
    /// accepting epochs beyond it).
    std::size_t maxEpochs = 10;
    /// Selection/planning parallelism, as in PipelineOptions: 1 = serial
    /// reference, anything else borrows the process-wide Executor pool
    /// unless `pool` injects one.
    std::size_t threads = 1;
    support::ThreadPool* pool = nullptr;
    /// When set (to the SAME graph the controller was constructed over),
    /// every epoch folds measured per-region visit counts into
    /// FunctionMetrics::profiledVisits through CallGraph::touchMetrics —
    /// metric-only journal records, so re-selections patch their CSR
    /// snapshot instead of rebuilding.
    cg::CallGraph* foldVisitMetricsInto = nullptr;

    // --- self-healing ------------------------------------------------------
    /// Attempts to re-apply a failed policy patch within one epoch before
    /// reverting to the last known-good policy. Each retry waits one
    /// retryBackoff delay (deterministic under retrySeed).
    std::size_t patchRetries = 3;
    support::BackoffOptions retryBackoff{};
    std::uint64_t retrySeed = 0;
    /// Overhead kill-switch: when the measured overhead ratio exceeds
    /// budgetFraction * killSwitchFactor for killSwitchEpochs consecutive
    /// epochs, the controller trips into SafeMode (minimal keep-only
    /// instrumentation). killSwitchRearmEpochs consecutive in-budget epochs
    /// in SafeMode re-arm the planner (hysteresis, so a borderline workload
    /// does not flap between tripped and armed).
    double killSwitchFactor = 3.0;
    std::size_t killSwitchEpochs = 3;
    std::size_t killSwitchRearmEpochs = 2;
};

}  // namespace capi::adapt
