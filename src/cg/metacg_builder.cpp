#include "cg/metacg_builder.hpp"

#include <deque>
#include <unordered_map>
#include <unordered_set>

namespace capi::cg {

LocalCallGraph MetaCgBuilder::buildLocal(const TranslationUnit& unit) {
    LocalCallGraph local;
    local.unitName = unit.name;

    for (const SourceFunction& fn : unit.functions) {
        FunctionDesc desc = fn.desc;
        if (desc.translationUnit.empty() && desc.flags.hasBody) {
            desc.translationUnit = unit.name;
        }
        local.graph.addFunction(desc);
    }

    for (const SourceFunction& fn : unit.functions) {
        if (!fn.desc.flags.hasBody) {
            continue;
        }
        FunctionId caller = local.graph.lookup(fn.desc.name);
        for (const CallSite& site : fn.callSites) {
            switch (site.kind) {
                case CallSite::Kind::Direct: {
                    FunctionId callee = local.graph.lookup(site.target);
                    if (callee == kInvalidFunction) {
                        // Callee defined in another TU: insert a declaration
                        // node so the local graph is self-contained.
                        FunctionDesc decl;
                        decl.name = site.target;
                        decl.prettyName = site.target;
                        callee = local.graph.addFunction(decl);
                    }
                    local.graph.addCallEdge(caller, callee);
                    break;
                }
                case CallSite::Kind::Virtual:
                    local.pendingVirtual.push_back({fn.desc.name, site});
                    break;
                case CallSite::Kind::FunctionPointer:
                    local.pendingPointer.push_back({fn.desc.name, site});
                    break;
            }
        }
    }
    return local;
}

CallGraph MetaCgBuilder::merge(const std::vector<LocalCallGraph>& locals,
                               const std::vector<OverrideRelation>& overrides) {
    stats_ = MergeStats{};
    unresolved_.clear();
    stats_.translationUnits = locals.size();

    CallGraph whole;

    // Pass 1: union of nodes. addFunction() merges duplicate sightings,
    // preferring definition metadata over declarations.
    for (const LocalCallGraph& local : locals) {
        for (FunctionId id = 0; id < local.graph.size(); ++id) {
            whole.addFunction(local.graph.desc(id));
        }
    }

    // Pass 2: direct edges.
    for (const LocalCallGraph& local : locals) {
        for (FunctionId id = 0; id < local.graph.size(); ++id) {
            FunctionId caller = whole.lookup(local.graph.name(id));
            for (FunctionId localCallee : local.graph.callees(id)) {
                FunctionId callee = whole.lookup(local.graph.name(localCallee));
                if (!whole.hasEdge(caller, callee)) {
                    ++stats_.directEdges;
                    whole.addCallEdge(caller, callee);
                }
            }
        }
    }

    // Pass 3: class hierarchy.
    for (const OverrideRelation& rel : overrides) {
        FunctionId base = whole.lookup(rel.base);
        FunctionId derived = whole.lookup(rel.derived);
        if (base != kInvalidFunction && derived != kInvalidFunction) {
            whole.addOverride(base, derived);
        }
    }

    // Pass 4: virtual call sites. An edge is inserted to the static target
    // and to every definition transitively overriding it. This
    // over-approximation guarantees all possible call paths are represented
    // (paper, Sec. III-A).
    for (const LocalCallGraph& local : locals) {
        for (const LocalCallGraph::PendingCall& pending : local.pendingVirtual) {
            FunctionId caller = whole.lookup(pending.caller);
            FunctionId base = whole.lookup(pending.site.target);
            if (caller == kInvalidFunction || base == kInvalidFunction) {
                continue;
            }
            std::deque<FunctionId> queue{base};
            std::unordered_set<FunctionId> seen{base};
            while (!queue.empty()) {
                FunctionId target = queue.front();
                queue.pop_front();
                if (!whole.hasEdge(caller, target)) {
                    whole.addCallEdge(caller, target);
                    ++stats_.virtualEdges;
                }
                for (FunctionId derived : whole.overriddenBy(target)) {
                    if (seen.insert(derived).second) {
                        queue.push_back(derived);
                    }
                }
            }
        }
    }

    // Pass 5: function-pointer call sites. Candidates are address-taken
    // functions whose signature group matches. A unique candidate resolves
    // statically; ambiguous or empty candidate sets are reported so the
    // profile-validation utility can insert the missing edges later.
    std::unordered_map<std::string, std::vector<FunctionId>> bySignature;
    for (FunctionId id = 0; id < whole.size(); ++id) {
        const FunctionDesc& desc = whole.desc(id);
        if (desc.flags.addressTaken && !desc.signature.empty()) {
            bySignature[desc.signature].push_back(id);
        }
    }
    for (const LocalCallGraph& local : locals) {
        for (const LocalCallGraph::PendingCall& pending : local.pendingPointer) {
            FunctionId caller = whole.lookup(pending.caller);
            auto it = bySignature.find(pending.site.signature);
            if (caller != kInvalidFunction && it != bySignature.end() &&
                it->second.size() == 1) {
                whole.addCallEdge(caller, it->second.front());
                ++stats_.pointerEdgesResolved;
            } else {
                ++stats_.pointerSitesUnresolved;
                unresolved_.push_back({pending.caller, pending.site.signature});
            }
        }
    }

    stats_.totalNodes = whole.size();
    return whole;
}

CallGraph MetaCgBuilder::build(const SourceModel& model) {
    std::vector<LocalCallGraph> locals;
    locals.reserve(model.units.size());
    for (const TranslationUnit& unit : model.units) {
        locals.push_back(buildLocal(unit));
    }
    return merge(locals, model.overrides);
}

}  // namespace capi::cg
