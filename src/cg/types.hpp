// Basic call-graph value types shared by the MetaCG substrate and selectors.
#pragma once

#include <cstdint>
#include <limits>
#include <string>

namespace capi::cg {

/// Dense index of a function node within a CallGraph.
using FunctionId = std::uint32_t;

inline constexpr FunctionId kInvalidFunction = std::numeric_limits<FunctionId>::max();

/// Static source-level properties a compiler front end can report per function.
/// These drive the metric-based selectors (flops, loopDepth, statements, ...).
struct FunctionMetrics {
    std::uint32_t numStatements = 0;       ///< Source statements in the body.
    std::uint32_t flops = 0;               ///< Floating-point operations (static count).
    std::uint32_t loopDepth = 0;           ///< Maximum loop nesting depth.
    std::uint32_t cyclomaticComplexity = 1;///< McCabe complexity.
    std::uint32_t numCallSites = 0;        ///< Call expressions in the body.
    std::uint32_t numInstructions = 0;     ///< Approximate machine instructions
                                           ///< (XRay threshold pre-filter input).
    std::uint32_t profiledVisits = 0;      ///< Runtime metric: visit count folded
                                           ///< in from the last measurement epoch
                                           ///< (CallGraph::touchMetrics channel).
};

/// Structural flags recorded by the call-graph construction.
struct FunctionFlags {
    bool hasBody = false;          ///< Definition seen (not just a declaration).
    bool inlineSpecified = false;  ///< Marked `inline` in source.
    bool inSystemHeader = false;   ///< Defined in a system header.
    bool isVirtual = false;        ///< Virtual member function.
    bool isMpi = false;            ///< An MPI API entry point (MPI_*).
    bool addressTaken = false;     ///< Address used as a function pointer.
    bool hiddenVisibility = false; ///< Not visible in the dynamic symbol table.
};

/// One function node: identity, location, flags and static metrics.
struct FunctionDesc {
    std::string name;            ///< Unique (mangled) name; lookup key.
    std::string prettyName;      ///< Human-readable (demangled) name.
    std::string translationUnit; ///< TU the definition lives in ("" = unknown).
    std::string sourceFile;      ///< File of the definition.
    std::uint32_t line = 0;
    std::string signature;       ///< Type signature group (function-pointer resolution).
    FunctionFlags flags;
    FunctionMetrics metrics;
};

}  // namespace capi::cg
