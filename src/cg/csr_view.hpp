// Immutable, data-oriented CSR snapshot of a CallGraph — patchable on deltas.
//
// CallGraph::Node keeps four per-node std::vectors, which is the right shape
// for incremental construction (MetaCG merge, dlopen-time node additions) but
// the wrong shape for analysis: every traversal pointer-chases through
// separately allocated adjacency vectors and drags the cold FunctionDesc
// strings through the cache with it. CsrView flattens each edge relation into
// flat per-node (start, length) rows over one shared edge pool, interns all
// function names into a single arena, and lifts the metrics the hot selectors
// read (statement counts) into flat arrays. A whole-graph BFS/Tarjan walk then
// touches a handful of contiguous allocations instead of ~4 per node.
//
// Snapshots are immutable and registered per graph identity + generation:
// snapshot() returns the same shared instance for every caller at the same
// stamp, so all pipeline stages of a run (and repeated runs against an
// unchanged graph) share one view. When the graph's mutation journal still
// covers the previous snapshot's stamp, the new snapshot is built by PATCHING:
// relations a delta does not touch share the previous snapshot's row arrays
// outright, and touched relations re-read only the dirty rows, appending them
// to a per-view tail ("epoch tail") while the bulk edge pool stays shared.
// Past a churn threshold (or when the tail would outgrow the pool) the build
// falls back to a full rebuild, so patching is never worse than O(V + E).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "cg/delta.hpp"
#include "cg/types.hpp"

namespace capi::support {
class ThreadPool;
}

namespace capi::cg {

class CallGraph;

class CsrView {
public:
    /// Registry counters: how snapshots were produced process-wide.
    struct RegistryStats {
        std::uint64_t fullBuilds = 0;   ///< Snapshots built from scratch.
        std::uint64_t patchBuilds = 0;  ///< Snapshots patched from a predecessor.
        std::uint64_t sharedHits = 0;   ///< snapshot() answered from the registry.
        std::uint64_t graphsReleased = 0;  ///< Slots evicted by ~CallGraph.
    };

    /// The shared snapshot of `graph` at its current generation. Built on
    /// first use after a mutation — incrementally when the mutation journal
    /// covers the previous snapshot — and returned shared to every caller at
    /// the same stamp (thread-safe). Large full builds run on the
    /// process-wide support::Executor pool.
    static std::shared_ptr<const CsrView> snapshot(const CallGraph& graph);

    /// Direct full build, bypassing the registry (benchmarks, tests). With a
    /// pool, per-relation size counting and row filling are sharded over
    /// node ranges; the result is bit-identical to the serial build (each
    /// shard writes a disjoint, position-determined slice).
    explicit CsrView(const CallGraph& graph, support::ThreadPool* pool = nullptr);

    /// Patch build: `prev` must be a snapshot of the same graph lineage at
    /// `delta.fromGeneration`. Returns null when the delta's churn exceeds
    /// the patch thresholds (caller falls back to the full build). Row
    /// contents of the result are element-identical to a full rebuild.
    static std::shared_ptr<const CsrView> tryPatch(const CsrView& prev,
                                                   const CallGraph& graph,
                                                   const GraphDelta& delta);

    /// Eagerly drops every registered snapshot of a destroyed graph
    /// (called from ~CallGraph; safe to call for unknown ids).
    static void releaseGraph(std::uint64_t graphId) noexcept;

    /// Process-wide A/B switch for the patch path (benchmarks measure the
    /// full-rebuild baseline by disabling it). Default: enabled.
    static void setIncrementalPatching(bool enabled) noexcept;
    static bool incrementalPatching() noexcept;

    static RegistryStats registryStats() noexcept;
    /// Registered snapshot chains currently alive (tests).
    static std::size_t registrySlotCount() noexcept;

    std::uint64_t generation() const noexcept { return generation_; }
    std::size_t size() const noexcept { return nodeCount_; }
    std::size_t edgeCount() const noexcept { return callEdgeCount_; }
    FunctionId entryPoint() const noexcept { return entry_; }
    /// True when this view was built by patching a predecessor.
    bool patched() const noexcept { return patched_; }

    // Adjacency rows. Each span aliases the shared edge pool or this view's
    // patch tail; element order is the CallGraph's (sorted, unique), so row
    // contents are comparable 1:1.
    std::span<const FunctionId> callees(FunctionId id) const { return callees_->row(id); }
    std::span<const FunctionId> callers(FunctionId id) const { return callers_->row(id); }
    std::span<const FunctionId> overrides(FunctionId id) const { return overrides_->row(id); }
    std::span<const FunctionId> overriddenBy(FunctionId id) const {
        return overriddenBy_->row(id);
    }

    std::size_t calleeCount(FunctionId id) const { return callees_->len[id]; }
    std::size_t callerCount(FunctionId id) const { return callers_->len[id]; }

    /// Mangled name, viewing the interned arena (valid as long as the view).
    std::string_view name(FunctionId id) const { return names_->view(id); }

    /// Flat copy of desc(id).metrics.numStatements (statementAggregation's
    /// hot read; avoids touching FunctionDesc in the aggregation loops).
    std::uint32_t numStatements(FunctionId id) const { return (*numStatements_)[id]; }

private:
    /// High bit of `start` routes a row into the view-local tail instead of
    /// the shared pool (patched rows; edge pools stay < 2^31 entries).
    static constexpr std::uint32_t kTailBit = 0x80000000u;

    struct Rows {
        std::shared_ptr<const std::vector<FunctionId>> pool;
        std::vector<FunctionId> tail;        ///< Patched rows live here.
        std::vector<std::uint32_t> start;    ///< Pool index, or kTailBit | tail index.
        std::vector<std::uint32_t> len;

        std::span<const FunctionId> row(FunctionId id) const {
            const std::uint32_t s = start[id];
            const FunctionId* base = (s & kTailBit) != 0
                                         ? tail.data() + (s & ~kTailBit)
                                         : pool->data() + s;
            return {base, base + len[id]};
        }
    };

    struct NameArena {
        std::shared_ptr<const std::string> pool;
        std::string tail;
        std::vector<std::uint32_t> start;
        std::vector<std::uint32_t> len;

        std::string_view view(FunctionId id) const {
            const std::uint32_t s = start[id];
            const char* base = (s & kTailBit) != 0 ? tail.data() + (s & ~kTailBit)
                                                   : pool->data() + s;
            return {base, len[id]};
        }
    };

    CsrView() = default;  ///< For tryPatch.

    /// Full build of one relation (serial reference or node-sharded);
    /// defined in csr_view.cpp, instantiated only there.
    template <typename RowGetter>
    static std::shared_ptr<const Rows> buildRows(std::size_t n, RowGetter&& rowOf,
                                                 support::ThreadPool* pool);

    std::uint64_t generation_ = 0;
    std::size_t nodeCount_ = 0;
    std::size_t callEdgeCount_ = 0;
    FunctionId entry_ = kInvalidFunction;
    bool patched_ = false;
    std::shared_ptr<const Rows> callees_;
    std::shared_ptr<const Rows> callers_;
    std::shared_ptr<const Rows> overrides_;
    std::shared_ptr<const Rows> overriddenBy_;
    std::shared_ptr<const NameArena> names_;
    std::shared_ptr<const std::vector<std::uint32_t>> numStatements_;
};

}  // namespace capi::cg
