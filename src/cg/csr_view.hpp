// Immutable, data-oriented CSR snapshot of a CallGraph.
//
// CallGraph::Node keeps four per-node std::vectors, which is the right shape
// for incremental construction (MetaCG merge, dlopen-time node additions) but
// the wrong shape for analysis: every traversal pointer-chases through
// separately allocated adjacency vectors and drags the cold FunctionDesc
// strings through the cache with it. CsrView flattens each edge relation into
// one offsets array plus one edge array (compressed sparse row), interns all
// function names into a single arena, and lifts the metrics the hot selectors
// read (statement counts) into flat arrays. A whole-graph BFS/Tarjan walk then
// touches a handful of contiguous allocations instead of ~4 per node.
//
// Snapshots are immutable and keyed by CallGraph::generation(): snapshot()
// builds lazily on first use after a mutation and returns the same shared
// instance for every caller at the same stamp, so all pipeline stages of a
// run (and repeated runs against an unchanged graph) share one view. Because
// generation stamps are process-unique and every CallGraph mutation assigns a
// fresh one, a cached view can never be served for a graph revision it was
// not built from.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "cg/types.hpp"

namespace capi::support {
class ThreadPool;
}

namespace capi::cg {

class CallGraph;

class CsrView {
public:
    /// The shared snapshot of `graph` at its current generation. Built on
    /// first use after a mutation; later calls at the same stamp return the
    /// same instance (thread-safe, bounded process-wide registry). Large
    /// graphs build on the process-wide support::Executor pool — the build
    /// was the last serial O(V+E) pass on the re-selection path.
    static std::shared_ptr<const CsrView> snapshot(const CallGraph& graph);

    /// Direct build, bypassing the registry (benchmarks, tests). With a
    /// pool, per-relation size counting and row filling are sharded over
    /// node ranges; the result is bit-identical to the serial build (each
    /// shard writes a disjoint, position-determined slice).
    explicit CsrView(const CallGraph& graph, support::ThreadPool* pool = nullptr);

    std::uint64_t generation() const noexcept { return generation_; }
    std::size_t size() const noexcept { return nodeCount_; }
    std::size_t edgeCount() const noexcept { return callees_.edges.size(); }
    FunctionId entryPoint() const noexcept { return entry_; }

    // Adjacency rows. Each span aliases one flat array; element order is the
    // CallGraph's (sorted, unique), so row contents are comparable 1:1.
    std::span<const FunctionId> callees(FunctionId id) const { return callees_.row(id); }
    std::span<const FunctionId> callers(FunctionId id) const { return callers_.row(id); }
    std::span<const FunctionId> overrides(FunctionId id) const { return overrides_.row(id); }
    std::span<const FunctionId> overriddenBy(FunctionId id) const {
        return overriddenBy_.row(id);
    }

    std::size_t calleeCount(FunctionId id) const { return callees_.degree(id); }
    std::size_t callerCount(FunctionId id) const { return callers_.degree(id); }

    /// Mangled name, viewing the interned arena (valid as long as the view).
    std::string_view name(FunctionId id) const {
        return {nameArena_.data() + nameOffsets_[id],
                nameOffsets_[id + 1] - nameOffsets_[id]};
    }

    /// Flat copy of desc(id).metrics.numStatements (statementAggregation's
    /// hot read; avoids touching FunctionDesc in the aggregation loops).
    std::uint32_t numStatements(FunctionId id) const { return numStatements_[id]; }

private:
    struct Rows {
        std::vector<std::uint32_t> offsets;  ///< size() + 1 entries.
        std::vector<FunctionId> edges;

        std::span<const FunctionId> row(FunctionId id) const {
            return {edges.data() + offsets[id], edges.data() + offsets[id + 1]};
        }
        std::size_t degree(FunctionId id) const {
            return offsets[id + 1] - offsets[id];
        }
    };

    std::uint64_t generation_ = 0;
    std::size_t nodeCount_ = 0;
    FunctionId entry_ = kInvalidFunction;
    Rows callees_;
    Rows callers_;
    Rows overrides_;
    Rows overriddenBy_;
    std::string nameArena_;
    std::vector<std::uint32_t> nameOffsets_;
    std::vector<std::uint32_t> numStatements_;
};

}  // namespace capi::cg
