#include "cg/reachability.hpp"

#include <algorithm>
#include <deque>

#include "support/thread_pool.hpp"

namespace capi::cg {

using support::DynamicBitset;

namespace {

/// Below this many frontier members a BFS level is expanded serially: the
/// shard bookkeeping (one partial bitset per chunk) costs more than the
/// neighbor scan it parallelizes.
constexpr std::size_t kParallelFrontierThreshold = 256;

std::span<const FunctionId> rowOf(const CsrView& csr, FunctionId id, EdgeDir dir) {
    return dir == EdgeDir::Callees ? csr.callees(id) : csr.callers(id);
}

/// Serial queue BFS over either edge direction (the original algorithm;
/// kept as the small-graph / no-pool path and as the oracle the parallel
/// traversal must match bit for bit).
DynamicBitset serialClosure(const CsrView& csr, const DynamicBitset& seeds,
                            EdgeDir dir) {
    DynamicBitset visited(csr.size());
    std::deque<FunctionId> queue;
    seeds.forEach([&](std::size_t id) {
        visited.set(id);
        queue.push_back(static_cast<FunctionId>(id));
    });
    while (!queue.empty()) {
        FunctionId current = queue.front();
        queue.pop_front();
        for (FunctionId next : rowOf(csr, current, dir)) {
            if (!visited.test(next)) {
                visited.set(next);
                queue.push_back(next);
            }
        }
    }
    return visited;
}

/// One frontier expansion with the frontier sharded over word ranges. Each
/// worker expands the frontier bits inside its own word range into a private
/// partial bitset; partials are OR-merged. Set union is order-independent,
/// so the result is bit-identical to a serial scan.
DynamicBitset expandFrontier(const CsrView& csr, const DynamicBitset& frontier,
                             EdgeDir dir, support::ThreadPool* pool) {
    DynamicBitset next(csr.size());
    const std::size_t words = frontier.wordCount();
    const bool parallel = pool != nullptr && pool->threadCount() > 1 &&
                          frontier.count() >= kParallelFrontierThreshold;
    if (!parallel) {
        frontier.forEach([&](std::size_t id) {
            for (FunctionId n : rowOf(csr, static_cast<FunctionId>(id), dir)) {
                next.set(n);
            }
        });
        return next;
    }

    const std::size_t grainWords =
        std::max<std::size_t>(64, words / (pool->threadCount() * 4));
    const std::size_t chunkCount = (words + grainWords - 1) / grainWords;
    std::vector<DynamicBitset> partials(chunkCount);
    pool->parallelFor(chunkCount, 1, [&](std::size_t clo, std::size_t chi) {
        for (std::size_t chunk = clo; chunk < chi; ++chunk) {
            std::size_t wlo = chunk * grainWords;
            std::size_t whi = std::min(words, wlo + grainWords);
            DynamicBitset partial(csr.size());
            frontier.forEachInWordRange(wlo, whi, [&](std::size_t id) {
                for (FunctionId n :
                     rowOf(csr, static_cast<FunctionId>(id), dir)) {
                    partial.set(n);
                }
            });
            partials[chunk] = std::move(partial);
        }
    });
    for (DynamicBitset& partial : partials) {
        next |= partial;
    }
    return next;
}

/// Level-synchronous frontier BFS built on expandFrontier().
DynamicBitset parallelClosure(const CsrView& csr, const DynamicBitset& seeds,
                              EdgeDir dir, support::ThreadPool* pool) {
    DynamicBitset visited(csr.size());
    seeds.forEach([&](std::size_t id) { visited.set(id); });
    DynamicBitset frontier = visited;
    while (frontier.any()) {
        DynamicBitset next = expandFrontier(csr, frontier, dir, pool);
        next -= visited;
        visited |= next;
        frontier = std::move(next);
    }
    return visited;
}

DynamicBitset closure(const CsrView& csr, const DynamicBitset& seeds,
                      EdgeDir dir, support::ThreadPool* pool) {
    if (pool != nullptr && pool->threadCount() > 1 &&
        csr.size() >= kParallelFrontierThreshold) {
        return parallelClosure(csr, seeds, dir, pool);
    }
    return serialClosure(csr, seeds, dir);
}

}  // namespace

DynamicBitset neighborUnion(const CsrView& csr, const DynamicBitset& seeds,
                            EdgeDir dir, support::ThreadPool* pool) {
    return expandFrontier(csr, seeds, dir, pool);
}

DynamicBitset reachableFrom(const CsrView& csr, const DynamicBitset& roots,
                            support::ThreadPool* pool) {
    return closure(csr, roots, EdgeDir::Callees, pool);
}

DynamicBitset reachesTo(const CsrView& csr, const DynamicBitset& targets,
                        support::ThreadPool* pool) {
    return closure(csr, targets, EdgeDir::Callers, pool);
}

DynamicBitset onCallPath(const CsrView& csr, FunctionId from,
                         const DynamicBitset& targets,
                         support::ThreadPool* pool, DynamicBitset* touched) {
    DynamicBitset result(csr.size());
    if (from == kInvalidFunction) {
        return result;
    }
    DynamicBitset roots(csr.size());
    roots.set(from);
    DynamicBitset forward = reachableFrom(csr, roots, pool);
    DynamicBitset backward = reachesTo(csr, targets, pool);
    if (touched != nullptr) {
        *touched = forward;
        *touched |= backward;
    }
    forward &= backward;
    return forward;
}

DynamicBitset reachableFrom(const CallGraph& graph, const DynamicBitset& roots,
                            support::ThreadPool* pool) {
    return reachableFrom(*CsrView::snapshot(graph), roots, pool);
}

DynamicBitset reachesTo(const CallGraph& graph, const DynamicBitset& targets,
                        support::ThreadPool* pool) {
    return reachesTo(*CsrView::snapshot(graph), targets, pool);
}

DynamicBitset onCallPath(const CallGraph& graph, FunctionId from,
                         const DynamicBitset& targets,
                         support::ThreadPool* pool) {
    return onCallPath(*CsrView::snapshot(graph), from, targets, pool);
}

DynamicBitset reachableFrom(const CallGraph& graph, FunctionId root,
                            support::ThreadPool* pool) {
    DynamicBitset roots(graph.size());
    if (root != kInvalidFunction) {
        roots.set(root);
    }
    return reachableFrom(graph, roots, pool);
}

}  // namespace capi::cg
