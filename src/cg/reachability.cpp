#include "cg/reachability.hpp"

#include <algorithm>
#include <deque>

#include "support/thread_pool.hpp"

namespace capi::cg {

using support::DynamicBitset;

namespace {

/// Below this many frontier members a BFS level is expanded serially: the
/// shard bookkeeping (one partial bitset per chunk) costs more than the
/// neighbor scan it parallelizes.
constexpr std::size_t kParallelFrontierThreshold = 256;

/// Serial queue BFS over either edge direction (the original algorithm;
/// kept as the small-graph / no-pool path and as the oracle the parallel
/// traversal must match bit for bit).
template <typename NeighborFn>
DynamicBitset serialClosure(const CallGraph& graph, const DynamicBitset& seeds,
                            NeighborFn&& neighbors) {
    DynamicBitset visited(graph.size());
    std::deque<FunctionId> queue;
    seeds.forEach([&](std::size_t id) {
        visited.set(id);
        queue.push_back(static_cast<FunctionId>(id));
    });
    while (!queue.empty()) {
        FunctionId current = queue.front();
        queue.pop_front();
        for (FunctionId next : neighbors(current)) {
            if (!visited.test(next)) {
                visited.set(next);
                queue.push_back(next);
            }
        }
    }
    return visited;
}

/// Level-synchronous frontier BFS with the frontier sharded over word
/// ranges. Each worker expands the frontier bits inside its own word range
/// into a private partial bitset; partials are OR-merged into the next
/// frontier. Set union is order-independent, so the result is bit-identical
/// to serialClosure().
template <typename NeighborFn>
DynamicBitset parallelClosure(const CallGraph& graph,
                              const DynamicBitset& seeds,
                              NeighborFn&& neighbors,
                              support::ThreadPool& pool) {
    DynamicBitset visited(graph.size());
    seeds.forEach([&](std::size_t id) { visited.set(id); });
    DynamicBitset frontier = visited;

    const std::size_t words = visited.wordCount();
    const std::size_t grainWords = std::max<std::size_t>(
        64, words / (pool.threadCount() * 4));
    const std::size_t chunkCount = (words + grainWords - 1) / grainWords;

    std::vector<DynamicBitset> partials(chunkCount);

    while (frontier.any()) {
        DynamicBitset next(graph.size());
        if (frontier.count() < kParallelFrontierThreshold || chunkCount <= 1) {
            frontier.forEach([&](std::size_t id) {
                for (FunctionId n : neighbors(static_cast<FunctionId>(id))) {
                    next.set(n);
                }
            });
        } else {
            pool.parallelFor(chunkCount, 1, [&](std::size_t clo, std::size_t chi) {
                for (std::size_t chunk = clo; chunk < chi; ++chunk) {
                    std::size_t wlo = chunk * grainWords;
                    std::size_t whi = std::min(words, wlo + grainWords);
                    DynamicBitset partial(graph.size());
                    frontier.forEachInWordRange(wlo, whi, [&](std::size_t id) {
                        for (FunctionId n : neighbors(static_cast<FunctionId>(id))) {
                            partial.set(n);
                        }
                    });
                    partials[chunk] = std::move(partial);
                }
            });
            for (DynamicBitset& partial : partials) {
                next |= partial;
            }
        }
        next -= visited;
        visited |= next;
        frontier = std::move(next);
    }
    return visited;
}

template <typename NeighborFn>
DynamicBitset closure(const CallGraph& graph, const DynamicBitset& seeds,
                      NeighborFn&& neighbors, support::ThreadPool* pool) {
    if (pool != nullptr && pool->threadCount() > 1 &&
        graph.size() >= kParallelFrontierThreshold) {
        return parallelClosure(graph, seeds, neighbors, *pool);
    }
    return serialClosure(graph, seeds, neighbors);
}

}  // namespace

DynamicBitset reachableFrom(const CallGraph& graph, const DynamicBitset& roots,
                            support::ThreadPool* pool) {
    return closure(graph, roots,
                   [&](FunctionId id) -> const std::vector<FunctionId>& {
                       return graph.callees(id);
                   },
                   pool);
}

DynamicBitset reachesTo(const CallGraph& graph, const DynamicBitset& targets,
                        support::ThreadPool* pool) {
    return closure(graph, targets,
                   [&](FunctionId id) -> const std::vector<FunctionId>& {
                       return graph.callers(id);
                   },
                   pool);
}

DynamicBitset onCallPath(const CallGraph& graph, FunctionId from,
                         const DynamicBitset& targets,
                         support::ThreadPool* pool) {
    DynamicBitset result(graph.size());
    if (from == kInvalidFunction) {
        return result;
    }
    DynamicBitset forward = reachableFrom(graph, from, pool);
    DynamicBitset backward = reachesTo(graph, targets, pool);
    forward &= backward;
    return forward;
}

DynamicBitset reachableFrom(const CallGraph& graph, FunctionId root,
                            support::ThreadPool* pool) {
    DynamicBitset roots(graph.size());
    if (root != kInvalidFunction) {
        roots.set(root);
    }
    return reachableFrom(graph, roots, pool);
}

}  // namespace capi::cg
