#include "cg/reachability.hpp"

#include <deque>

namespace capi::cg {

using support::DynamicBitset;

namespace {

/// Generic BFS over either edge direction.
template <typename NeighborFn>
DynamicBitset closure(const CallGraph& graph, const DynamicBitset& seeds,
                      NeighborFn&& neighbors) {
    DynamicBitset visited(graph.size());
    std::deque<FunctionId> queue;
    seeds.forEach([&](std::size_t id) {
        visited.set(id);
        queue.push_back(static_cast<FunctionId>(id));
    });
    while (!queue.empty()) {
        FunctionId current = queue.front();
        queue.pop_front();
        for (FunctionId next : neighbors(current)) {
            if (!visited.test(next)) {
                visited.set(next);
                queue.push_back(next);
            }
        }
    }
    return visited;
}

}  // namespace

DynamicBitset reachableFrom(const CallGraph& graph, const DynamicBitset& roots) {
    return closure(graph, roots,
                   [&](FunctionId id) -> const std::vector<FunctionId>& {
                       return graph.callees(id);
                   });
}

DynamicBitset reachesTo(const CallGraph& graph, const DynamicBitset& targets) {
    return closure(graph, targets,
                   [&](FunctionId id) -> const std::vector<FunctionId>& {
                       return graph.callers(id);
                   });
}

DynamicBitset onCallPath(const CallGraph& graph, FunctionId from,
                         const DynamicBitset& targets) {
    DynamicBitset result(graph.size());
    if (from == kInvalidFunction) {
        return result;
    }
    DynamicBitset forward = reachableFrom(graph, from);
    DynamicBitset backward = reachesTo(graph, targets);
    forward &= backward;
    return forward;
}

DynamicBitset reachableFrom(const CallGraph& graph, FunctionId root) {
    DynamicBitset roots(graph.size());
    if (root != kInvalidFunction) {
        roots.set(root);
    }
    return reachableFrom(graph, roots);
}

}  // namespace capi::cg
