#include "cg/call_graph.hpp"

#include <algorithm>
#include <atomic>

#include "support/error.hpp"

namespace capi::cg {

void CallGraph::throwRenameError(const std::string& name) {
    throw support::Error("mutateDesc must not rename '" + name +
                         "': the name is the lookup index key");
}

std::uint64_t CallGraph::nextGenerationStamp() {
    // Process-global so a stamp never repeats across graph instances: a
    // cache entry stored for one graph can never be served for another that
    // happens to have seen the same number of mutations.
    static std::atomic<std::uint64_t> counter{0};
    return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

bool insertSorted(std::vector<FunctionId>& vec, FunctionId value) {
    auto it = std::lower_bound(vec.begin(), vec.end(), value);
    if (it != vec.end() && *it == value) {
        return false;
    }
    vec.insert(it, value);
    return true;
}

bool containsSorted(const std::vector<FunctionId>& vec, FunctionId value) {
    return std::binary_search(vec.begin(), vec.end(), value);
}

FunctionId CallGraph::addFunction(const FunctionDesc& desc) {
    generation_ = nextGenerationStamp();
    auto it = byName_.find(desc.name);
    if (it != byName_.end()) {
        Node& existing = nodes_[it->second];
        // A definition sighting supplies the authoritative metadata; merge so
        // declaration-only TUs do not erase what the defining TU recorded.
        if (desc.flags.hasBody && !existing.desc.flags.hasBody) {
            FunctionDesc merged = desc;
            existing.desc = merged;
        } else if (desc.flags.hasBody && existing.desc.flags.hasBody) {
            // Two definitions (inline functions in headers): keep first, but
            // accumulate flags that any sighting may set.
            existing.desc.flags.inlineSpecified |= desc.flags.inlineSpecified;
            existing.desc.flags.addressTaken |= desc.flags.addressTaken;
        } else {
            existing.desc.flags.addressTaken |= desc.flags.addressTaken;
        }
        return it->second;
    }
    FunctionId id = static_cast<FunctionId>(nodes_.size());
    nodes_.push_back(Node{desc, {}, {}, {}, {}});
    byName_.emplace(desc.name, id);
    return id;
}

void CallGraph::addCallEdge(FunctionId caller, FunctionId callee) {
    if (insertSorted(nodes_[caller].callees, callee)) {
        insertSorted(nodes_[callee].callers, caller);
        generation_ = nextGenerationStamp();
    }
}

void CallGraph::addOverride(FunctionId base, FunctionId derived) {
    if (insertSorted(nodes_[derived].overrides, base)) {
        generation_ = nextGenerationStamp();
    }
    insertSorted(nodes_[base].overriddenBy, derived);
}

bool CallGraph::hasEdge(FunctionId caller, FunctionId callee) const {
    return containsSorted(nodes_[caller].callees, callee);
}

FunctionId CallGraph::lookup(std::string_view name) const {
    auto it = byName_.find(std::string(name));
    return it == byName_.end() ? kInvalidFunction : it->second;
}

FunctionId CallGraph::entryPoint() const {
    if (entry_.has_value()) {
        return *entry_;
    }
    return lookup("main");
}

std::size_t CallGraph::edgeCount() const {
    std::size_t count = 0;
    for (const Node& n : nodes_) {
        count += n.callees.size();
    }
    return count;
}

std::vector<FunctionId> CallGraph::allIds() const {
    std::vector<FunctionId> ids(nodes_.size());
    for (std::size_t i = 0; i < ids.size(); ++i) {
        ids[i] = static_cast<FunctionId>(i);
    }
    return ids;
}

}  // namespace capi::cg
