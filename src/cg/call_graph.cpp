#include "cg/call_graph.hpp"

#include <algorithm>
#include <atomic>

#include "cg/csr_view.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/error.hpp"
#include "support/timer.hpp"

namespace capi::cg {

namespace {

/// Journal bound: above this the oldest half is trimmed and the floor rises,
/// turning very old deltaSince() requests into full-invalidation answers.
/// Sized so a dlopen of a mid-sized DSO (thousands of nodes/edges) still
/// fits between two selection runs.
constexpr std::size_t kJournalCap = 1 << 16;

}  // namespace

void CallGraph::throwRenameError(const std::string& name) {
    throw support::Error("mutateDesc must not rename '" + name +
                         "': the name is the lookup index key");
}

void CallGraph::throwDeadNodeError(FunctionId id) {
    throw support::Error("operation on removed function id " +
                         std::to_string(id));
}

std::uint64_t CallGraph::nextGenerationStamp() {
    // Process-global so a stamp never repeats across graph instances: a
    // cache entry stored for one graph can never be served for another that
    // happens to have seen the same number of mutations.
    static std::atomic<std::uint64_t> counter{0};
    return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

std::uint64_t CallGraph::nextGraphId() {
    static std::atomic<std::uint64_t> counter{0};
    return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

CallGraph::CallGraph() = default;

CallGraph::~CallGraph() {
    releaseSnapshots();
}

void CallGraph::releaseSnapshots() noexcept {
    if (graphId_ != 0) {
        CsrView::releaseGraph(graphId_);
    }
}

CallGraph::CallGraph(const CallGraph& other)
    : nodes_(other.nodes_),
      byName_(other.byName_),
      entry_(other.entry_),
      aliveCount_(other.aliveCount_),
      generation_(other.generation_),
      graphId_(nextGraphId()),
      journal_(),
      // The copy shares the original's content stamp but starts a fresh
      // lineage: deltas are answerable from the copied revision onward.
      journalFloor_(other.generation_),
      drainMark_(other.generation_) {}

CallGraph& CallGraph::operator=(const CallGraph& other) {
    if (this == &other) {
        return *this;
    }
    releaseSnapshots();
    nodes_ = other.nodes_;
    byName_ = other.byName_;
    entry_ = other.entry_;
    aliveCount_ = other.aliveCount_;
    generation_ = other.generation_;
    graphId_ = nextGraphId();
    journal_.clear();
    journalFloor_ = other.generation_;
    drainMark_ = other.generation_;
    return *this;
}

CallGraph::CallGraph(CallGraph&& other) noexcept
    : nodes_(std::move(other.nodes_)),
      byName_(std::move(other.byName_)),
      entry_(other.entry_),
      aliveCount_(other.aliveCount_),
      generation_(other.generation_),
      graphId_(other.graphId_),
      journal_(std::move(other.journal_)),
      journalFloor_(other.journalFloor_),
      drainMark_(other.drainMark_) {
    other.graphId_ = 0;  // The husk no longer owns registered snapshots.
}

CallGraph& CallGraph::operator=(CallGraph&& other) noexcept {
    if (this == &other) {
        return *this;
    }
    releaseSnapshots();
    nodes_ = std::move(other.nodes_);
    byName_ = std::move(other.byName_);
    entry_ = other.entry_;
    aliveCount_ = other.aliveCount_;
    generation_ = other.generation_;
    graphId_ = other.graphId_;
    journal_ = std::move(other.journal_);
    journalFloor_ = other.journalFloor_;
    drainMark_ = other.drainMark_;
    other.graphId_ = 0;
    return *this;
}

void CallGraph::journalAppend(DeltaKind kind, FunctionId a, FunctionId b) {
    if (journal_.size() >= kJournalCap) {
        // Trim the oldest half; the floor rises to the newest trimmed stamp,
        // so deltaSince() for anything at or before it reports "history
        // gone" instead of a partial delta.
        const std::size_t keep = kJournalCap / 2;
        const std::size_t drop = journal_.size() - keep;
        journalFloor_ = journal_[drop - 1].generation;
        journal_.erase(journal_.begin(),
                       journal_.begin() + static_cast<std::ptrdiff_t>(drop));
    }
    journal_.push_back(DeltaRecord{generation_, a, b, kind});
}

std::optional<GraphDelta> CallGraph::deltaSince(std::uint64_t generation) const {
    if (generation < journalFloor_ || generation > generation_) {
        return std::nullopt;
    }
    auto it = std::upper_bound(
        journal_.begin(), journal_.end(), generation,
        [](std::uint64_t gen, const DeltaRecord& rec) { return gen < rec.generation; });
    // Stamps are process-global, so a stamp issued to a DIFFERENT graph can
    // fall numerically inside [journalFloor_, generation_]. Answering for it
    // would hand a caller holding another graph's revision a bogus partial
    // delta (and let a shared SelectorCache revive that graph's entries
    // here). Stamps are process-unique, so "this graph issued `generation`"
    // is exact: it is the current stamp, the floor stamp, or some journaled
    // record's stamp.
    const bool issuedHere =
        generation == generation_ || generation == journalFloor_ ||
        (it != journal_.begin() && std::prev(it)->generation == generation);
    if (!issuedHere) {
        return std::nullopt;
    }
    GraphDelta delta;
    delta.fromGeneration = generation;
    delta.toGeneration = generation_;
    for (; it != journal_.end(); ++it) {
        switch (it->kind) {
            case DeltaKind::NodeAdd: delta.addedNodes.push_back(it->a); break;
            case DeltaKind::NodeRemove: delta.removedNodes.push_back(it->a); break;
            case DeltaKind::CallEdgeAdd:
                delta.addedCallEdges.emplace_back(it->a, it->b);
                break;
            case DeltaKind::CallEdgeRemove:
                delta.removedCallEdges.emplace_back(it->a, it->b);
                break;
            case DeltaKind::OverrideAdd:
                delta.addedOverrides.emplace_back(it->a, it->b);
                break;
            case DeltaKind::OverrideRemove:
                delta.removedOverrides.emplace_back(it->a, it->b);
                break;
            case DeltaKind::MetricTouch: delta.metricTouches.push_back(it->a); break;
            case DeltaKind::DescTouch: delta.descTouches.push_back(it->a); break;
            case DeltaKind::EntryChange: delta.entryChanged = true; break;
        }
    }
    return delta;
}

GraphDelta CallGraph::drainDelta() {
    std::optional<GraphDelta> delta = deltaSince(drainMark_);
    drainMark_ = generation_;
    if (delta.has_value()) {
        return std::move(*delta);
    }
    // History trimmed past the drain mark: report "everything changed" the
    // only sound way available — every live node as added, entry changed.
    // Tombstones stay out: addedNodes never names dead ids, so a consumer
    // mirroring the drain cannot resurrect dlclosed functions.
    GraphDelta full;
    full.fromGeneration = journalFloor_;
    full.toGeneration = generation_;
    full.entryChanged = true;
    for (FunctionId id = 0; id < nodes_.size(); ++id) {
        if (nodes_[id].alive) {
            full.addedNodes.push_back(id);
        }
    }
    return full;
}

bool insertSorted(std::vector<FunctionId>& vec, FunctionId value) {
    auto it = std::lower_bound(vec.begin(), vec.end(), value);
    if (it != vec.end() && *it == value) {
        return false;
    }
    vec.insert(it, value);
    return true;
}

bool eraseSorted(std::vector<FunctionId>& vec, FunctionId value) {
    auto it = std::lower_bound(vec.begin(), vec.end(), value);
    if (it == vec.end() || *it != value) {
        return false;
    }
    vec.erase(it);
    return true;
}

bool containsSorted(const std::vector<FunctionId>& vec, FunctionId value) {
    return std::binary_search(vec.begin(), vec.end(), value);
}

FunctionId CallGraph::addFunction(const FunctionDesc& desc) {
    generation_ = nextGenerationStamp();
    auto it = byName_.find(desc.name);
    if (it != byName_.end()) {
        Node& existing = nodes_[it->second];
        // A definition sighting supplies the authoritative metadata; merge so
        // declaration-only TUs do not erase what the defining TU recorded.
        if (desc.flags.hasBody && !existing.desc.flags.hasBody) {
            FunctionDesc merged = desc;
            existing.desc = merged;
        } else if (desc.flags.hasBody && existing.desc.flags.hasBody) {
            // Two definitions (inline functions in headers): keep first, but
            // accumulate flags that any sighting may set.
            existing.desc.flags.inlineSpecified |= desc.flags.inlineSpecified;
            existing.desc.flags.addressTaken |= desc.flags.addressTaken;
        } else {
            existing.desc.flags.addressTaken |= desc.flags.addressTaken;
        }
        // Any merge may rewrite flags/metrics; the name cannot change.
        journalAppend(DeltaKind::DescTouch, it->second);
        return it->second;
    }
    FunctionId id = static_cast<FunctionId>(nodes_.size());
    nodes_.push_back(Node{desc, {}, {}, {}, {}, true});
    byName_.emplace(desc.name, id);
    ++aliveCount_;
    journalAppend(DeltaKind::NodeAdd, id);
    if (!entry_.has_value() && desc.name == "main") {
        // No explicit entry: entryPoint() falls back to lookup("main"), so
        // this add silently changed it. Journal that, or cached traversal
        // results anchored on the old (absent) entry would survive.
        journalAppend(DeltaKind::EntryChange, id);
    }
    return id;
}

void CallGraph::addCallEdge(FunctionId caller, FunctionId callee) {
    requireAlive(caller);
    requireAlive(callee);
    if (insertSorted(nodes_[caller].callees, callee)) {
        insertSorted(nodes_[callee].callers, caller);
        generation_ = nextGenerationStamp();
        journalAppend(DeltaKind::CallEdgeAdd, caller, callee);
    }
}

void CallGraph::removeCallEdge(FunctionId caller, FunctionId callee) {
    if (eraseSorted(nodes_[caller].callees, callee)) {
        eraseSorted(nodes_[callee].callers, caller);
        generation_ = nextGenerationStamp();
        journalAppend(DeltaKind::CallEdgeRemove, caller, callee);
    }
}

void CallGraph::addOverride(FunctionId base, FunctionId derived) {
    requireAlive(base);
    requireAlive(derived);
    if (insertSorted(nodes_[derived].overrides, base)) {
        generation_ = nextGenerationStamp();
        journalAppend(DeltaKind::OverrideAdd, base, derived);
    }
    insertSorted(nodes_[base].overriddenBy, derived);
}

void CallGraph::removeFunction(FunctionId id) {
    Node& node = nodes_[id];
    if (!node.alive) {
        return;
    }
    // One stamp covers the whole removal; every journaled record shares it.
    generation_ = nextGenerationStamp();
    for (FunctionId callee : node.callees) {
        eraseSorted(nodes_[callee].callers, id);
        journalAppend(DeltaKind::CallEdgeRemove, id, callee);
    }
    for (FunctionId caller : node.callers) {
        eraseSorted(nodes_[caller].callees, id);
        journalAppend(DeltaKind::CallEdgeRemove, caller, id);
    }
    for (FunctionId base : node.overrides) {
        eraseSorted(nodes_[base].overriddenBy, id);
        journalAppend(DeltaKind::OverrideRemove, base, id);
    }
    for (FunctionId derived : node.overriddenBy) {
        eraseSorted(nodes_[derived].overrides, id);
        journalAppend(DeltaKind::OverrideRemove, id, derived);
    }
    node.callees.clear();
    node.callers.clear();
    node.overrides.clear();
    node.overriddenBy.clear();
    const bool wasImplicitEntry = !entry_.has_value() && node.desc.name == "main";
    byName_.erase(node.desc.name);
    node.desc = FunctionDesc{};
    node.alive = false;
    --aliveCount_;
    if ((entry_.has_value() && *entry_ == id) || wasImplicitEntry) {
        // Explicit entry gone, or the lookup("main") fallback just lost its
        // target — either way entryPoint() changed.
        entry_.reset();
        journalAppend(DeltaKind::EntryChange, id);
    }
    journalAppend(DeltaKind::NodeRemove, id);
}

void CallGraph::removeFunctions(const std::vector<FunctionId>& ids) {
    for (FunctionId id : ids) {
        removeFunction(id);
    }
}

CallGraph::CompactionResult CallGraph::compact() {
    CompactionResult result;
    result.remap.resize(nodes_.size(), kInvalidFunction);
    if (aliveCount_ == nodes_.size()) {
        // Nothing to reclaim: identity remap, content untouched, stamp kept
        // (downstream caches stay valid).
        for (FunctionId id = 0; id < nodes_.size(); ++id) {
            result.remap[id] = id;
        }
        return result;
    }

    const std::uint64_t beginNs = support::probeNowNs();
    FunctionId next = 0;
    for (FunctionId id = 0; id < nodes_.size(); ++id) {
        if (nodes_[id].alive) {
            result.remap[id] = next++;
        }
    }
    result.removed = nodes_.size() - aliveCount_;

    std::vector<Node> compacted;
    compacted.reserve(aliveCount_);
    for (FunctionId id = 0; id < nodes_.size(); ++id) {
        if (!nodes_[id].alive) {
            continue;
        }
        Node node = std::move(nodes_[id]);
        // Tombstones have no incident edges (removeFunction cleaned both
        // directions), so every endpoint here survives. The remap is
        // monotonic over alive ids, so sorted rows stay sorted.
        for (FunctionId& callee : node.callees) {
            callee = result.remap[callee];
        }
        for (FunctionId& caller : node.callers) {
            caller = result.remap[caller];
        }
        for (FunctionId& base : node.overrides) {
            base = result.remap[base];
        }
        for (FunctionId& derived : node.overriddenBy) {
            derived = result.remap[derived];
        }
        compacted.push_back(std::move(node));
    }
    nodes_ = std::move(compacted);
    for (auto& [name, id] : byName_) {
        id = result.remap[id];
    }
    if (entry_.has_value()) {
        // An explicit entry pointing at a tombstone cannot happen
        // (removeFunction resets entry_), so this always maps to a live id.
        entry_ = result.remap[*entry_];
    }

    // Renumbering invalidates every id-keyed consumer: registered CsrView
    // snapshots hold OLD ids and must never serve as patch predecessors for
    // the new numbering, and no journal suffix can express "all ids moved".
    CsrView::releaseGraph(graphId_);
    generation_ = nextGenerationStamp();
    journal_.clear();
    journalFloor_ = generation_;
    // drainMark_ keeps its pre-compaction stamp, now below the floor: the
    // next drainDelta() answers the full "everything changed" report instead
    // of an empty delta — a drain consumer's mirror still holds OLD ids.

    obs::MetricsRegistry& metrics = obs::MetricsRegistry::global();
    static obs::Counter& compactions =
        metrics.counter("capi_cg_compactions_total");
    static obs::Counter& reclaimed =
        metrics.counter("capi_cg_tombstones_reclaimed_total");
    compactions.add(1);
    reclaimed.add(result.removed);
    obs::TraceRecorder& recorder = obs::TraceRecorder::global();
    if (recorder.enabled()) {
        static const std::uint32_t kCompactSpan =
            obs::TraceRecorder::global().internName("cg.compact");
        recorder.recordComplete(kCompactSpan, obs::SpanCategory::Compaction,
                                beginNs, support::probeNowNs() - beginNs,
                                result.removed);
    }
    return result;
}

bool CallGraph::hasEdge(FunctionId caller, FunctionId callee) const {
    return containsSorted(nodes_[caller].callees, callee);
}

FunctionId CallGraph::lookup(std::string_view name) const {
    auto it = byName_.find(std::string(name));
    return it == byName_.end() ? kInvalidFunction : it->second;
}

FunctionId CallGraph::entryPoint() const {
    if (entry_.has_value()) {
        return *entry_;
    }
    return lookup("main");
}

std::size_t CallGraph::edgeCount() const {
    std::size_t count = 0;
    for (const Node& n : nodes_) {
        count += n.callees.size();
    }
    return count;
}

std::vector<FunctionId> CallGraph::allIds() const {
    std::vector<FunctionId> ids(nodes_.size());
    for (std::size_t i = 0; i < ids.size(); ++i) {
        ids[i] = static_cast<FunctionId>(i);
    }
    return ids;
}

}  // namespace capi::cg
