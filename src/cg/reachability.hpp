// Reachability analyses over the whole-program call graph.
//
// These back the call-path selectors: `onCallPathTo(S)` is the set of
// functions f such that f is reachable from the entry point AND some member
// of S is reachable from f — i.e. f lies on at least one call path from main
// to S. Implemented as forward/backward BFS on word-packed bitsets.
//
// All traversals run against the flat cg::CsrView snapshot rather than the
// pointer-chasing CallGraph::Node vectors; the CallGraph overloads snapshot
// (or reuse the cached snapshot for) the graph's current generation and
// delegate.
//
// Every analysis takes an optional thread pool. When given one, the BFS runs
// level-synchronously with the current frontier sharded over 64-bit word
// ranges; per-shard partial frontiers are OR-merged, so the visited set is
// bit-identical to the serial traversal.
#pragma once

#include "cg/call_graph.hpp"
#include "cg/csr_view.hpp"
#include "support/bitset.hpp"

namespace capi::support {
class ThreadPool;
}

namespace capi::cg {

/// Which edge relation a traversal follows.
enum class EdgeDir { Callees, Callers };

/// One-hop neighbor expansion: the union of `dir` rows over every member of
/// `seeds` (seeds themselves NOT included unless they are neighbors). The
/// building block of the callers()/callees() k-hop selectors; sharded over
/// frontier word ranges when a pool is given, with bit-identical results
/// (set union is order-independent).
support::DynamicBitset neighborUnion(const CsrView& csr,
                                     const support::DynamicBitset& seeds,
                                     EdgeDir dir,
                                     support::ThreadPool* pool = nullptr);

/// Forward closure: everything reachable from `roots` via callee edges
/// (roots included).
support::DynamicBitset reachableFrom(const CsrView& csr,
                                     const support::DynamicBitset& roots,
                                     support::ThreadPool* pool = nullptr);
support::DynamicBitset reachableFrom(const CallGraph& graph,
                                     const support::DynamicBitset& roots,
                                     support::ThreadPool* pool = nullptr);

/// Backward closure: everything that can reach `targets` via callee edges
/// (targets included).
support::DynamicBitset reachesTo(const CsrView& csr,
                                 const support::DynamicBitset& targets,
                                 support::ThreadPool* pool = nullptr);
support::DynamicBitset reachesTo(const CallGraph& graph,
                                 const support::DynamicBitset& targets,
                                 support::ThreadPool* pool = nullptr);

/// Functions lying on a call path from `from` (usually main) to any target.
/// When `touched` is non-null it receives the union of BOTH traversals'
/// visited sets (forward from `from`, backward from `targets`) — the read
/// footprint incremental selection records for this analysis, a superset of
/// the returned intersection.
support::DynamicBitset onCallPath(const CsrView& csr, FunctionId from,
                                  const support::DynamicBitset& targets,
                                  support::ThreadPool* pool = nullptr,
                                  support::DynamicBitset* touched = nullptr);
support::DynamicBitset onCallPath(const CallGraph& graph, FunctionId from,
                                  const support::DynamicBitset& targets,
                                  support::ThreadPool* pool = nullptr);

/// Single-root convenience.
support::DynamicBitset reachableFrom(const CallGraph& graph, FunctionId root,
                                     support::ThreadPool* pool = nullptr);

}  // namespace capi::cg
