#include "cg/source_model.hpp"

namespace capi::cg {

std::size_t SourceModel::definitionCount() const {
    std::size_t count = 0;
    for (const TranslationUnit& tu : units) {
        for (const SourceFunction& fn : tu.functions) {
            if (fn.desc.flags.hasBody) {
                ++count;
            }
        }
    }
    return count;
}

}  // namespace capi::cg
