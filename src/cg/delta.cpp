#include "cg/delta.hpp"

namespace capi::cg {

support::DynamicBitset GraphDelta::dirtyNodes(std::size_t universe) const {
    support::DynamicBitset dirty(universe);
    forEachChange([&](DeltaKind, FunctionId a, FunctionId b) {
        // kInvalidFunction (and ids past the caller's universe) fall out of
        // the bound check.
        if (a < universe) {
            dirty.set(a);
        }
        if (b < universe) {
            dirty.set(b);
        }
    });
    return dirty;
}

}  // namespace capi::cg
