// Profile-based call-graph validation.
//
// MetaCG ships a utility that validates the statically constructed call graph
// against a Score-P profile and inserts edges the static analysis missed
// (unresolvable function pointers, dlopen'd plugins, ...). This reproduces
// that utility: observed caller/callee pairs from a measured run are checked
// against the graph, missing edges are inserted, and unknown functions are
// added as body-less nodes so the graph stays closed.
#pragma once

#include <string>
#include <vector>

#include "cg/call_graph.hpp"

namespace capi::cg {

/// One dynamically observed call relation (e.g. from a call-path profile).
struct ObservedEdge {
    std::string caller;
    std::string callee;
};

struct ValidationResult {
    std::size_t observedEdges = 0;
    std::size_t alreadyPresent = 0;
    std::size_t edgesInserted = 0;
    std::size_t nodesInserted = 0;  ///< Functions the static graph did not know.
    std::vector<ObservedEdge> inserted;
};

/// Validates `graph` against observed edges, inserting anything missing.
ValidationResult validateAgainstProfile(CallGraph& graph,
                                        const std::vector<ObservedEdge>& observed);

}  // namespace capi::cg
