// Typed call-graph mutation journal: the substrate of incremental selection.
//
// Every CallGraph mutation appends one record tagged with the generation
// stamp the mutation produced. Downstream layers ask the graph for the
// aggregated delta between two stamps (CallGraph::deltaSince) and recompute
// only what the delta touches: CsrView patches the affected CSR rows instead
// of rebuilding, and SelectorCache keeps cached stage results whose recorded
// read footprint is disjoint from the delta's dirty set. The journal is
// bounded; when history has been trimmed past the requested stamp,
// deltaSince returns nullopt and consumers fall back to the full-rebuild /
// full-invalidation path, so the journal is purely an optimization channel —
// never a correctness dependency.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "cg/types.hpp"
#include "support/bitset.hpp"

namespace capi::cg {

/// What one journal record describes. Edge records carry both endpoints;
/// node records carry the node in `a`.
enum class DeltaKind : std::uint8_t {
    NodeAdd,
    NodeRemove,
    CallEdgeAdd,      ///< a = caller, b = callee.
    CallEdgeRemove,
    OverrideAdd,      ///< a = base, b = derived.
    OverrideRemove,
    MetricTouch,      ///< CallGraph::touchMetrics — metrics only, name/flags
                      ///< untouched.
    DescTouch,        ///< CallGraph::mutateDesc / merge sighting — any desc
                      ///< field except the name may have changed.
    EntryChange,      ///< setEntryPoint.
};

struct DeltaRecord {
    std::uint64_t generation = 0;  ///< Stamp the mutation produced.
    FunctionId a = kInvalidFunction;
    FunctionId b = kInvalidFunction;
    DeltaKind kind = DeltaKind::DescTouch;
};

/// Aggregated journal slice between two generation stamps, grouped by
/// mutation type so each consumer reads only the relations it cares about.
/// Records are NOT cancelled against each other (an edge added and removed
/// within the slice appears in both lists): consumers re-read the affected
/// rows from the live graph, so over-reporting is harmless and keeps
/// aggregation O(records).
struct GraphDelta {
    std::uint64_t fromGeneration = 0;
    std::uint64_t toGeneration = 0;

    std::vector<FunctionId> addedNodes;
    std::vector<FunctionId> removedNodes;
    std::vector<std::pair<FunctionId, FunctionId>> addedCallEdges;
    std::vector<std::pair<FunctionId, FunctionId>> removedCallEdges;
    std::vector<std::pair<FunctionId, FunctionId>> addedOverrides;   ///< (base, derived)
    std::vector<std::pair<FunctionId, FunctionId>> removedOverrides;
    std::vector<FunctionId> metricTouches;
    std::vector<FunctionId> descTouches;
    bool entryChanged = false;

    bool empty() const {
        return addedNodes.empty() && removedNodes.empty() &&
               addedCallEdges.empty() && removedCallEdges.empty() &&
               addedOverrides.empty() && removedOverrides.empty() &&
               metricTouches.empty() && descTouches.empty() && !entryChanged;
    }

    /// Visits every aggregated change as fn(kind, a, b) — THE enumeration
    /// point every dirty-set derivation builds on (dirtyNodes here,
    /// CsrView::tryPatch's per-relation rows, SelectorCache's per-kind
    /// sets), so a new DeltaKind is routed by extending switches the
    /// compiler checks rather than three hand-rolled field loops. Edge kinds
    /// carry both endpoints; node/touch/entry kinds carry the node in `a`
    /// and kInvalidFunction in `b`.
    template <typename Fn>
    void forEachChange(Fn&& fn) const {
        for (FunctionId id : addedNodes) fn(DeltaKind::NodeAdd, id, kInvalidFunction);
        for (FunctionId id : removedNodes) fn(DeltaKind::NodeRemove, id, kInvalidFunction);
        for (const auto& [a, b] : addedCallEdges) fn(DeltaKind::CallEdgeAdd, a, b);
        for (const auto& [a, b] : removedCallEdges) fn(DeltaKind::CallEdgeRemove, a, b);
        for (const auto& [a, b] : addedOverrides) fn(DeltaKind::OverrideAdd, a, b);
        for (const auto& [a, b] : removedOverrides) fn(DeltaKind::OverrideRemove, a, b);
        for (FunctionId id : metricTouches) fn(DeltaKind::MetricTouch, id, kInvalidFunction);
        for (FunctionId id : descTouches) fn(DeltaKind::DescTouch, id, kInvalidFunction);
        if (entryChanged) {
            fn(DeltaKind::EntryChange, kInvalidFunction, kInvalidFunction);
        }
    }

    /// Every node id any record names (edge endpoints included), as a bitset
    /// over `universe` (ids >= universe are ignored; the caller passes the
    /// post-delta graph size, which covers every journaled id). Its count is
    /// the churn measure the CSR patch path compares against its
    /// full-rebuild threshold.
    support::DynamicBitset dirtyNodes(std::size_t universe) const;
};

}  // namespace capi::cg
