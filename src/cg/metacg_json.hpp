// MetaCG-compatible JSON serialization of whole-program call graphs.
//
// The on-disk layout follows the MetaCG v2 file format: a `_MetaCG` header
// with version info and a `_CG` object mapping function names to their edges,
// override relations and `meta` blob. Static metrics live under
// `meta.capiMetrics`, where the real pipeline stores tool-specific metadata.
#pragma once

#include <string>

#include "cg/call_graph.hpp"
#include "support/json.hpp"

namespace capi::cg {

/// Serializes a call graph into MetaCG v2 JSON.
support::Json toMetaCgJson(const CallGraph& graph);

/// Parses MetaCG v2 JSON back into a call graph.
/// Throws support::Error on structural problems.
CallGraph fromMetaCgJson(const support::Json& doc);

/// File helpers.
void writeMetaCgFile(const CallGraph& graph, const std::string& path);
CallGraph readMetaCgFile(const std::string& path);

}  // namespace capi::cg
