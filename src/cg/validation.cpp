#include "cg/validation.hpp"

namespace capi::cg {

ValidationResult validateAgainstProfile(CallGraph& graph,
                                        const std::vector<ObservedEdge>& observed) {
    ValidationResult result;
    result.observedEdges = observed.size();

    auto ensureNode = [&](const std::string& name) {
        FunctionId id = graph.lookup(name);
        if (id == kInvalidFunction) {
            FunctionDesc desc;
            desc.name = name;
            desc.prettyName = name;
            id = graph.addFunction(desc);
            ++result.nodesInserted;
        }
        return id;
    };

    for (const ObservedEdge& edge : observed) {
        FunctionId caller = ensureNode(edge.caller);
        FunctionId callee = ensureNode(edge.callee);
        if (graph.hasEdge(caller, callee)) {
            ++result.alreadyPresent;
        } else {
            graph.addCallEdge(caller, callee);
            ++result.edgesInserted;
            result.inserted.push_back(edge);
        }
    }
    return result;
}

}  // namespace capi::cg
