// Source-level program model consumed by the MetaCG-style builder.
//
// This plays the role of the Clang AST in the real MetaCG pipeline: per
// translation unit we know which functions are defined, their static metrics,
// and the call expressions in each body (direct, virtual through a base
// method, or through a function pointer). The synthetic application
// generators in src/apps produce these models.
#pragma once

#include <string>
#include <vector>

#include "cg/types.hpp"

namespace capi::cg {

/// One call expression inside a function body.
struct CallSite {
    enum class Kind {
        Direct,          ///< Plain call; `target` is the callee name.
        Virtual,         ///< Call through a base method; `target` is the base.
        FunctionPointer, ///< Indirect call; `signature` identifies candidates.
    };

    Kind kind = Kind::Direct;
    std::string target;     ///< Callee (Direct) or base method (Virtual).
    std::string signature;  ///< Signature group for FunctionPointer sites.
};

/// A function as seen in one translation unit.
struct SourceFunction {
    FunctionDesc desc;                 ///< flags.hasBody=true for definitions.
    std::vector<CallSite> callSites;   ///< Only meaningful for definitions.
};

/// One translation unit (one .cpp after preprocessing).
struct TranslationUnit {
    std::string name;                       ///< e.g. "lulesh.cc" or "fvMatrix.C".
    std::vector<SourceFunction> functions;
};

/// Class-hierarchy override fact: `derived` overrides `base`.
struct OverrideRelation {
    std::string base;
    std::string derived;
};

/// Whole program as a set of TUs plus the global class hierarchy.
struct SourceModel {
    std::vector<TranslationUnit> units;
    std::vector<OverrideRelation> overrides;

    /// Total number of function definitions across all TUs.
    std::size_t definitionCount() const;
};

}  // namespace capi::cg
