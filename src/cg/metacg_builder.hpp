// MetaCG-style whole-program call-graph construction.
//
// Mirrors the two-step workflow from the paper (Fig. 2, steps 3-4): a local
// call graph is built for every translation unit, then the local graphs are
// merged into the whole-program graph. Virtual calls are over-approximated
// with edges to every known overriding definition so all possible call paths
// are represented; function-pointer calls are resolved statically where the
// signature group has exactly one address-taken candidate, and reported as
// unresolved otherwise (the profile-based validation utility can patch those).
#pragma once

#include <string>
#include <vector>

#include "cg/call_graph.hpp"
#include "cg/source_model.hpp"

namespace capi::cg {

/// Per-TU graph plus the call sites that need whole-program knowledge.
struct LocalCallGraph {
    std::string unitName;
    CallGraph graph;
    struct PendingCall {
        std::string caller;
        CallSite site;
    };
    std::vector<PendingCall> pendingVirtual;
    std::vector<PendingCall> pendingPointer;
};

/// Statistics of a whole-program merge.
struct MergeStats {
    std::size_t translationUnits = 0;
    std::size_t totalNodes = 0;
    std::size_t directEdges = 0;
    std::size_t virtualEdges = 0;        ///< Edges added for virtual dispatch.
    std::size_t pointerEdgesResolved = 0;///< Function-pointer sites resolved statically.
    std::size_t pointerSitesUnresolved = 0;
};

/// An indirect call site the static analysis could not resolve.
struct UnresolvedPointerCall {
    std::string caller;
    std::string signature;
};

class MetaCgBuilder {
public:
    /// Step 3 of the workflow: TU-local graph construction.
    static LocalCallGraph buildLocal(const TranslationUnit& unit);

    /// Step 4: merge local graphs into the whole-program graph.
    /// `overrides` is the global class-hierarchy information.
    CallGraph merge(const std::vector<LocalCallGraph>& locals,
                    const std::vector<OverrideRelation>& overrides);

    /// Convenience: run both steps over a complete source model.
    CallGraph build(const SourceModel& model);

    const MergeStats& stats() const { return stats_; }
    const std::vector<UnresolvedPointerCall>& unresolvedPointerCalls() const {
        return unresolved_;
    }

private:
    MergeStats stats_;
    std::vector<UnresolvedPointerCall> unresolved_;
};

}  // namespace capi::cg
