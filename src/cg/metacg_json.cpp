#include "cg/metacg_json.hpp"

#include <fstream>
#include <sstream>

#include "support/error.hpp"

namespace capi::cg {

using support::Json;
using support::JsonObject;

namespace {

Json idArrayToNames(const CallGraph& graph, const std::vector<FunctionId>& ids) {
    Json arr = Json::array();
    for (FunctionId id : ids) {
        arr.push_back(graph.name(id));
    }
    return arr;
}

}  // namespace

Json toMetaCgJson(const CallGraph& graph) {
    Json doc = Json::object();
    Json meta = Json::object();
    meta["version"] = Json("2.0");
    Json generator = Json::object();
    generator["name"] = Json("capi-repro");
    generator["version"] = Json("1.0");
    meta["generator"] = generator;
    doc["_MetaCG"] = meta;

    Json cgObj = Json::object();
    for (FunctionId id = 0; id < graph.size(); ++id) {
        const CallGraph::Node& node = graph.node(id);
        const FunctionDesc& d = node.desc;
        Json fn = Json::object();
        fn["callees"] = idArrayToNames(graph, node.callees);
        fn["callers"] = idArrayToNames(graph, node.callers);
        fn["overrides"] = idArrayToNames(graph, node.overrides);
        fn["overriddenBy"] = idArrayToNames(graph, node.overriddenBy);
        fn["hasBody"] = Json(d.flags.hasBody);
        fn["isVirtual"] = Json(d.flags.isVirtual);
        fn["doesOverride"] = Json(!node.overrides.empty());

        Json metrics = Json::object();
        metrics["prettyName"] = Json(d.prettyName);
        metrics["translationUnit"] = Json(d.translationUnit);
        metrics["sourceFile"] = Json(d.sourceFile);
        metrics["line"] = Json(d.line);
        metrics["signature"] = Json(d.signature);
        metrics["numStatements"] = Json(d.metrics.numStatements);
        metrics["flops"] = Json(d.metrics.flops);
        metrics["loopDepth"] = Json(d.metrics.loopDepth);
        metrics["cyclomaticComplexity"] = Json(d.metrics.cyclomaticComplexity);
        metrics["numCallSites"] = Json(d.metrics.numCallSites);
        metrics["numInstructions"] = Json(d.metrics.numInstructions);
        metrics["inlineSpecified"] = Json(d.flags.inlineSpecified);
        metrics["inSystemHeader"] = Json(d.flags.inSystemHeader);
        metrics["isMpi"] = Json(d.flags.isMpi);
        metrics["addressTaken"] = Json(d.flags.addressTaken);
        metrics["hiddenVisibility"] = Json(d.flags.hiddenVisibility);

        Json metaBlob = Json::object();
        metaBlob["capiMetrics"] = metrics;
        fn["meta"] = metaBlob;

        cgObj[d.name] = fn;
    }
    doc["_CG"] = cgObj;
    return doc;
}

CallGraph fromMetaCgJson(const Json& doc) {
    const Json* header = doc.find("_MetaCG");
    if (header == nullptr) {
        throw support::Error("MetaCG: missing _MetaCG header");
    }
    if (header->getString("version", "") != "2.0") {
        throw support::Error("MetaCG: unsupported version '" +
                             header->getString("version", "<none>") + "'");
    }
    const Json* cgObj = doc.find("_CG");
    if (cgObj == nullptr || !cgObj->isObject()) {
        throw support::Error("MetaCG: missing _CG section");
    }

    CallGraph graph;

    // Pass 1: nodes with metadata.
    for (const auto& [name, fn] : cgObj->asObject()) {
        FunctionDesc desc;
        desc.name = name;
        desc.flags.hasBody = fn.getBool("hasBody", false);
        desc.flags.isVirtual = fn.getBool("isVirtual", false);
        if (const Json* metaBlob = fn.find("meta")) {
            if (const Json* m = metaBlob->find("capiMetrics")) {
                desc.prettyName = m->getString("prettyName", name);
                desc.translationUnit = m->getString("translationUnit", "");
                desc.sourceFile = m->getString("sourceFile", "");
                desc.line = static_cast<std::uint32_t>(m->getInt("line", 0));
                desc.signature = m->getString("signature", "");
                desc.metrics.numStatements =
                    static_cast<std::uint32_t>(m->getInt("numStatements", 0));
                desc.metrics.flops = static_cast<std::uint32_t>(m->getInt("flops", 0));
                desc.metrics.loopDepth =
                    static_cast<std::uint32_t>(m->getInt("loopDepth", 0));
                desc.metrics.cyclomaticComplexity =
                    static_cast<std::uint32_t>(m->getInt("cyclomaticComplexity", 1));
                desc.metrics.numCallSites =
                    static_cast<std::uint32_t>(m->getInt("numCallSites", 0));
                desc.metrics.numInstructions =
                    static_cast<std::uint32_t>(m->getInt("numInstructions", 0));
                desc.flags.inlineSpecified = m->getBool("inlineSpecified", false);
                desc.flags.inSystemHeader = m->getBool("inSystemHeader", false);
                desc.flags.isMpi = m->getBool("isMpi", false);
                desc.flags.addressTaken = m->getBool("addressTaken", false);
                desc.flags.hiddenVisibility = m->getBool("hiddenVisibility", false);
            }
        }
        if (desc.prettyName.empty()) {
            desc.prettyName = name;
        }
        graph.addFunction(desc);
    }

    // Pass 2: edges and override relations.
    for (const auto& [name, fn] : cgObj->asObject()) {
        FunctionId caller = graph.lookup(name);
        if (const Json* callees = fn.find("callees")) {
            for (const Json& calleeName : callees->asArray()) {
                FunctionId callee = graph.lookup(calleeName.asString());
                if (callee == kInvalidFunction) {
                    throw support::Error("MetaCG: edge to unknown function '" +
                                         calleeName.asString() + "'");
                }
                graph.addCallEdge(caller, callee);
            }
        }
        if (const Json* overrides = fn.find("overrides")) {
            for (const Json& baseName : overrides->asArray()) {
                FunctionId base = graph.lookup(baseName.asString());
                if (base != kInvalidFunction) {
                    graph.addOverride(base, caller);
                }
            }
        }
    }
    return graph;
}

void writeMetaCgFile(const CallGraph& graph, const std::string& path) {
    std::ofstream out(path);
    if (!out) {
        throw support::Error("cannot open for writing: " + path);
    }
    out << toMetaCgJson(graph).dump(true);
}

CallGraph readMetaCgFile(const std::string& path) {
    std::ifstream in(path);
    if (!in) {
        throw support::Error("cannot open for reading: " + path);
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return fromMetaCgJson(Json::parse(buffer.str()));
}

}  // namespace capi::cg
