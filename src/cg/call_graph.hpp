// Whole-program call graph: the data structure every CaPI selector operates on.
//
// Nodes are stored densely and addressed by FunctionId so selectors can use
// bitsets; edges are deduplicated adjacency vectors kept sorted for binary
// search. Virtual-dispatch relations (overrides / overriddenBy) are recorded
// separately from plain call edges, mirroring MetaCG.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "cg/types.hpp"

namespace capi::cg {

class CallGraph {
public:
    struct Node {
        FunctionDesc desc;
        std::vector<FunctionId> callees;      ///< Sorted, unique.
        std::vector<FunctionId> callers;      ///< Sorted, unique.
        std::vector<FunctionId> overrides;    ///< Base methods this one overrides.
        std::vector<FunctionId> overriddenBy; ///< Derived methods overriding this one.
    };

    /// Adds a node (or merges metadata into an existing node of the same
    /// name) and returns its id. Merging keeps the definition's metadata:
    /// a declaration-only sighting never downgrades `hasBody`.
    FunctionId addFunction(const FunctionDesc& desc);

    /// Adds caller->callee; no-op if the edge already exists.
    void addCallEdge(FunctionId caller, FunctionId callee);

    /// Records that `derived` overrides `base` (virtual dispatch relation).
    void addOverride(FunctionId base, FunctionId derived);

    bool hasEdge(FunctionId caller, FunctionId callee) const;

    FunctionId lookup(std::string_view name) const;  ///< kInvalidFunction if absent.
    bool contains(std::string_view name) const { return lookup(name) != kInvalidFunction; }

    std::size_t size() const noexcept { return nodes_.size(); }

    const Node& node(FunctionId id) const { return nodes_[id]; }
    Node& node(FunctionId id) { return nodes_[id]; }
    const FunctionDesc& desc(FunctionId id) const { return nodes_[id].desc; }
    const std::string& name(FunctionId id) const { return nodes_[id].desc.name; }
    const std::vector<FunctionId>& callees(FunctionId id) const { return nodes_[id].callees; }
    const std::vector<FunctionId>& callers(FunctionId id) const { return nodes_[id].callers; }

    /// The program entry point; by convention the node named "main" unless
    /// overridden. kInvalidFunction when no entry is known.
    FunctionId entryPoint() const;
    void setEntryPoint(FunctionId id) {
        entry_ = id;
        generation_ = nextGenerationStamp();
    }

    /// Content-version stamp: unique across every graph in the process and
    /// bumped by every mutating call (addFunction/addCallEdge/addOverride/
    /// setEntryPoint). Two graphs with the same stamp are the same object at
    /// the same revision, so selector caches key memoized results on it and
    /// drop them automatically when the graph changes (e.g. a dlopen'd DSO
    /// adds nodes at runtime). Mutating nodes directly through the non-const
    /// node() accessor does NOT bump the stamp.
    std::uint64_t generation() const noexcept { return generation_; }

    std::size_t edgeCount() const;

    /// Iteration helper: valid ids are [0, size()).
    std::vector<FunctionId> allIds() const;

private:
    static std::uint64_t nextGenerationStamp();

    std::vector<Node> nodes_;
    std::unordered_map<std::string, FunctionId> byName_;
    std::optional<FunctionId> entry_;
    std::uint64_t generation_ = nextGenerationStamp();
};

/// Inserts `value` into a sorted unique vector; returns false if present.
bool insertSorted(std::vector<FunctionId>& vec, FunctionId value);

/// Binary search in a sorted unique vector.
bool containsSorted(const std::vector<FunctionId>& vec, FunctionId value);

}  // namespace capi::cg
