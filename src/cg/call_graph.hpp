// Whole-program call graph: the data structure every CaPI selector operates on.
//
// Nodes are stored densely and addressed by FunctionId so selectors can use
// bitsets; edges are deduplicated adjacency vectors kept sorted for binary
// search. Virtual-dispatch relations (overrides / overriddenBy) are recorded
// separately from plain call edges, mirroring MetaCG.
//
// Removal uses tombstones: a removed node keeps its id (FunctionSet universes
// stay stable across dlclose) but loses its name, desc, and every incident
// edge, behaving exactly like an unnamed declaration from then on. Every
// mutation is appended to a bounded typed journal (see cg/delta.hpp) that
// downstream layers read through deltaSince()/drainDelta() to recompute only
// what a runtime update actually touched.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cg/delta.hpp"
#include "cg/types.hpp"

namespace capi::cg {

class CallGraph {
public:
    struct Node {
        FunctionDesc desc;
        std::vector<FunctionId> callees;      ///< Sorted, unique.
        std::vector<FunctionId> callers;      ///< Sorted, unique.
        std::vector<FunctionId> overrides;    ///< Base methods this one overrides.
        std::vector<FunctionId> overriddenBy; ///< Derived methods overriding this one.
        bool alive = true;                    ///< False once removed (tombstone).
    };

    CallGraph();
    ~CallGraph();

    /// Copies get a fresh graph identity and an empty journal (their delta
    /// lineage starts at the copied generation), so snapshots patched for the
    /// original are never chained onto the copy's future mutations.
    CallGraph(const CallGraph& other);
    CallGraph& operator=(const CallGraph& other);
    /// Moves transfer the identity; the moved-from graph no longer owns any
    /// registered snapshots and its destructor will not evict them.
    CallGraph(CallGraph&& other) noexcept;
    CallGraph& operator=(CallGraph&& other) noexcept;

    /// Adds a node (or merges metadata into an existing node of the same
    /// name) and returns its id. Merging keeps the definition's metadata:
    /// a declaration-only sighting never downgrades `hasBody`.
    FunctionId addFunction(const FunctionDesc& desc);

    /// Adds caller->callee; no-op if the edge already exists.
    void addCallEdge(FunctionId caller, FunctionId callee);

    /// Removes caller->callee; no-op (no stamp bump) if absent — including
    /// dead endpoints, whose edges were already cleaned by removeFunction
    /// (removal stays idempotent in any interleaving with node removal).
    void removeCallEdge(FunctionId caller, FunctionId callee);

    /// Records that `derived` overrides `base` (virtual dispatch relation).
    void addOverride(FunctionId base, FunctionId derived);

    /// Tombstones a node: every incident edge (both relations, both
    /// directions) is removed and journaled, the name leaves the lookup
    /// index, and the desc is reset. The id stays valid and size() does not
    /// shrink, so FunctionSets built before the removal keep their universe.
    /// No-op if the node is already dead.
    void removeFunction(FunctionId id);

    /// dlclose-style bulk removal: removeFunction over each id.
    void removeFunctions(const std::vector<FunctionId>& ids);

    /// Result of compact(): the old-id -> new-id mapping callers need to
    /// migrate FunctionSets, cached selections, and any other id-keyed state
    /// across the renumbering.
    struct CompactionResult {
        /// Indexed by pre-compaction id; kInvalidFunction for tombstones.
        /// Alive ids map in order, so relative id order is preserved.
        std::vector<FunctionId> remap;
        std::size_t removed = 0;  ///< Tombstone slots reclaimed.
    };

    /// Reclaims tombstone slots: alive nodes are renumbered densely (order
    /// preserved), dead slots disappear, and size() shrinks to aliveCount().
    /// This is the one operation that breaks id stability, so it returns the
    /// remap and invalidates ALL history: the journal is cleared and the
    /// floor raised to the new stamp, making deltaSince() for any earlier
    /// revision answer nullopt — downstream consumers (CsrView, selector
    /// caches) treat the graph as wholly changed and rebuild, never patching
    /// old-id snapshots onto new-id content. Registered CsrView snapshots of
    /// this graph are eagerly evicted for the same reason. No-op (identity
    /// remap, no stamp bump) when there are no tombstones.
    CompactionResult compact();

    bool alive(FunctionId id) const { return nodes_[id].alive; }
    std::size_t aliveCount() const noexcept { return aliveCount_; }

    bool hasEdge(FunctionId caller, FunctionId callee) const;

    FunctionId lookup(std::string_view name) const;  ///< kInvalidFunction if absent.
    bool contains(std::string_view name) const { return lookup(name) != kInvalidFunction; }

    std::size_t size() const noexcept { return nodes_.size(); }

    const Node& node(FunctionId id) const { return nodes_[id]; }
    const FunctionDesc& desc(FunctionId id) const { return nodes_[id].desc; }
    const std::string& name(FunctionId id) const { return nodes_[id].desc.name; }
    const std::vector<FunctionId>& callees(FunctionId id) const { return nodes_[id].callees; }
    const std::vector<FunctionId>& callers(FunctionId id) const { return nodes_[id].callers; }
    const std::vector<FunctionId>& overrides(FunctionId id) const { return nodes_[id].overrides; }
    const std::vector<FunctionId>& overriddenBy(FunctionId id) const {
        return nodes_[id].overriddenBy;
    }

    /// Explicit metadata mutation. There is deliberately no non-const node()
    /// accessor: every mutation must go through a method that bumps the
    /// generation stamp, otherwise SelectorCache entries and CsrView
    /// snapshots keyed on the stamp would keep serving pre-mutation results.
    /// The stamp is bumped BEFORE the mutator runs, so even a mutator that
    /// throws mid-write leaves the graph marked changed rather than serving
    /// a half-mutated revision as fresh. Renaming is rejected (the name is
    /// the byName_ index key): the write is reverted and an error thrown —
    /// including when the mutator renames and then throws itself.
    /// Journaled as a DescTouch: any field but the name may have changed.
    template <typename Fn>
    void mutateDesc(FunctionId id, Fn&& mutate) {
        requireAlive(id);
        generation_ = nextGenerationStamp();
        journalAppend(DeltaKind::DescTouch, id);
        std::string original = nodes_[id].desc.name;
        try {
            mutate(nodes_[id].desc);
        } catch (...) {
            // Noexcept move: restoring the index key cannot itself throw
            // while an exception is in flight.
            nodes_[id].desc.name = std::move(original);
            throw;
        }
        if (nodes_[id].desc.name != original) {
            nodes_[id].desc.name = std::move(original);
            throwRenameError(nodes_[id].desc.name);
        }
    }

    /// Metric-only mutation: like mutateDesc but the mutator sees only the
    /// FunctionMetrics, and the journal records a MetricTouch — so cached
    /// stage results that read names/flags but no metrics survive the update
    /// (the adaptive controller's per-epoch visit folding uses this).
    template <typename Fn>
    void touchMetrics(FunctionId id, Fn&& mutate) {
        requireAlive(id);
        generation_ = nextGenerationStamp();
        journalAppend(DeltaKind::MetricTouch, id);
        mutate(nodes_[id].desc.metrics);
    }

    /// The program entry point; by convention the node named "main" unless
    /// overridden. kInvalidFunction when no entry is known.
    FunctionId entryPoint() const;
    void setEntryPoint(FunctionId id) {
        entry_ = id;
        generation_ = nextGenerationStamp();
        journalAppend(DeltaKind::EntryChange, id);
    }

    /// Content-version stamp: unique across every graph in the process and
    /// bumped by every mutating call (addFunction/addCallEdge/addOverride/
    /// removeCallEdge/removeFunction/setEntryPoint/mutateDesc/touchMetrics).
    /// Two graphs with the same stamp have the same content, so selector
    /// caches and CsrView snapshots key memoized results on it and drop (or
    /// delta-patch) them when the graph changes (e.g. a dlopen'd DSO adds
    /// nodes at runtime). All mutation goes through the methods above —
    /// there is no stamp-bypassing mutable access.
    std::uint64_t generation() const noexcept { return generation_; }

    /// Process-unique identity of this graph object (content lineage): the
    /// CsrView snapshot registry groups per-graph snapshot chains by it and
    /// ~CallGraph eagerly evicts them.
    std::uint64_t graphId() const noexcept { return graphId_; }

    // --- mutation journal ---------------------------------------------------

    /// Aggregated delta from the revision stamped `generation` to the
    /// current revision. nullopt when the journal no longer covers that
    /// stamp (trimmed history, foreign/future stamp): the caller must treat
    /// the whole graph as changed. An engaged empty delta means "same
    /// content".
    std::optional<GraphDelta> deltaSince(std::uint64_t generation) const;

    /// Aggregated delta since the previous drain (or construction), then
    /// advances the drain mark. Non-destructive for other consumers:
    /// deltaSince() remains answerable for any stamp the bounded journal
    /// still covers.
    GraphDelta drainDelta();

    /// Journal records currently retained (diagnostics/tests).
    std::size_t journalSize() const noexcept { return journal_.size(); }

    std::size_t edgeCount() const;

    /// Iteration helper: valid ids are [0, size()).
    std::vector<FunctionId> allIds() const;

private:
    static std::uint64_t nextGenerationStamp();
    static std::uint64_t nextGraphId();
    [[noreturn]] static void throwRenameError(const std::string& name);
    [[noreturn]] static void throwDeadNodeError(FunctionId id);

    void requireAlive(FunctionId id) const {
        if (!nodes_[id].alive) {
            throwDeadNodeError(id);
        }
    }

    void journalAppend(DeltaKind kind, FunctionId a,
                       FunctionId b = kInvalidFunction);
    void releaseSnapshots() noexcept;

    std::vector<Node> nodes_;
    std::unordered_map<std::string, FunctionId> byName_;
    std::optional<FunctionId> entry_;
    std::size_t aliveCount_ = 0;
    std::uint64_t generation_ = nextGenerationStamp();
    std::uint64_t graphId_ = nextGraphId();  ///< 0 = moved-from husk.

    /// Bounded journal, sorted by record generation (stamps are assigned
    /// monotonically within one graph). journalFloor_ is the oldest stamp
    /// deltaSince() can still answer for.
    std::vector<DeltaRecord> journal_;
    std::uint64_t journalFloor_ = generation_;
    std::uint64_t drainMark_ = generation_;
};

/// Inserts `value` into a sorted unique vector; returns false if present.
bool insertSorted(std::vector<FunctionId>& vec, FunctionId value);

/// Removes `value` from a sorted unique vector; returns false if absent.
bool eraseSorted(std::vector<FunctionId>& vec, FunctionId value);

/// Binary search in a sorted unique vector.
bool containsSorted(const std::vector<FunctionId>& vec, FunctionId value);

}  // namespace capi::cg
