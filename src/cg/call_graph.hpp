// Whole-program call graph: the data structure every CaPI selector operates on.
//
// Nodes are stored densely and addressed by FunctionId so selectors can use
// bitsets; edges are deduplicated adjacency vectors kept sorted for binary
// search. Virtual-dispatch relations (overrides / overriddenBy) are recorded
// separately from plain call edges, mirroring MetaCG.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cg/types.hpp"

namespace capi::cg {

class CallGraph {
public:
    struct Node {
        FunctionDesc desc;
        std::vector<FunctionId> callees;      ///< Sorted, unique.
        std::vector<FunctionId> callers;      ///< Sorted, unique.
        std::vector<FunctionId> overrides;    ///< Base methods this one overrides.
        std::vector<FunctionId> overriddenBy; ///< Derived methods overriding this one.
    };

    /// Adds a node (or merges metadata into an existing node of the same
    /// name) and returns its id. Merging keeps the definition's metadata:
    /// a declaration-only sighting never downgrades `hasBody`.
    FunctionId addFunction(const FunctionDesc& desc);

    /// Adds caller->callee; no-op if the edge already exists.
    void addCallEdge(FunctionId caller, FunctionId callee);

    /// Records that `derived` overrides `base` (virtual dispatch relation).
    void addOverride(FunctionId base, FunctionId derived);

    bool hasEdge(FunctionId caller, FunctionId callee) const;

    FunctionId lookup(std::string_view name) const;  ///< kInvalidFunction if absent.
    bool contains(std::string_view name) const { return lookup(name) != kInvalidFunction; }

    std::size_t size() const noexcept { return nodes_.size(); }

    const Node& node(FunctionId id) const { return nodes_[id]; }
    const FunctionDesc& desc(FunctionId id) const { return nodes_[id].desc; }
    const std::string& name(FunctionId id) const { return nodes_[id].desc.name; }
    const std::vector<FunctionId>& callees(FunctionId id) const { return nodes_[id].callees; }
    const std::vector<FunctionId>& callers(FunctionId id) const { return nodes_[id].callers; }
    const std::vector<FunctionId>& overrides(FunctionId id) const { return nodes_[id].overrides; }
    const std::vector<FunctionId>& overriddenBy(FunctionId id) const {
        return nodes_[id].overriddenBy;
    }

    /// Explicit metadata mutation. There is deliberately no non-const node()
    /// accessor: every mutation must go through a method that bumps the
    /// generation stamp, otherwise SelectorCache entries and CsrView
    /// snapshots keyed on the stamp would keep serving pre-mutation results.
    /// The stamp is bumped BEFORE the mutator runs, so even a mutator that
    /// throws mid-write leaves the graph marked changed rather than serving
    /// a half-mutated revision as fresh. Renaming is rejected (the name is
    /// the byName_ index key): the write is reverted and an error thrown —
    /// including when the mutator renames and then throws itself.
    template <typename Fn>
    void mutateDesc(FunctionId id, Fn&& mutate) {
        generation_ = nextGenerationStamp();
        std::string original = nodes_[id].desc.name;
        try {
            mutate(nodes_[id].desc);
        } catch (...) {
            // Noexcept move: restoring the index key cannot itself throw
            // while an exception is in flight.
            nodes_[id].desc.name = std::move(original);
            throw;
        }
        if (nodes_[id].desc.name != original) {
            nodes_[id].desc.name = std::move(original);
            throwRenameError(nodes_[id].desc.name);
        }
    }

    /// The program entry point; by convention the node named "main" unless
    /// overridden. kInvalidFunction when no entry is known.
    FunctionId entryPoint() const;
    void setEntryPoint(FunctionId id) {
        entry_ = id;
        generation_ = nextGenerationStamp();
    }

    /// Content-version stamp: unique across every graph in the process and
    /// bumped by every mutating call (addFunction/addCallEdge/addOverride/
    /// setEntryPoint/mutateDesc). Two graphs with the same stamp have the
    /// same content, so selector caches and CsrView snapshots key memoized
    /// results on it and drop them automatically when the graph changes
    /// (e.g. a dlopen'd DSO adds nodes at runtime). All mutation goes through
    /// the methods above — there is no stamp-bypassing mutable access.
    std::uint64_t generation() const noexcept { return generation_; }

    std::size_t edgeCount() const;

    /// Iteration helper: valid ids are [0, size()).
    std::vector<FunctionId> allIds() const;

private:
    static std::uint64_t nextGenerationStamp();
    [[noreturn]] static void throwRenameError(const std::string& name);

    std::vector<Node> nodes_;
    std::unordered_map<std::string, FunctionId> byName_;
    std::optional<FunctionId> entry_;
    std::uint64_t generation_ = nextGenerationStamp();
};

/// Inserts `value` into a sorted unique vector; returns false if present.
bool insertSorted(std::vector<FunctionId>& vec, FunctionId value);

/// Binary search in a sorted unique vector.
bool containsSorted(const std::vector<FunctionId>& vec, FunctionId value);

}  // namespace capi::cg
