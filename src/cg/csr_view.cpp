#include "cg/csr_view.hpp"

#include <algorithm>
#include <atomic>
#include <deque>
#include <future>
#include <mutex>
#include <unordered_map>

#include "cg/call_graph.hpp"
#include "obs/metrics.hpp"
#include "support/bitset.hpp"
#include "support/executor.hpp"
#include "support/thread_pool.hpp"

namespace capi::cg {

namespace {

/// Below this node count the sharded build's bookkeeping outweighs the
/// copies it splits (same threshold family as the selector halves).
constexpr std::size_t kParallelBuildThreshold = 1 << 14;

/// Snapshot chain depth kept per graph: the current view plus the
/// predecessor the next delta will patch from.
constexpr std::size_t kMaxViewsPerGraph = 2;

std::size_t buildGrain(std::size_t n, const support::ThreadPool& pool) {
    return std::max<std::size_t>(1024, n / (pool.threadCount() * 4));
}

struct RegistryCounters {
    std::atomic<std::uint64_t> fullBuilds{0};
    std::atomic<std::uint64_t> patchBuilds{0};
    std::atomic<std::uint64_t> sharedHits{0};
    std::atomic<std::uint64_t> graphsReleased{0};
};

RegistryCounters& counters() {
    static RegistryCounters c;
    // Static process-wide counters fold straight into the metrics registry;
    // both singletons live until process exit.
    static const std::uint64_t collectorId =
        obs::MetricsRegistry::global().addCollector(
            [](std::vector<obs::Sample>& out) {
                auto counter = [&out](const char* name,
                                      const std::atomic<std::uint64_t>& v) {
                    out.push_back({name, obs::MetricKind::Counter,
                                   static_cast<double>(
                                       v.load(std::memory_order_relaxed))});
                };
                counter("capi_csr_full_builds_total", c.fullBuilds);
                counter("capi_csr_patch_builds_total", c.patchBuilds);
                counter("capi_csr_shared_hits_total", c.sharedHits);
                counter("capi_csr_graphs_released_total", c.graphsReleased);
            });
    (void)collectorId;
    return c;
}

std::atomic<bool>& patchingFlag() {
    static std::atomic<bool> enabled{true};
    return enabled;
}

}  // namespace

/// Flattens one adjacency relation into (start, len) rows over one pool. The
/// per-node vectors are already sorted and unique, so a straight copy
/// preserves that invariant. With a pool: per-node sizes are counted in
/// parallel, prefix-summed serially (O(V), cheap), and each shard then
/// copies its rows into the offset-determined slice of the pool —
/// bit-identical to the serial append loop because every element's position
/// is fixed by the prefix sums alone.
template <typename RowGetter>
std::shared_ptr<const CsrView::Rows> CsrView::buildRows(
    std::size_t n, RowGetter&& rowOf, support::ThreadPool* pool) {
    auto rows = std::make_shared<CsrView::Rows>();
    rows->start.resize(n);
    rows->len.resize(n);
    auto edges = std::make_shared<std::vector<FunctionId>>();
    if (pool != nullptr) {
        const std::size_t grain = buildGrain(n, *pool);
        pool->parallelFor(n, grain, [&](std::size_t lo, std::size_t hi) {
            for (std::size_t id = lo; id < hi; ++id) {
                rows->len[id] = static_cast<std::uint32_t>(
                    rowOf(static_cast<FunctionId>(id)).size());
            }
        });
        std::uint32_t running = 0;
        for (std::size_t id = 0; id < n; ++id) {
            rows->start[id] = running;
            running += rows->len[id];
        }
        edges->resize(running);
        pool->parallelFor(n, grain, [&](std::size_t lo, std::size_t hi) {
            for (std::size_t id = lo; id < hi; ++id) {
                const auto& row = rowOf(static_cast<FunctionId>(id));
                std::copy(row.begin(), row.end(),
                          edges->begin() + rows->start[id]);
            }
        });
        rows->pool = std::move(edges);
        return rows;
    }
    std::size_t total = 0;
    for (std::size_t id = 0; id < n; ++id) {
        rows->start[id] = static_cast<std::uint32_t>(total);
        const std::size_t degree = rowOf(static_cast<FunctionId>(id)).size();
        rows->len[id] = static_cast<std::uint32_t>(degree);
        total += degree;
    }
    edges->reserve(total);
    for (std::size_t id = 0; id < n; ++id) {
        const auto& row = rowOf(static_cast<FunctionId>(id));
        edges->insert(edges->end(), row.begin(), row.end());
    }
    rows->pool = std::move(edges);
    return rows;
}

CsrView::CsrView(const CallGraph& graph, support::ThreadPool* pool) {
    const std::size_t n = graph.size();
    generation_ = graph.generation();
    nodeCount_ = n;
    entry_ = graph.entryPoint();
    if (pool != nullptr && (pool->threadCount() <= 1 || n < kParallelBuildThreshold)) {
        pool = nullptr;
    }

    callees_ = buildRows(n, [&](FunctionId id) -> const std::vector<FunctionId>& {
        return graph.callees(id);
    }, pool);
    callers_ = buildRows(n, [&](FunctionId id) -> const std::vector<FunctionId>& {
        return graph.callers(id);
    }, pool);
    overrides_ = buildRows(n, [&](FunctionId id) -> const std::vector<FunctionId>& {
        return graph.overrides(id);
    }, pool);
    overriddenBy_ = buildRows(n, [&](FunctionId id) -> const std::vector<FunctionId>& {
        return graph.overriddenBy(id);
    }, pool);
    callEdgeCount_ = callees_->pool->size();

    auto names = std::make_shared<NameArena>();
    names->start.resize(n);
    names->len.resize(n);
    auto arena = std::make_shared<std::string>();
    auto stmts = std::make_shared<std::vector<std::uint32_t>>(n);
    if (pool != nullptr) {
        const std::size_t grain = buildGrain(n, *pool);
        pool->parallelFor(n, grain, [&](std::size_t lo, std::size_t hi) {
            for (std::size_t id = lo; id < hi; ++id) {
                names->len[id] = static_cast<std::uint32_t>(
                    graph.name(static_cast<FunctionId>(id)).size());
            }
        });
        std::uint32_t running = 0;
        for (std::size_t id = 0; id < n; ++id) {
            names->start[id] = running;
            running += names->len[id];
        }
        arena->resize(running);
        pool->parallelFor(n, grain, [&](std::size_t lo, std::size_t hi) {
            for (std::size_t id = lo; id < hi; ++id) {
                const std::string& name = graph.name(static_cast<FunctionId>(id));
                std::copy(name.begin(), name.end(),
                          arena->begin() + names->start[id]);
                (*stmts)[id] =
                    graph.desc(static_cast<FunctionId>(id)).metrics.numStatements;
            }
        });
    } else {
        std::size_t arenaBytes = 0;
        for (std::size_t id = 0; id < n; ++id) {
            names->start[id] = static_cast<std::uint32_t>(arenaBytes);
            const std::size_t bytes = graph.name(static_cast<FunctionId>(id)).size();
            names->len[id] = static_cast<std::uint32_t>(bytes);
            arenaBytes += bytes;
        }
        arena->reserve(arenaBytes);
        for (std::size_t id = 0; id < n; ++id) {
            *arena += graph.name(static_cast<FunctionId>(id));
            (*stmts)[id] =
                graph.desc(static_cast<FunctionId>(id)).metrics.numStatements;
        }
    }
    names->pool = std::move(arena);
    names_ = std::move(names);
    numStatements_ = std::move(stmts);
}

std::shared_ptr<const CsrView> CsrView::tryPatch(const CsrView& prev,
                                                 const CallGraph& graph,
                                                 const GraphDelta& delta) {
    const std::size_t nOld = prev.nodeCount_;
    const std::size_t nNew = graph.size();
    if (nNew < nOld) {
        return nullptr;  // Tombstoned graphs never shrink; foreign lineage.
    }

    // Churn threshold: past this many touched nodes a full rebuild's
    // contiguous passes beat per-row patching (and the tail would bloat).
    support::DynamicBitset dirty = delta.dirtyNodes(nNew);
    const std::size_t dirtyCount = dirty.count();
    if (dirtyCount + (nNew - nOld) >
        std::max<std::size_t>(1024, nNew / 8)) {
        return nullptr;
    }

    // Per-relation dirty rows (ids < nOld; appended nodes are always
    // (re)read). removeFunction journals each incident edge, so endpoints of
    // removed nodes are covered by the edge records.
    support::DynamicBitset calleeDirty(nOld);
    support::DynamicBitset callerDirty(nOld);
    support::DynamicBitset overridesDirty(nOld);
    support::DynamicBitset overriddenByDirty(nOld);
    support::DynamicBitset metricDirty(nOld);
    support::DynamicBitset nameDirty(nOld);
    auto mark = [nOld](support::DynamicBitset& bits, FunctionId id) {
        if (id < nOld) {
            bits.set(id);
        }
    };
    delta.forEachChange([&](DeltaKind kind, FunctionId a, FunctionId b) {
        switch (kind) {
            case DeltaKind::CallEdgeAdd:
            case DeltaKind::CallEdgeRemove:
                mark(calleeDirty, a);   // a = caller's callee row.
                mark(callerDirty, b);   // b = callee's caller row.
                break;
            case DeltaKind::OverrideAdd:
            case DeltaKind::OverrideRemove:
                mark(overridesDirty, b);     // b = derived's overrides row.
                mark(overriddenByDirty, a);  // a = base's overriddenBy row.
                break;
            case DeltaKind::NodeRemove:
                mark(calleeDirty, a);
                mark(callerDirty, a);
                mark(overridesDirty, a);
                mark(overriddenByDirty, a);
                mark(metricDirty, a);
                mark(nameDirty, a);
                break;
            case DeltaKind::MetricTouch:
            case DeltaKind::DescTouch:
                mark(metricDirty, a);
                break;
            case DeltaKind::NodeAdd:     // Appended rows always (re)read.
            case DeltaKind::EntryChange:  // entry_ recomputed from the graph.
                break;
        }
    });

    auto view = std::shared_ptr<CsrView>(new CsrView());
    view->generation_ = delta.toGeneration;
    view->nodeCount_ = nNew;
    view->entry_ = graph.entryPoint();
    view->patched_ = true;

    // Patches one relation: untouched relations share the predecessor's Rows
    // outright; touched ones copy the (start, len) indirection, keep the edge
    // pool shared, and append only the dirty rows to the tail. Returns false
    // when the accumulated tail outgrows the pool (chained patches past the
    // useful point) — the caller then falls back to the full build.
    auto patchRows = [&](const std::shared_ptr<const Rows>& prevRows,
                         const support::DynamicBitset& dirtyRows,
                         auto&& rowOf,
                         std::shared_ptr<const Rows>& out) -> bool {
        if (!dirtyRows.any() && nNew == nOld) {
            out = prevRows;
            return true;
        }
        auto rows = std::make_shared<Rows>();
        rows->pool = prevRows->pool;
        rows->tail = prevRows->tail;
        rows->start = prevRows->start;
        rows->len = prevRows->len;
        rows->start.resize(nNew, 0);
        rows->len.resize(nNew, 0);
        auto rewrite = [&](FunctionId id) {
            const auto& row = rowOf(id);
            rows->len[id] = static_cast<std::uint32_t>(row.size());
            if (row.empty()) {
                rows->start[id] = 0;
                return;
            }
            rows->start[id] =
                kTailBit | static_cast<std::uint32_t>(rows->tail.size());
            rows->tail.insert(rows->tail.end(), row.begin(), row.end());
        };
        dirtyRows.forEach([&](std::size_t id) {
            rewrite(static_cast<FunctionId>(id));
        });
        for (std::size_t id = nOld; id < nNew; ++id) {
            rewrite(static_cast<FunctionId>(id));
        }
        if (rows->tail.size() > rows->pool->size() / 2 + 4096) {
            return false;
        }
        out = rows;
        return true;
    };

    bool ok =
        patchRows(prev.callees_, calleeDirty,
                  [&](FunctionId id) -> const std::vector<FunctionId>& {
                      return graph.callees(id);
                  },
                  view->callees_) &&
        patchRows(prev.callers_, callerDirty,
                  [&](FunctionId id) -> const std::vector<FunctionId>& {
                      return graph.callers(id);
                  },
                  view->callers_) &&
        patchRows(prev.overrides_, overridesDirty,
                  [&](FunctionId id) -> const std::vector<FunctionId>& {
                      return graph.overrides(id);
                  },
                  view->overrides_) &&
        patchRows(prev.overriddenBy_, overriddenByDirty,
                  [&](FunctionId id) -> const std::vector<FunctionId>& {
                      return graph.overriddenBy(id);
                  },
                  view->overriddenBy_);
    if (!ok) {
        return nullptr;
    }
    view->callEdgeCount_ = 0;
    for (std::size_t id = 0; id < nNew; ++id) {
        view->callEdgeCount_ += view->callees_->len[id];
    }

    // Names change only through node add/remove (mutateDesc rejects renames).
    if (!nameDirty.any() && nNew == nOld) {
        view->names_ = prev.names_;
    } else {
        auto names = std::make_shared<NameArena>();
        names->pool = prev.names_->pool;
        names->tail = prev.names_->tail;
        names->start = prev.names_->start;
        names->len = prev.names_->len;
        names->start.resize(nNew, 0);
        names->len.resize(nNew, 0);
        auto rewriteName = [&](FunctionId id) {
            const std::string& name = graph.name(id);
            names->len[id] = static_cast<std::uint32_t>(name.size());
            if (name.empty()) {
                names->start[id] = 0;
                return;
            }
            names->start[id] =
                kTailBit | static_cast<std::uint32_t>(names->tail.size());
            names->tail += name;
        };
        nameDirty.forEach(
            [&](std::size_t id) { rewriteName(static_cast<FunctionId>(id)); });
        for (std::size_t id = nOld; id < nNew; ++id) {
            rewriteName(static_cast<FunctionId>(id));
        }
        view->names_ = std::move(names);
    }

    if (!metricDirty.any() && nNew == nOld) {
        view->numStatements_ = prev.numStatements_;
    } else {
        auto stmts =
            std::make_shared<std::vector<std::uint32_t>>(*prev.numStatements_);
        stmts->resize(nNew, 0);
        metricDirty.forEach([&](std::size_t id) {
            (*stmts)[id] = graph.desc(static_cast<FunctionId>(id)).metrics.numStatements;
        });
        for (std::size_t id = nOld; id < nNew; ++id) {
            (*stmts)[id] = graph.desc(static_cast<FunctionId>(id)).metrics.numStatements;
        }
        view->numStatements_ = std::move(stmts);
    }

    return view;
}

// ---------------------------------------------------------------- registry --

namespace {

using ViewFuture = std::shared_future<std::shared_ptr<const CsrView>>;

struct Registry {
    std::mutex mutex;
    struct Slot {
        /// Newest at the back; capped at kMaxViewsPerGraph.
        std::deque<std::pair<std::uint64_t, ViewFuture>> views;
    };
    std::unordered_map<std::uint64_t, Slot> slots;
};

/// Leaked on purpose (still reachable at exit): statically stored graphs —
/// bench fixtures, app caches — may be destroyed after any static registry
/// here, and their ~CallGraph must still be able to call releaseGraph().
Registry& registry() {
    static Registry* r = new Registry;
    return *r;
}

}  // namespace

std::shared_ptr<const CsrView> CsrView::snapshot(const CallGraph& graph) {
    Registry& reg = registry();
    const std::uint64_t graphId = graph.graphId();
    const std::uint64_t generation = graph.generation();

    std::promise<std::shared_ptr<const CsrView>> promise;
    ViewFuture future;
    ViewFuture priorFuture;
    bool builder = false;
    {
        std::lock_guard<std::mutex> lock(reg.mutex);
        Registry::Slot& slot = reg.slots[graphId];
        for (const auto& [gen, fut] : slot.views) {
            if (gen == generation) {
                counters().sharedHits.fetch_add(1, std::memory_order_relaxed);
                future = fut;
                break;
            }
        }
        if (!future.valid()) {
            if (!slot.views.empty()) {
                priorFuture = slot.views.back().second;
            }
            future = promise.get_future().share();
            slot.views.emplace_back(generation, future);
            while (slot.views.size() > kMaxViewsPerGraph) {
                // Evicting a future someone still waits on is fine: their
                // shared_future copies keep the state alive.
                slot.views.pop_front();
            }
            builder = true;
        }
    }
    if (!builder) {
        return future.get();  // Rethrows if the builder failed.
    }
    try {
        std::shared_ptr<const CsrView> view;
        if (priorFuture.valid() && incrementalPatching()) {
            std::shared_ptr<const CsrView> prior;
            try {
                prior = priorFuture.get();
            } catch (...) {
                prior = nullptr;  // Predecessor build failed; build full.
            }
            if (prior != nullptr) {
                std::optional<GraphDelta> delta =
                    graph.deltaSince(prior->generation());
                if (delta.has_value()) {
                    view = tryPatch(*prior, graph, *delta);
                }
            }
        }
        if (view != nullptr) {
            counters().patchBuilds.fetch_add(1, std::memory_order_relaxed);
        } else {
            // Large graphs borrow the process-wide pool (0 = "hardware
            // width"); the ctor falls back to the serial reference path
            // below threshold.
            support::ThreadPool* pool =
                graph.size() >= kParallelBuildThreshold
                    ? support::Executor::poolFor(0)
                    : nullptr;
            view = std::make_shared<const CsrView>(graph, pool);
            counters().fullBuilds.fetch_add(1, std::memory_order_relaxed);
        }
        promise.set_value(view);
        return view;
    } catch (...) {
        // Unblock waiters with the error and drop the entry so the next
        // caller retries instead of inheriting a poisoned future.
        promise.set_exception(std::current_exception());
        std::lock_guard<std::mutex> lock(reg.mutex);
        auto it = reg.slots.find(graphId);
        if (it != reg.slots.end()) {
            auto& views = it->second.views;
            views.erase(std::remove_if(views.begin(), views.end(),
                                       [&](const auto& entry) {
                                           return entry.first == generation;
                                       }),
                        views.end());
        }
        throw;
    }
}

void CsrView::releaseGraph(std::uint64_t graphId) noexcept {
    try {
        Registry& reg = registry();
        std::lock_guard<std::mutex> lock(reg.mutex);
        if (reg.slots.erase(graphId) != 0) {
            counters().graphsReleased.fetch_add(1, std::memory_order_relaxed);
        }
    } catch (...) {
        // Called from a destructor; allocation failure while locking is the
        // only conceivable throw and dropping the eviction is harmless.
    }
}

void CsrView::setIncrementalPatching(bool enabled) noexcept {
    patchingFlag().store(enabled, std::memory_order_relaxed);
}

bool CsrView::incrementalPatching() noexcept {
    return patchingFlag().load(std::memory_order_relaxed);
}

CsrView::RegistryStats CsrView::registryStats() noexcept {
    RegistryStats stats;
    stats.fullBuilds = counters().fullBuilds.load(std::memory_order_relaxed);
    stats.patchBuilds = counters().patchBuilds.load(std::memory_order_relaxed);
    stats.sharedHits = counters().sharedHits.load(std::memory_order_relaxed);
    stats.graphsReleased =
        counters().graphsReleased.load(std::memory_order_relaxed);
    return stats;
}

std::size_t CsrView::registrySlotCount() noexcept {
    Registry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    return reg.slots.size();
}

}  // namespace capi::cg
