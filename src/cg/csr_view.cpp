#include "cg/csr_view.hpp"

#include <algorithm>
#include <deque>
#include <future>
#include <mutex>
#include <unordered_map>

#include "cg/call_graph.hpp"
#include "support/executor.hpp"
#include "support/thread_pool.hpp"

namespace capi::cg {

namespace {

/// Below this node count the sharded build's bookkeeping outweighs the
/// copies it splits (same threshold family as the selector halves).
constexpr std::size_t kParallelBuildThreshold = 1 << 14;

std::size_t buildGrain(std::size_t n, const support::ThreadPool& pool) {
    return std::max<std::size_t>(1024, n / (pool.threadCount() * 4));
}

/// Flattens one adjacency relation into CSR form. The per-node vectors are
/// already sorted and unique, so a straight copy preserves that invariant.
/// With a pool: per-node sizes are counted in parallel, prefix-summed
/// serially (O(V), cheap), and each shard then copies its rows into the
/// offset-determined slice of the edge array — bit-identical to the serial
/// append loop because every byte's position is fixed by the offsets alone.
template <typename RowGetter>
void buildRows(std::size_t n, RowGetter&& rowOf, std::vector<std::uint32_t>& offsets,
               std::vector<FunctionId>& edges, support::ThreadPool* pool) {
    offsets.resize(n + 1);
    if (pool != nullptr) {
        const std::size_t grain = buildGrain(n, *pool);
        pool->parallelFor(n, grain, [&](std::size_t lo, std::size_t hi) {
            for (std::size_t id = lo; id < hi; ++id) {
                offsets[id + 1] = static_cast<std::uint32_t>(
                    rowOf(static_cast<FunctionId>(id)).size());
            }
        });
        offsets[0] = 0;
        for (std::size_t id = 0; id < n; ++id) {
            offsets[id + 1] += offsets[id];
        }
        edges.resize(offsets[n]);
        pool->parallelFor(n, grain, [&](std::size_t lo, std::size_t hi) {
            for (std::size_t id = lo; id < hi; ++id) {
                const auto& row = rowOf(static_cast<FunctionId>(id));
                std::copy(row.begin(), row.end(), edges.begin() + offsets[id]);
            }
        });
        return;
    }
    std::size_t total = 0;
    for (std::size_t id = 0; id < n; ++id) {
        offsets[id] = static_cast<std::uint32_t>(total);
        total += rowOf(static_cast<FunctionId>(id)).size();
    }
    offsets[n] = static_cast<std::uint32_t>(total);
    edges.reserve(total);
    for (std::size_t id = 0; id < n; ++id) {
        const auto& row = rowOf(static_cast<FunctionId>(id));
        edges.insert(edges.end(), row.begin(), row.end());
    }
}

}  // namespace

CsrView::CsrView(const CallGraph& graph, support::ThreadPool* pool) {
    const std::size_t n = graph.size();
    generation_ = graph.generation();
    nodeCount_ = n;
    entry_ = graph.entryPoint();
    if (pool != nullptr && (pool->threadCount() <= 1 || n < kParallelBuildThreshold)) {
        pool = nullptr;
    }

    buildRows(n, [&](FunctionId id) -> const std::vector<FunctionId>& {
        return graph.callees(id);
    }, callees_.offsets, callees_.edges, pool);
    buildRows(n, [&](FunctionId id) -> const std::vector<FunctionId>& {
        return graph.callers(id);
    }, callers_.offsets, callers_.edges, pool);
    buildRows(n, [&](FunctionId id) -> const std::vector<FunctionId>& {
        return graph.overrides(id);
    }, overrides_.offsets, overrides_.edges, pool);
    buildRows(n, [&](FunctionId id) -> const std::vector<FunctionId>& {
        return graph.overriddenBy(id);
    }, overriddenBy_.offsets, overriddenBy_.edges, pool);

    nameOffsets_.resize(n + 1);
    numStatements_.resize(n);
    if (pool != nullptr) {
        const std::size_t grain = buildGrain(n, *pool);
        pool->parallelFor(n, grain, [&](std::size_t lo, std::size_t hi) {
            for (std::size_t id = lo; id < hi; ++id) {
                nameOffsets_[id + 1] = static_cast<std::uint32_t>(
                    graph.name(static_cast<FunctionId>(id)).size());
            }
        });
        nameOffsets_[0] = 0;
        for (std::size_t id = 0; id < n; ++id) {
            nameOffsets_[id + 1] += nameOffsets_[id];
        }
        nameArena_.resize(nameOffsets_[n]);
        pool->parallelFor(n, grain, [&](std::size_t lo, std::size_t hi) {
            for (std::size_t id = lo; id < hi; ++id) {
                const std::string& name = graph.name(static_cast<FunctionId>(id));
                std::copy(name.begin(), name.end(),
                          nameArena_.begin() + nameOffsets_[id]);
                numStatements_[id] =
                    graph.desc(static_cast<FunctionId>(id)).metrics.numStatements;
            }
        });
        return;
    }
    std::size_t arenaBytes = 0;
    for (std::size_t id = 0; id < n; ++id) {
        nameOffsets_[id] = static_cast<std::uint32_t>(arenaBytes);
        arenaBytes += graph.name(static_cast<FunctionId>(id)).size();
    }
    nameOffsets_[n] = static_cast<std::uint32_t>(arenaBytes);
    nameArena_.reserve(arenaBytes);
    for (std::size_t id = 0; id < n; ++id) {
        nameArena_ += graph.name(static_cast<FunctionId>(id));
        numStatements_[id] =
            graph.desc(static_cast<FunctionId>(id)).metrics.numStatements;
    }
}

std::shared_ptr<const CsrView> CsrView::snapshot(const CallGraph& graph) {
    // Keyed by generation stamp alone: stamps are process-unique, every
    // mutation assigns a fresh one, and graph copies sharing a stamp have
    // identical content — so a hit is always the right snapshot. Bounded FIFO
    // because OpenFOAM-scale views are tens of MB; a handful of live graph
    // revisions per process is the realistic working set.
    //
    // The mutex guards only the registry; the O(V+E) build itself runs
    // outside it. Each generation's entry is a shared_future, so concurrent
    // requests for the SAME generation wait on one build (no duplicate
    // work), while snapshots of unrelated graphs/generations build fully in
    // parallel.
    using ViewFuture = std::shared_future<std::shared_ptr<const CsrView>>;
    constexpr std::size_t kMaxCachedViews = 4;
    static std::mutex mutex;
    static std::unordered_map<std::uint64_t, ViewFuture> cache;
    static std::deque<std::uint64_t> order;

    const std::uint64_t generation = graph.generation();
    std::promise<std::shared_ptr<const CsrView>> promise;
    ViewFuture future;
    bool builder = false;
    {
        std::lock_guard<std::mutex> lock(mutex);
        auto it = cache.find(generation);
        if (it != cache.end()) {
            future = it->second;
        } else {
            future = promise.get_future().share();
            cache.emplace(generation, future);
            order.push_back(generation);
            while (order.size() > kMaxCachedViews) {
                // Evicting a future someone still waits on is fine: their
                // shared_future copies keep the state alive.
                cache.erase(order.front());
                order.pop_front();
            }
            builder = true;
        }
    }
    if (!builder) {
        return future.get();  // Rethrows if the builder failed.
    }
    try {
        // Large graphs borrow the process-wide pool (0 = "hardware width");
        // the ctor falls back to the serial reference path below threshold.
        support::ThreadPool* pool =
            graph.size() >= kParallelBuildThreshold ? support::Executor::poolFor(0)
                                                    : nullptr;
        auto view = std::make_shared<const CsrView>(graph, pool);
        promise.set_value(view);
        return view;
    } catch (...) {
        // Unblock waiters with the error and drop the entry so the next
        // caller retries instead of inheriting a poisoned future.
        promise.set_exception(std::current_exception());
        std::lock_guard<std::mutex> lock(mutex);
        cache.erase(generation);
        auto pos = std::find(order.begin(), order.end(), generation);
        if (pos != order.end()) {
            order.erase(pos);
        }
        throw;
    }
}

}  // namespace capi::cg
