// Exporters: the self-observability data rendered in standard formats.
//
//  * Chrome trace-event JSON (load in Perfetto / chrome://tracing): drained
//    TraceEvents become "X" complete slices and "i" instant marks.
//  * Prometheus text exposition: a MetricsRegistry snapshot as scrapable
//    `# TYPE` + sample lines; log2 histograms become _bucket/_sum/_count.
//  * Collapsed stacks (Brendan Gregg flamegraph.pl input): a ProfileTree as
//    one "root;a;b value" line per call path, value = exclusive ns.
//
// All three are pure string renderers over already-extracted data — no
// locking, no recorder/registry access — so tests can feed synthetic inputs
// and golden-file the bytes.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace capi::scorep {
class ProfileTree;
}

namespace capi::obs {

/// Renders drained events as a Chrome trace-event JSON document
/// (`{"displayTimeUnit":"ns","traceEvents":[...]}`). `nameOf` resolves
/// TraceEvent::nameId — pass `recorder.nameOf` bound, or a test stub.
/// Timestamps are emitted in microseconds (the format's unit) at nanosecond
/// resolution via fractional values.
std::string toChromeTraceJson(
    const std::vector<TraceEvent>& events,
    const std::function<std::string(std::uint32_t)>& nameOf);

/// Renders a registry snapshot in the Prometheus text exposition format
/// (version 0.0.4). Samples whose names embed `{label="v"}` pairs are
/// grouped into one family by the name before the brace.
std::string toPrometheusText(const std::vector<Sample>& samples);

/// Renders a merged ProfileTree as collapsed stacks: semicolon-joined region
/// names root-first, one line per call path with nonzero exclusive time.
/// `regionName` maps a RegionHandle to its display name.
std::string toCollapsedStacks(
    const scorep::ProfileTree& tree,
    const std::function<std::string(std::uint32_t)>& regionName);

}  // namespace capi::obs
