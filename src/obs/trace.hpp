// Low-overhead internal trace recorder for the control plane.
//
// Records spans (epochs, model/plan/patch phases, patch transactions,
// collectives) and instant events (rollbacks, evictions, fault fires,
// compactions) into per-thread SPSC ring buffers. The design borrows the two
// load-bearing tricks from the measurement hot path (PR 5):
//
//  * Per-thread ring lookup goes through the generation-stamped
//    support::ThreadLocalCache, so a thread touches shared state (the
//    recorder's thread list mutex) exactly once, on its first event.
//  * Each ring is single-producer (the owning thread) / single-consumer
//    (drain()): the writer publishes with one release store of `head`,
//    bookkeeping counters use singleWriterAdd — no RMWs on the record path.
//
// Overflow NEVER blocks and never overwrites unread slots: when a ring is
// full the event is counted in `dropped` and discarded, keeping the recorder
// safe to leave enabled inside patch transactions and collectives. When the
// recorder is disabled the record path is one relaxed load and a predicted
// branch (same contract as a disarmed fault site), so ScopedSpan can ship
// compiled-in everywhere.
//
// Timestamps come from support::probeNowNs() (calibrated TSC) so trace spans
// and the overhead model share one clock; calibrateObsCostNs() measures the
// enabled record cost so the controller can charge observation of the
// observer into the epoch budget.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "support/thread_cache.hpp"
#include "support/timer.hpp"

namespace capi::obs {

/// Coarse event taxonomy; exporters map these to Chrome trace categories.
enum class SpanCategory : std::uint8_t {
    Epoch,        ///< Controller adaptive epochs.
    Model,        ///< Overhead-model observe phase.
    Plan,         ///< Budget planning / policy diff.
    Patch,        ///< XRay patch transactions (and their rollbacks).
    Collective,   ///< MpiWorld collectives incl. timeout/eviction.
    Fault,        ///< Fault-site fires.
    Compaction,   ///< CallGraph tombstone compaction.
    Tool,         ///< Driver / tool-level phases.
    Fleet,        ///< Fleet aggregation: encode/send/merge/broadcast.
};

const char* spanCategoryName(SpanCategory cat);

/// One ring slot. `durNs == 0` together with `instant` distinguishes a point
/// event from a zero-length span; `arg` is a free event-defined payload
/// (sleds flipped, undo depth, evicted rank, ...).
struct TraceEvent {
    std::uint64_t tsNs = 0;
    std::uint64_t durNs = 0;
    std::uint64_t arg = 0;
    std::uint32_t nameId = 0;
    std::uint32_t tid = 0;
    SpanCategory category = SpanCategory::Tool;
    bool instant = false;
};

class TraceRecorder {
public:
    /// `ringCapacity` is rounded up to a power of two; every thread that
    /// records gets its own ring of that many slots.
    explicit TraceRecorder(std::size_t ringCapacity = 1u << 14);
    ~TraceRecorder();

    TraceRecorder(const TraceRecorder&) = delete;
    TraceRecorder& operator=(const TraceRecorder&) = delete;

    /// THE process-wide recorder that instrumented subsystems write to.
    /// Starts disabled; tools/tests flip it on around the run of interest.
    static TraceRecorder& global();

    void setEnabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
    bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

    /// Interns `name` and returns its stable id (same string -> same id).
    /// Call sites cache the id in a function-local static so the steady
    /// state never touches the intern table.
    std::uint32_t internName(std::string_view name);
    /// The interned string for `id` ("?" when unknown).
    std::string nameOf(std::uint32_t id) const;

    /// Records a completed span with explicit timestamps (probeNowNs clock).
    /// No-op while disabled. Exposed raw — rather than only via ScopedSpan —
    /// so tests and exporters can produce deterministic timelines.
    void recordComplete(std::uint32_t nameId, SpanCategory cat,
                        std::uint64_t beginNs, std::uint64_t durNs,
                        std::uint64_t arg = 0);
    /// Records a point event. No-op while disabled.
    void recordInstant(std::uint32_t nameId, SpanCategory cat,
                       std::uint64_t tsNs, std::uint64_t arg = 0);

    /// Copies out every undrained event from every thread's ring (oldest
    /// first per ring, then merged by timestamp) and frees the slots for
    /// reuse. Safe to call mid-run: writers keep recording into the space
    /// behind the consumed tail; events recorded during the drain may land
    /// in this batch or the next, never lost silently.
    std::vector<TraceEvent> drain();

    /// Events accepted into rings since construction (monotonic, survives
    /// drain()). The self-overhead accounting differences this per epoch.
    std::uint64_t recordedEvents() const;
    /// Events discarded because a ring was full.
    std::uint64_t droppedEvents() const;

    std::size_t ringCapacity() const { return capacity_; }
    std::size_t threadsSeen() const;

private:
    struct Ring {
        explicit Ring(std::size_t capacity) : slots(capacity) {}

        std::vector<TraceEvent> slots;
        std::uint32_t tid = 0;
        /// Writer-owned publish cursor (release on store).
        alignas(64) std::atomic<std::uint64_t> head{0};
        /// Drainer-owned consume cursor (release on store).
        alignas(64) std::atomic<std::uint64_t> tail{0};
        /// Writer-owned (singleWriterAdd), read by aggregators.
        alignas(64) std::atomic<std::uint64_t> recorded{0};
        std::atomic<std::uint64_t> dropped{0};
    };

    Ring& ringForThisThread();
    void push(Ring& ring, const TraceEvent& event);

    const std::size_t capacity_;
    const std::uint64_t generation_;
    std::atomic<bool> enabled_{false};

    mutable std::mutex threadsMutex_;
    std::vector<std::unique_ptr<Ring>> threads_;

    mutable std::mutex namesMutex_;
    std::vector<std::string> names_;
    std::unordered_map<std::string, std::uint32_t> nameIds_;

    std::mutex drainMutex_;
};

/// RAII span against the global recorder. Captures the enabled flag once at
/// construction — one relaxed load; a disabled recorder costs nothing else.
class ScopedSpan {
public:
    ScopedSpan(std::uint32_t nameId, SpanCategory cat)
        : ScopedSpan(TraceRecorder::global(), nameId, cat) {}

    ScopedSpan(TraceRecorder& recorder, std::uint32_t nameId, SpanCategory cat)
        : recorder_(recorder.enabled() ? &recorder : nullptr),
          nameId_(nameId),
          category_(cat) {
        if (recorder_) {
            beginNs_ = support::probeNowNs();
        }
    }

    ~ScopedSpan() { end(); }

    /// Closes the span now instead of at scope exit (idempotent) — for
    /// phases that end mid-function without an extra nesting level.
    void end() {
        if (recorder_) {
            recorder_->recordComplete(nameId_, category_, beginNs_,
                                      support::probeNowNs() - beginNs_, arg_);
            recorder_ = nullptr;
        }
    }

    ScopedSpan(const ScopedSpan&) = delete;
    ScopedSpan& operator=(const ScopedSpan&) = delete;

    /// Attaches the event payload (read back from TraceEvent::arg).
    void setArg(std::uint64_t arg) { arg_ = arg; }
    /// True when this span will actually be recorded.
    bool active() const { return recorder_ != nullptr; }

private:
    TraceRecorder* recorder_;
    std::uint64_t beginNs_ = 0;
    std::uint64_t arg_ = 0;
    std::uint32_t nameId_;
    SpanCategory category_;
};

/// Measures the per-event cost of the ENABLED record path on this machine
/// (a private recorder; the global one is untouched) in nanoseconds.
/// Feed the result into adapt::Config::obsCostNs so the overhead model
/// charges tracing against the same budget as the probes it observes.
double calibrateObsCostNs(std::size_t events = 1u << 14);

}  // namespace capi::obs
