#include "obs/export.hpp"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>

#include "scorepsim/profile.hpp"

namespace capi::obs {

namespace {

/// Minimal JSON string escaping (our names are ASCII identifiers, but the
/// emitted document must stay valid whatever callers intern).
std::string jsonEscape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned char>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/// Nanoseconds rendered as a microsecond decimal with exactly 3 fractional
/// digits — deterministic bytes (no %g wobble), full ns resolution.
std::string microsFixed(std::uint64_t ns) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%" PRIu64 ".%03" PRIu64, ns / 1000,
                  ns % 1000);
    return buf;
}

/// A metric value: integers exact, non-integers with shortest %.17g.
std::string metricValue(double v) {
    if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 9e15) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
        return buf;
    }
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

/// Splits `capi_foo_total{site="x"}` into family and label-list text.
struct NameParts {
    std::string family;
    std::string labels;  ///< Without braces; empty when unlabeled.
};

NameParts splitName(const std::string& name) {
    std::size_t brace = name.find('{');
    if (brace == std::string::npos) {
        return {name, ""};
    }
    std::string labels = name.substr(brace + 1);
    if (!labels.empty() && labels.back() == '}') {
        labels.pop_back();
    }
    return {name.substr(0, brace), labels};
}

/// Rejoins a family with its labels plus an extra pair (for histogram `le`).
std::string withLabels(const std::string& family, const std::string& labels,
                       const std::string& extra = "") {
    std::string joined = labels;
    if (!extra.empty()) {
        if (!joined.empty()) {
            joined += ",";
        }
        joined += extra;
    }
    if (joined.empty()) {
        return family;
    }
    return family + "{" + joined + "}";
}

}  // namespace

std::string toChromeTraceJson(
    const std::vector<TraceEvent>& events,
    const std::function<std::string(std::uint32_t)>& nameOf) {
    std::string out = "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
    bool first = true;
    for (const TraceEvent& e : events) {
        if (!first) {
            out += ",";
        }
        first = false;
        out += "\n{\"name\":\"" + jsonEscape(nameOf(e.nameId)) + "\"";
        out += ",\"cat\":\"";
        out += spanCategoryName(e.category);
        out += "\"";
        if (e.instant) {
            out += ",\"ph\":\"i\",\"s\":\"t\"";
        } else {
            out += ",\"ph\":\"X\"";
        }
        out += ",\"ts\":" + microsFixed(e.tsNs);
        if (!e.instant) {
            out += ",\"dur\":" + microsFixed(e.durNs);
        }
        out += ",\"pid\":0,\"tid\":" + std::to_string(e.tid);
        out += ",\"args\":{\"arg\":" + std::to_string(e.arg) + "}}";
    }
    out += "\n]}\n";
    return out;
}

std::string toPrometheusText(const std::vector<Sample>& samples) {
    std::string out;
    std::string lastFamily;
    for (const Sample& s : samples) {
        NameParts parts = splitName(s.name);
        if (parts.family != lastFamily) {
            out += "# TYPE " + parts.family + " ";
            switch (s.kind) {
            case MetricKind::Counter:
                out += "counter";
                break;
            case MetricKind::Gauge:
                out += "gauge";
                break;
            case MetricKind::Histogram:
                out += "histogram";
                break;
            }
            out += "\n";
            lastFamily = parts.family;
        }
        if (s.kind == MetricKind::Histogram) {
            for (const auto& [bound, cumulative] : s.buckets) {
                if (std::isinf(bound)) {
                    continue;  // Covered by the mandatory +Inf line below.
                }
                out += withLabels(parts.family + "_bucket", parts.labels,
                                  "le=\"" + metricValue(bound) + "\"") +
                       " " + std::to_string(cumulative) + "\n";
            }
            out += withLabels(parts.family + "_bucket", parts.labels,
                              "le=\"+Inf\"") +
                   " " + std::to_string(s.count) + "\n";
            out += withLabels(parts.family + "_sum", parts.labels) + " " +
                   metricValue(s.value) + "\n";
            out += withLabels(parts.family + "_count", parts.labels) + " " +
                   std::to_string(s.count) + "\n";
        } else {
            out += s.name + " " + metricValue(s.value) + "\n";
        }
    }
    return out;
}

std::string toCollapsedStacks(
    const scorep::ProfileTree& tree,
    const std::function<std::string(std::uint32_t)>& regionName) {
    std::vector<std::uint64_t> exclusive = tree.exclusiveAll();
    std::vector<std::string> lines;

    // Iterative DFS carrying the semicolon-joined path. The synthetic root
    // is named "root" so its own exclusive time (if any) still shows up.
    struct Frame {
        std::uint32_t node;
        std::string path;
    };
    std::vector<Frame> stack;
    stack.push_back({static_cast<std::uint32_t>(tree.root()), "root"});
    while (!stack.empty()) {
        Frame frame = std::move(stack.back());
        stack.pop_back();
        if (exclusive[frame.node] > 0) {
            lines.push_back(frame.path + " " +
                            std::to_string(exclusive[frame.node]));
        }
        for (std::uint32_t child = tree.firstChild(frame.node);
             child != scorep::ProfileTree::kInvalidNode;
             child = tree.nextSibling(child)) {
            stack.push_back(
                {child, frame.path + ";" + regionName(tree.regionOf(child))});
        }
    }
    // Deterministic output independent of sibling-chain insertion order.
    std::sort(lines.begin(), lines.end());
    std::string out;
    for (const std::string& line : lines) {
        out += line;
        out += "\n";
    }
    return out;
}

}  // namespace capi::obs
