// Process-wide self-observability metrics registry.
//
// Every subsystem that keeps runtime health counters (measurement probe
// counts, selector-cache survival, CSR patch-vs-rebuild, XRay transactions,
// controller health, MPI evictions, fault sites) registers here so one
// snapshot describes the whole control plane — no more per-subsystem
// accessor plumbing in tools. Two registration styles:
//
//  * Owned metrics — counter()/gauge()/histogram() return a stable reference
//    to a padded atomic cell. Registration is once per name (a second call
//    with the same name returns the same cell); the WRITE path is lock-free
//    in the PR 5 counter style: one relaxed atomic RMW, no registry lock,
//    safe from any thread including measurement hot paths.
//
//  * Collectors — callbacks that append Samples at snapshot() time, for
//    subsystems whose counters already exist in their own lock-free form
//    (Measurement's per-thread padded counters, SelectorCache's sharded
//    stats). The subsystem keeps its write path untouched and pays only at
//    read time.
//
// Naming scheme (Prometheus-compatible): `capi_<subsystem>_<metric>` with
// `_total` on monotonic counters; instance/site dimensions ride as embedded
// labels, e.g. `capi_fault_fires_total{site="xray.mprotect"}`. The text
// exposition in obs/export.hpp renders this directly.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace capi::obs {

enum class MetricKind : std::uint8_t { Counter, Gauge, Histogram };

/// One exported value at snapshot time. `name` may embed Prometheus labels
/// (`...{site="x"}`); exporters group families by the name up to the brace.
struct Sample {
    std::string name;
    MetricKind kind = MetricKind::Gauge;
    double value = 0.0;        ///< Counter count / gauge value / histogram sum.
    std::uint64_t count = 0;   ///< Histogram observation count.
    /// Histogram buckets as (upper bound, cumulative count), last = +Inf.
    std::vector<std::pair<double, std::uint64_t>> buckets;
};

/// Monotonic counter cell. Padded to its own cacheline so unrelated metrics
/// never write-share; add() is one relaxed RMW (multi-writer safe — a
/// single-writer caller on a hot path should keep its own PR 5-style
/// per-thread counters and fold through a collector instead).
class Counter {
public:
    void add(std::uint64_t delta = 1) {
        value_.fetch_add(delta, std::memory_order_relaxed);
    }
    std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

private:
    alignas(64) std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (stored as double bits).
class Gauge {
public:
    void set(double value) {
        bits_.store(std::bit_cast<std::uint64_t>(value),
                    std::memory_order_relaxed);
    }
    double value() const {
        return std::bit_cast<double>(bits_.load(std::memory_order_relaxed));
    }

private:
    alignas(64) std::atomic<std::uint64_t> bits_{0};
};

/// Log2-bucketed histogram of non-negative integer observations (latencies
/// in ns, span counts). Bucket b holds values of bit-width b, i.e. upper
/// bound 2^b - 1; observe() is two relaxed RMWs, lock-free.
class Histogram {
public:
    static constexpr std::size_t kBuckets = 65;  ///< bit_width(v) in [0, 64].

    void observe(std::uint64_t value) {
        buckets_[std::bit_width(value)].fetch_add(1, std::memory_order_relaxed);
        sum_.fetch_add(value, std::memory_order_relaxed);
    }
    std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
    std::uint64_t bucketCount(std::size_t b) const {
        return buckets_[b].load(std::memory_order_relaxed);
    }

private:
    alignas(64) std::atomic<std::uint64_t> sum_{0};
    std::atomic<std::uint64_t> buckets_[kBuckets] = {};
};

class MetricsRegistry {
public:
    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry&) = delete;
    MetricsRegistry& operator=(const MetricsRegistry&) = delete;

    /// THE process-wide registry every subsystem registers into.
    static MetricsRegistry& global();

    /// Registration-once lookup: the first call creates the cell, later
    /// calls with the same name return the SAME cell (so two call sites
    /// naming one logical counter share it). Throws support::Error when the
    /// name is already registered with a different kind. The returned
    /// reference is stable for the registry's lifetime.
    Counter& counter(const std::string& name);
    Gauge& gauge(const std::string& name);
    Histogram& histogram(const std::string& name);

    /// Pull-side collector: invoked under the registry mutex at snapshot()
    /// time to append Samples. Returns a handle for removeCollector();
    /// objects shorter-lived than the registry MUST unregister in their
    /// destructor. Collectors must not call back into this registry.
    std::uint64_t addCollector(std::function<void(std::vector<Sample>&)> fn);
    void removeCollector(std::uint64_t id);

    /// All owned metrics plus every collector's samples, sorted by name.
    /// Owned-metric reads are relaxed (mid-run values may trail in-flight
    /// writers by a few increments — fine for monitoring); collectors define
    /// their own mid-run semantics.
    std::vector<Sample> snapshot() const;

    std::size_t metricCount() const;
    std::size_t collectorCount() const;

private:
    struct Entry {
        std::string name;
        MetricKind kind;
        // At most one is engaged, per kind; deque gives stable addresses.
        Counter counter;
        Gauge gauge;
        std::unique_ptr<Histogram> histogram;
    };

    Entry& entryFor(const std::string& name, MetricKind kind);

    mutable std::mutex mutex_;
    std::deque<Entry> entries_;
    std::vector<std::pair<std::string, std::size_t>> byName_;
    std::uint64_t nextCollectorId_ = 1;
    std::vector<std::pair<std::uint64_t,
                          std::function<void(std::vector<Sample>&)>>>
        collectors_;
};

}  // namespace capi::obs
