#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/error.hpp"

namespace capi::obs {

MetricsRegistry& MetricsRegistry::global() {
    static MetricsRegistry registry;
    return registry;
}

MetricsRegistry::Entry& MetricsRegistry::entryFor(const std::string& name,
                                                  MetricKind kind) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = std::lower_bound(
        byName_.begin(), byName_.end(), name,
        [](const auto& pair, const std::string& key) { return pair.first < key; });
    if (it != byName_.end() && it->first == name) {
        Entry& existing = entries_[it->second];
        if (existing.kind != kind) {
            throw support::Error("metric '" + name +
                                 "' already registered with a different kind");
        }
        return existing;
    }
    entries_.emplace_back();
    Entry& entry = entries_.back();
    entry.name = name;
    entry.kind = kind;
    if (kind == MetricKind::Histogram) {
        entry.histogram = std::make_unique<Histogram>();
    }
    byName_.insert(it, {name, entries_.size() - 1});
    return entry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
    return entryFor(name, MetricKind::Counter).counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
    return entryFor(name, MetricKind::Gauge).gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
    return *entryFor(name, MetricKind::Histogram).histogram;
}

std::uint64_t MetricsRegistry::addCollector(
    std::function<void(std::vector<Sample>&)> fn) {
    std::lock_guard<std::mutex> lock(mutex_);
    std::uint64_t id = nextCollectorId_++;
    collectors_.emplace_back(id, std::move(fn));
    return id;
}

void MetricsRegistry::removeCollector(std::uint64_t id) {
    std::lock_guard<std::mutex> lock(mutex_);
    std::erase_if(collectors_, [id](const auto& pair) { return pair.first == id; });
}

std::vector<Sample> MetricsRegistry::snapshot() const {
    std::vector<Sample> samples;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        samples.reserve(entries_.size());
        for (const Entry& entry : entries_) {
            Sample s;
            s.name = entry.name;
            s.kind = entry.kind;
            switch (entry.kind) {
            case MetricKind::Counter:
                s.value = static_cast<double>(entry.counter.value());
                break;
            case MetricKind::Gauge:
                s.value = entry.gauge.value();
                break;
            case MetricKind::Histogram: {
                const Histogram& h = *entry.histogram;
                std::uint64_t cumulative = 0;
                for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
                    std::uint64_t n = h.bucketCount(b);
                    if (n == 0) {
                        continue;
                    }
                    cumulative += n;
                    // Bucket b holds values of bit-width b: upper bound 2^b-1.
                    double bound = b >= 64
                                       ? std::numeric_limits<double>::infinity()
                                       : std::ldexp(1.0, static_cast<int>(b)) - 1.0;
                    s.buckets.emplace_back(bound, cumulative);
                }
                s.count = cumulative;
                s.value = static_cast<double>(h.sum());
                break;
            }
            }
            samples.push_back(std::move(s));
        }
        for (const auto& [id, fn] : collectors_) {
            (void)id;
            fn(samples);
        }
    }
    std::sort(samples.begin(), samples.end(),
              [](const Sample& a, const Sample& b) { return a.name < b.name; });
    return samples;
}

std::size_t MetricsRegistry::metricCount() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

std::size_t MetricsRegistry::collectorCount() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return collectors_.size();
}

}  // namespace capi::obs
