#include "obs/trace.hpp"

#include <algorithm>
#include <bit>

namespace capi::obs {

namespace {
using RingCache = support::ThreadLocalCache<TraceRecorder>;
}  // namespace

const char* spanCategoryName(SpanCategory cat) {
    switch (cat) {
    case SpanCategory::Epoch:
        return "epoch";
    case SpanCategory::Model:
        return "model";
    case SpanCategory::Plan:
        return "plan";
    case SpanCategory::Patch:
        return "patch";
    case SpanCategory::Collective:
        return "collective";
    case SpanCategory::Fault:
        return "fault";
    case SpanCategory::Compaction:
        return "compaction";
    case SpanCategory::Tool:
        return "tool";
    case SpanCategory::Fleet:
        return "fleet";
    }
    return "?";
}

TraceRecorder::TraceRecorder(std::size_t ringCapacity)
    : capacity_(std::bit_ceil(std::max<std::size_t>(ringCapacity, 2))),
      generation_(support::nextGenerationStamp()) {}

TraceRecorder::~TraceRecorder() {
    // Stale ThreadLocalCache entries on other threads are neutralized by the
    // generation stamp; only this thread's entry can be dropped eagerly.
    RingCache::invalidate(this);
}

TraceRecorder& TraceRecorder::global() {
    static TraceRecorder recorder;
    return recorder;
}

std::uint32_t TraceRecorder::internName(std::string_view name) {
    std::lock_guard<std::mutex> lock(namesMutex_);
    auto it = nameIds_.find(std::string(name));
    if (it != nameIds_.end()) {
        return it->second;
    }
    auto id = static_cast<std::uint32_t>(names_.size());
    names_.emplace_back(name);
    nameIds_.emplace(names_.back(), id);
    return id;
}

std::string TraceRecorder::nameOf(std::uint32_t id) const {
    std::lock_guard<std::mutex> lock(namesMutex_);
    if (id >= names_.size()) {
        return "?";
    }
    return names_[id];
}

TraceRecorder::Ring& TraceRecorder::ringForThisThread() {
    if (void* cached = RingCache::lookup(this, generation_)) {
        return *static_cast<Ring*>(cached);
    }
    std::lock_guard<std::mutex> lock(threadsMutex_);
    threads_.push_back(std::make_unique<Ring>(capacity_));
    Ring* ring = threads_.back().get();
    ring->tid = static_cast<std::uint32_t>(threads_.size() - 1);
    RingCache::store(this, generation_, ring);
    return *ring;
}

void TraceRecorder::push(Ring& ring, const TraceEvent& event) {
    std::uint64_t head = ring.head.load(std::memory_order_relaxed);
    std::uint64_t tail = ring.tail.load(std::memory_order_acquire);
    if (head - tail == capacity_) {
        support::singleWriterAdd<std::uint64_t>(ring.dropped, 1);
        return;
    }
    ring.slots[head & (capacity_ - 1)] = event;
    ring.head.store(head + 1, std::memory_order_release);
    support::singleWriterAdd<std::uint64_t>(ring.recorded, 1);
}

void TraceRecorder::recordComplete(std::uint32_t nameId, SpanCategory cat,
                                   std::uint64_t beginNs, std::uint64_t durNs,
                                   std::uint64_t arg) {
    if (!enabled()) {
        return;
    }
    Ring& ring = ringForThisThread();
    TraceEvent event;
    event.tsNs = beginNs;
    event.durNs = durNs;
    event.arg = arg;
    event.nameId = nameId;
    event.tid = ring.tid;
    event.category = cat;
    event.instant = false;
    push(ring, event);
}

void TraceRecorder::recordInstant(std::uint32_t nameId, SpanCategory cat,
                                  std::uint64_t tsNs, std::uint64_t arg) {
    if (!enabled()) {
        return;
    }
    Ring& ring = ringForThisThread();
    TraceEvent event;
    event.tsNs = tsNs;
    event.arg = arg;
    event.nameId = nameId;
    event.tid = ring.tid;
    event.category = cat;
    event.instant = true;
    push(ring, event);
}

std::vector<TraceEvent> TraceRecorder::drain() {
    // drainMutex_ serializes consumers (each ring is strictly SPSC);
    // threadsMutex_ pins the ring list while we walk it.
    std::lock_guard<std::mutex> drainLock(drainMutex_);
    std::vector<TraceEvent> events;
    {
        std::lock_guard<std::mutex> lock(threadsMutex_);
        for (const auto& ringPtr : threads_) {
            Ring& ring = *ringPtr;
            std::uint64_t tail = ring.tail.load(std::memory_order_relaxed);
            std::uint64_t head = ring.head.load(std::memory_order_acquire);
            for (std::uint64_t i = tail; i != head; ++i) {
                events.push_back(ring.slots[i & (capacity_ - 1)]);
            }
            ring.tail.store(head, std::memory_order_release);
        }
    }
    std::stable_sort(events.begin(), events.end(),
                     [](const TraceEvent& a, const TraceEvent& b) {
                         return a.tsNs < b.tsNs;
                     });
    return events;
}

std::uint64_t TraceRecorder::recordedEvents() const {
    std::lock_guard<std::mutex> lock(threadsMutex_);
    std::uint64_t total = 0;
    for (const auto& ring : threads_) {
        total += ring->recorded.load(std::memory_order_relaxed);
    }
    return total;
}

std::uint64_t TraceRecorder::droppedEvents() const {
    std::lock_guard<std::mutex> lock(threadsMutex_);
    std::uint64_t total = 0;
    for (const auto& ring : threads_) {
        total += ring->dropped.load(std::memory_order_relaxed);
    }
    return total;
}

std::size_t TraceRecorder::threadsSeen() const {
    std::lock_guard<std::mutex> lock(threadsMutex_);
    return threads_.size();
}

double calibrateObsCostNs(std::size_t events) {
    events = std::max<std::size_t>(events, 1024);
    // A private recorder large enough that calibration measures the accept
    // path, not the (cheaper) overflow path.
    TraceRecorder recorder(std::bit_ceil(events));
    recorder.setEnabled(true);
    const std::uint32_t name = recorder.internName("obs.calibrate");
    // Warm the thread ring and the icache before timing.
    for (std::size_t i = 0; i < 64; ++i) {
        recorder.recordComplete(name, SpanCategory::Tool, i, 1, i);
    }
    (void)recorder.drain();
    const std::uint64_t begin = support::probeNowNs();
    for (std::size_t i = 0; i < events; ++i) {
        recorder.recordComplete(name, SpanCategory::Tool,
                                support::probeNowNs(), 1, i);
    }
    const std::uint64_t end = support::probeNowNs();
    return static_cast<double>(end - begin) / static_cast<double>(events);
}

}  // namespace capi::obs
