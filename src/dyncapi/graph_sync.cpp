#include "dyncapi/graph_sync.hpp"

#include <algorithm>
#include <unordered_set>

namespace capi::dyncapi {

DsoGraphBinding::DsoGraphBinding(const cg::CallGraph& graph,
                                 const std::vector<std::string>& names) {
    names_.reserve(names.size());
    for (const std::string& name : names) {
        if (graph.lookup(name) != cg::kInvalidFunction) {
            names_.push_back(name);
        }
    }
}

std::size_t DsoGraphBinding::unload(cg::CallGraph& graph) {
    if (!loaded_) {
        return 0;
    }
    descs_.clear();
    edges_.clear();

    std::vector<cg::FunctionId> ids;
    std::unordered_set<cg::FunctionId> member;
    for (const std::string& name : names_) {
        cg::FunctionId id = graph.lookup(name);
        if (id != cg::kInvalidFunction && graph.alive(id)) {
            ids.push_back(id);
            member.insert(id);
        }
    }

    // Capture descs and incident edges before the tombstones wipe them.
    // Edges between two members would otherwise be captured twice (once per
    // endpoint); record each from the member that owns the forward direction
    // and skip the mirror.
    for (cg::FunctionId id : ids) {
        descs_.push_back(graph.desc(id));
        for (cg::FunctionId callee : graph.callees(id)) {
            edges_.push_back({graph.name(id), graph.name(callee), false});
        }
        for (cg::FunctionId caller : graph.callers(id)) {
            if (member.count(caller) == 0) {
                edges_.push_back({graph.name(caller), graph.name(id), false});
            }
        }
        for (cg::FunctionId base : graph.overrides(id)) {
            edges_.push_back({graph.name(base), graph.name(id), true});
        }
        for (cg::FunctionId derived : graph.overriddenBy(id)) {
            if (member.count(derived) == 0) {
                edges_.push_back({graph.name(id), graph.name(derived), true});
            }
        }
    }

    graph.removeFunctions(ids);
    loaded_ = false;
    return ids.size();
}

std::size_t DsoGraphBinding::reload(cg::CallGraph& graph) {
    if (loaded_) {
        return 0;
    }
    for (const cg::FunctionDesc& desc : descs_) {
        graph.addFunction(desc);
    }
    for (const EdgeByName& edge : edges_) {
        cg::FunctionId from = graph.lookup(edge.from);
        cg::FunctionId to = graph.lookup(edge.to);
        if (from == cg::kInvalidFunction || to == cg::kInvalidFunction) {
            continue;  // The other endpoint disappeared while we were out.
        }
        if (edge.isOverride) {
            graph.addOverride(from, to);
        } else {
            graph.addCallEdge(from, to);
        }
    }
    loaded_ = true;
    return descs_.size();
}

}  // namespace capi::dyncapi
