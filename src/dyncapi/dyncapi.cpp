#include "dyncapi/dyncapi.hpp"

#include <mutex>
#include <unordered_set>

#include "binsim/execution_engine.hpp"
#include "binsim/nm.hpp"
#include "scorepsim/cyg_adapter.hpp"
#include "support/timer.hpp"
#include "talpsim/talp.hpp"

namespace capi::dyncapi {

// ---------------------------------------------------------------- backends --

/// Forwards XRay events to __cyg_profile_func_enter/exit with the function's
/// address — the generic interface Score-P uses under Clang (Sec. V-C1).
struct DynCapi::CygBackend {
    DynCapi* owner = nullptr;
    scorep::CygProfileAdapter* adapter = nullptr;

    static void handle(void* context, xray::PackedId id, xray::XRayEntryType type) {
        auto* self = static_cast<CygBackend*>(context);
        std::uint64_t address = self->owner->addressOf(id);
        switch (type) {
            case xray::XRayEntryType::Entry:
                self->adapter->funcEnter(address, 0);
                break;
            case xray::XRayEntryType::Exit:
            case xray::XRayEntryType::TailExit:
                self->adapter->funcExit(address, 0);
                break;
        }
    }
};

/// Forwards XRay events to TALP monitoring regions (Sec. V-C2): a region map
/// stores the handle per function; regions are registered lazily on first
/// entry and retried while unregistered (registration fails before MPI_Init).
struct DynCapi::TalpBackend {
    DynCapi* owner = nullptr;
    talp::TalpRuntime* talp = nullptr;

    struct RegionSlot {
        talp::MonitorHandle handle = talp::MonitorHandle::invalid();
    };
    std::mutex mutex;
    std::unordered_map<xray::PackedId, RegionSlot> regions;
    std::uint64_t failedRegistrations = 0;

    static void handle(void* context, xray::PackedId id, xray::XRayEntryType type) {
        auto* self = static_cast<TalpBackend*>(context);
        binsim::RankState* rank = binsim::currentRankState();
        if (rank == nullptr) {
            return;  // Event outside a simulated rank (e.g. startup code).
        }
        if (type == xray::XRayEntryType::Entry) {
            talp::MonitorHandle handle = self->handleFor(id, rank->rank);
            if (handle.valid()) {
                self->talp->regionStart(handle, rank->rank, rank->virtualNs);
            }
        } else {
            talp::MonitorHandle handle;
            {
                std::lock_guard<std::mutex> lock(self->mutex);
                auto it = self->regions.find(id);
                if (it == self->regions.end()) {
                    return;
                }
                handle = it->second.handle;
            }
            if (handle.valid()) {
                self->talp->regionStop(handle, rank->rank, rank->virtualNs);
            }
        }
    }

    talp::MonitorHandle handleFor(xray::PackedId id, int rank) {
        {
            std::lock_guard<std::mutex> lock(mutex);
            auto it = regions.find(id);
            if (it != regions.end() && it->second.handle.valid()) {
                return it->second.handle;
            }
        }
        // Register (or retry) outside the map lock; TALP locks internally.
        std::optional<std::string> name = owner->nameOf(id);
        if (!name.has_value()) {
            return talp::MonitorHandle::invalid();
        }
        talp::MonitorHandle handle = talp->regionRegister(*name, rank);
        std::lock_guard<std::mutex> lock(mutex);
        RegionSlot& slot = regions[id];
        if (!handle.valid()) {
            if (!slot.handle.valid()) {
                ++failedRegistrations;
            }
            return slot.handle;
        }
        slot.handle = handle;
        return handle;
    }
};

// ------------------------------------------------------------------ DynCapi --

DynCapi::DynCapi(binsim::Process& process) : process_(&process) {
    resolveAllObjects();
}

DynCapi::~DynCapi() { detachHandler(); }

void DynCapi::resolveAllObjects() {
    support::Timer timer;
    addressByObject_.assign(xray::kMaxObjectId + 1, {});
    nameByObject_.assign(xray::kMaxObjectId + 1, {});
    packedByName_.clear();
    unresolvable_ = 0;
    sledded_ = 0;
    objectsScanned_ = 0;

    xray::XRayRuntime& xr = process_->xray();
    const binsim::CompiledProgram& program = process_->program();

    // Candidate objects: the executable plus every DSO; find their XRay
    // object ids from the process (registration order).
    std::vector<std::pair<xray::ObjectId, const binsim::ObjectImage*>> objects;
    objects.emplace_back(xray::kMainExecutableObjectId, &program.executable);
    for (std::size_t d = 0; d < program.dsos.size(); ++d) {
        std::optional<xray::ObjectId> id =
            process_->xrayObjectId(static_cast<int>(d));
        if (id.has_value() && xr.objectRegistered(*id)) {
            objects.emplace_back(*id, &program.dsos[d]);
        }
    }

    for (const auto& [objectId, image] : objects) {
        ++objectsScanned_;
        std::uint32_t functions = xr.functionCount(objectId);
        addressByObject_[objectId].assign(functions, 0);
        nameByObject_[objectId].assign(functions, std::string());

        // nm dump translated by load base: runtime address -> symbol name.
        std::unordered_map<std::uint64_t, const binsim::NmEntry*> byAddress;
        std::vector<binsim::NmEntry> symbols = binsim::nmDump(*image);
        std::uint64_t delta = image->loadBase - image->linkBase;
        byAddress.reserve(symbols.size());
        for (const binsim::NmEntry& symbol : symbols) {
            byAddress.emplace(symbol.address + delta, &symbol);
        }

        // Cross-check every XRay function id against the translated symbols.
        for (std::uint32_t fid = 0; fid < functions; ++fid) {
            xray::PackedId pid = xray::packId(objectId, fid);
            std::uint64_t address = xr.functionAddress(pid);
            if (address == 0) {
                continue;
            }
            ++sledded_;
            addressByObject_[objectId][fid] = address;
            auto it = byAddress.find(address);
            if (it == byAddress.end()) {
                ++unresolvable_;  // Hidden symbol: nm cannot see it.
                continue;
            }
            nameByObject_[objectId][fid] = it->second->name;
            packedByName_.emplace(it->second->name, pid);
        }
    }
    resolutionSeconds_ = timer.elapsedSec();
}

std::optional<xray::PackedId> DynCapi::resolveName(const std::string& name) const {
    auto it = packedByName_.find(name);
    if (it == packedByName_.end()) {
        return std::nullopt;
    }
    return it->second;
}

std::optional<std::string> DynCapi::nameOf(xray::PackedId id) const {
    xray::ObjectId objectId = xray::objectIdOf(id);
    xray::FunctionId fid = xray::functionIdOf(id);
    if (objectId >= nameByObject_.size() || fid >= nameByObject_[objectId].size() ||
        nameByObject_[objectId][fid].empty()) {
        return std::nullopt;
    }
    return nameByObject_[objectId][fid];
}

std::uint64_t DynCapi::addressOf(xray::PackedId id) const {
    xray::ObjectId objectId = xray::objectIdOf(id);
    xray::FunctionId fid = xray::functionIdOf(id);
    if (objectId >= addressByObject_.size() ||
        fid >= addressByObject_[objectId].size()) {
        return 0;
    }
    return addressByObject_[objectId][fid];
}

InitStats DynCapi::applyPolicy(const select::InstrumentationPolicy& policy) {
    InitStats stats;
    stats.symbolResolutionSeconds = resolutionSeconds_;
    stats.objectsScanned = objectsScanned_;
    stats.sleddedFunctions = sledded_;
    stats.unresolvableFunctions = unresolvable_;
    stats.requestedFunctions = policy.functions.size();

    support::Timer timer;
    xray::XRayRuntime& xr = process_->xray();
    const std::uint64_t pagesBefore = process_->memory().pagesMadeWritable();
    xr.unpatchAll();
    // Reference path: per-function patching, exactly the unpatch-everything-
    // then-patch discipline applyIc always had. Sampled tags ride behind in
    // one zero-page retier pass.
    std::vector<xray::XRayRuntime::TieredFlip> retier;
    for (std::size_t i = 0; i < policy.functions.size(); ++i) {
        const std::string& name = policy.functions[i];
        std::optional<xray::PackedId> pid = resolvePolicyEntry(policy, name);
        if (pid.has_value() && xr.patchFunction(*pid)) {
            ++stats.patchedFunctions;
            if (policy.regions[i].tier == select::Tier::Sampled) {
                ++stats.sampledFunctions;
                retier.push_back({*pid, xray::XRayRuntime::kSampledTier});
            }
        } else {
            ++stats.requestedUnavailable;
        }
    }
    if (!retier.empty()) {
        xr.patchDeltaTiered({}, {}, retier);
    }
    stats.pagesTouched = process_->memory().pagesMadeWritable() - pagesBefore;
    stats.patchSeconds = timer.elapsedSec();
    stats.totalSeconds = stats.symbolResolutionSeconds + stats.patchSeconds;
    currentPolicy_ = policy;
    syncGates(currentPolicy_);
    return stats;
}

InitStats DynCapi::applyIc(const select::InstrumentationConfig& ic) {
    return applyPolicy(select::InstrumentationPolicy::fullOf(ic));
}

std::optional<xray::PackedId> DynCapi::resolveIcEntry(
    const select::InstrumentationConfig& ic, const std::string& name) const {
    auto staticIt = ic.staticIds.find(name);
    if (staticIt != ic.staticIds.end()) {
        return staticIt->second;  // Static-ID extension: no name resolution.
    }
    return resolveName(name);
}

std::optional<xray::PackedId> DynCapi::resolvePolicyEntry(
    const select::InstrumentationPolicy& policy, const std::string& name) const {
    auto staticIt = policy.staticIds.find(name);
    if (staticIt != policy.staticIds.end()) {
        return staticIt->second;
    }
    return resolveName(name);
}

DeltaStats DynCapi::applyPolicyDelta(const select::InstrumentationPolicy& policy) {
    DeltaStats stats;
    stats.requestedFunctions = policy.functions.size();

    support::Timer timer;
    xray::XRayRuntime& xr = process_->xray();

    // Requested (function, tier) set, resolved to live packed ids. An entry
    // that resolves but has no live sled (its object was dlclosed) counts as
    // unavailable here, matching applyPolicy's failed patchFunction.
    std::unordered_map<xray::PackedId, std::uint8_t> target;
    target.reserve(policy.functions.size());
    for (std::size_t i = 0; i < policy.functions.size(); ++i) {
        std::optional<xray::PackedId> pid =
            resolvePolicyEntry(policy, policy.functions[i]);
        if (pid.has_value() && xr.functionAddress(*pid) != 0) {
            target[*pid] = policy.regions[i].tier == select::Tier::Sampled
                               ? xray::XRayRuntime::kSampledTier
                               : xray::XRayRuntime::kFullTier;
        } else {
            ++stats.requestedUnavailable;
        }
    }

    // The currently-patched set and its tiers are read from the runtime
    // itself, so state the previous policy never saw — a re-registered DSO
    // whose sleds reset to NOP, or sleds another caller flipped — diffs
    // correctly. Same-set tier changes become zero-page retier requests.
    std::vector<xray::PackedId> toUnpatch;
    std::vector<xray::XRayRuntime::TieredFlip> toRetier;
    for (const auto& [pid, liveTag] : xr.patchedFunctionTiers()) {
        auto it = target.find(pid);
        if (it == target.end()) {
            toUnpatch.push_back(pid);
            continue;
        }
        if (it->second != liveTag) {
            toRetier.push_back({pid, it->second});
            if (it->second == xray::XRayRuntime::kFullTier) {
                ++stats.functionsPromoted;
            } else {
                ++stats.functionsDemoted;
            }
        } else {
            ++stats.functionsUnchanged;
        }
        target.erase(it);
    }
    std::vector<xray::XRayRuntime::TieredFlip> toPatch;
    toPatch.reserve(target.size());
    for (const auto& [pid, tag] : target) {
        toPatch.push_back({pid, tag});
    }

    xray::XRayRuntime::DeltaPatchStats patch =
        xr.patchDeltaTiered(toPatch, toUnpatch, toRetier);
    // Per-list unavailability: a toPatch entry that went stale between the
    // pre-check above and patchDelta (dlclose raced us) is a failed request,
    // like applyPolicy's failed patchFunction; a stale toUnpatch entry is
    // simply already effectively unpatched and not a policy request at all.
    stats.functionsPatched = toPatch.size() - patch.unavailablePatch;
    stats.functionsUnpatched = toUnpatch.size() - patch.unavailableUnpatch;
    stats.requestedUnavailable += patch.unavailablePatch;
    stats.pagesTouched = patch.pagesMadeWritable;
    stats.patchSeconds = timer.elapsedSec();
    currentPolicy_ = policy;
    syncGates(currentPolicy_);
    return stats;
}

DeltaStats DynCapi::applyIcDelta(const select::InstrumentationConfig& ic) {
    return applyPolicyDelta(select::InstrumentationPolicy::fullOf(ic));
}

void DynCapi::syncGates(const select::InstrumentationPolicy& policy) {
    if (cygBackend_ == nullptr || cygBackend_->adapter == nullptr) {
        return;
    }
    scorep::Measurement& measurement = cygBackend_->adapter->measurement();
    measurement.clearAllSampling();
    for (std::size_t i = 0; i < policy.functions.size(); ++i) {
        const select::RegionPolicy& region = policy.regions[i];
        if (region.tier != select::Tier::Sampled) {
            continue;
        }
        // Defining by name yields the same handle the adapter's resolver
        // produces for events of this function, so the gate and the events
        // meet at one region.
        scorep::RegionHandle handle =
            measurement.defineRegion(policy.functions[i]);
        measurement.setRegionSampling(handle, region.sampling.everyN,
                                      region.sampling.minIntervalNs);
    }
}

InitStats DynCapi::patchAll() {
    InitStats stats;
    stats.symbolResolutionSeconds = resolutionSeconds_;
    stats.objectsScanned = objectsScanned_;
    stats.sleddedFunctions = sledded_;
    stats.unresolvableFunctions = unresolvable_;
    support::Timer timer;
    xray::PatchStats patched = process_->xray().patchAll();
    stats.patchedFunctions = sledded_;
    stats.requestedFunctions = sledded_;
    stats.pagesTouched = patched.pagesMadeWritable;
    stats.patchSeconds = timer.elapsedSec();
    stats.totalSeconds = stats.symbolResolutionSeconds + stats.patchSeconds;
    return stats;
}

void DynCapi::unpatchAll() { process_->xray().unpatchAll(); }

void DynCapi::attachCygHandler(scorep::CygProfileAdapter& adapter) {
    detachHandler();
    cygBackend_ = std::make_unique<CygBackend>();
    cygBackend_->owner = this;
    cygBackend_->adapter = &adapter;
    process_->xray().setHandler(&CygBackend::handle, cygBackend_.get());
    // A freshly attached measurement starts with empty gates; re-sync them
    // from the live policy so Sampled regions stay sampled across per-epoch
    // Measurement swaps.
    syncGates(currentPolicy_);
}

void DynCapi::attachTalpHandler(talp::TalpRuntime& talp) {
    detachHandler();
    talpBackend_ = std::make_unique<TalpBackend>();
    talpBackend_->owner = this;
    talpBackend_->talp = &talp;
    process_->xray().setHandler(&TalpBackend::handle, talpBackend_.get());
}

void DynCapi::detachHandler() {
    process_->xray().clearHandler();
    cygBackend_.reset();
    talpBackend_.reset();
}

std::uint64_t DynCapi::talpFailedRegistrations() const {
    if (talpBackend_ == nullptr) {
        return 0;
    }
    std::lock_guard<std::mutex> lock(talpBackend_->mutex);
    return talpBackend_->failedRegistrations;
}

}  // namespace capi::dyncapi
