#include "dyncapi/dyncapi.hpp"

#include <mutex>
#include <unordered_set>

#include "binsim/execution_engine.hpp"
#include "binsim/nm.hpp"
#include "scorepsim/cyg_adapter.hpp"
#include "support/timer.hpp"
#include "talpsim/talp.hpp"

namespace capi::dyncapi {

// ---------------------------------------------------------------- backends --

/// Forwards XRay events to __cyg_profile_func_enter/exit with the function's
/// address — the generic interface Score-P uses under Clang (Sec. V-C1).
struct DynCapi::CygBackend {
    DynCapi* owner = nullptr;
    scorep::CygProfileAdapter* adapter = nullptr;

    static void handle(void* context, xray::PackedId id, xray::XRayEntryType type) {
        auto* self = static_cast<CygBackend*>(context);
        std::uint64_t address = self->owner->addressOf(id);
        switch (type) {
            case xray::XRayEntryType::Entry:
                self->adapter->funcEnter(address, 0);
                break;
            case xray::XRayEntryType::Exit:
            case xray::XRayEntryType::TailExit:
                self->adapter->funcExit(address, 0);
                break;
        }
    }
};

/// Forwards XRay events to TALP monitoring regions (Sec. V-C2): a region map
/// stores the handle per function; regions are registered lazily on first
/// entry and retried while unregistered (registration fails before MPI_Init).
struct DynCapi::TalpBackend {
    DynCapi* owner = nullptr;
    talp::TalpRuntime* talp = nullptr;

    struct RegionSlot {
        talp::MonitorHandle handle = talp::MonitorHandle::invalid();
    };
    std::mutex mutex;
    std::unordered_map<xray::PackedId, RegionSlot> regions;
    std::uint64_t failedRegistrations = 0;

    static void handle(void* context, xray::PackedId id, xray::XRayEntryType type) {
        auto* self = static_cast<TalpBackend*>(context);
        binsim::RankState* rank = binsim::currentRankState();
        if (rank == nullptr) {
            return;  // Event outside a simulated rank (e.g. startup code).
        }
        if (type == xray::XRayEntryType::Entry) {
            talp::MonitorHandle handle = self->handleFor(id, rank->rank);
            if (handle.valid()) {
                self->talp->regionStart(handle, rank->rank, rank->virtualNs);
            }
        } else {
            talp::MonitorHandle handle;
            {
                std::lock_guard<std::mutex> lock(self->mutex);
                auto it = self->regions.find(id);
                if (it == self->regions.end()) {
                    return;
                }
                handle = it->second.handle;
            }
            if (handle.valid()) {
                self->talp->regionStop(handle, rank->rank, rank->virtualNs);
            }
        }
    }

    talp::MonitorHandle handleFor(xray::PackedId id, int rank) {
        {
            std::lock_guard<std::mutex> lock(mutex);
            auto it = regions.find(id);
            if (it != regions.end() && it->second.handle.valid()) {
                return it->second.handle;
            }
        }
        // Register (or retry) outside the map lock; TALP locks internally.
        std::optional<std::string> name = owner->nameOf(id);
        if (!name.has_value()) {
            return talp::MonitorHandle::invalid();
        }
        talp::MonitorHandle handle = talp->regionRegister(*name, rank);
        std::lock_guard<std::mutex> lock(mutex);
        RegionSlot& slot = regions[id];
        if (!handle.valid()) {
            if (!slot.handle.valid()) {
                ++failedRegistrations;
            }
            return slot.handle;
        }
        slot.handle = handle;
        return handle;
    }
};

// ------------------------------------------------------------------ DynCapi --

DynCapi::DynCapi(binsim::Process& process) : process_(&process) {
    resolveAllObjects();
}

DynCapi::~DynCapi() { detachHandler(); }

void DynCapi::resolveAllObjects() {
    support::Timer timer;
    addressByObject_.assign(xray::kMaxObjectId + 1, {});
    nameByObject_.assign(xray::kMaxObjectId + 1, {});
    packedByName_.clear();
    unresolvable_ = 0;
    sledded_ = 0;
    objectsScanned_ = 0;

    xray::XRayRuntime& xr = process_->xray();
    const binsim::CompiledProgram& program = process_->program();

    // Candidate objects: the executable plus every DSO; find their XRay
    // object ids from the process (registration order).
    std::vector<std::pair<xray::ObjectId, const binsim::ObjectImage*>> objects;
    objects.emplace_back(xray::kMainExecutableObjectId, &program.executable);
    for (std::size_t d = 0; d < program.dsos.size(); ++d) {
        std::optional<xray::ObjectId> id =
            process_->xrayObjectId(static_cast<int>(d));
        if (id.has_value() && xr.objectRegistered(*id)) {
            objects.emplace_back(*id, &program.dsos[d]);
        }
    }

    for (const auto& [objectId, image] : objects) {
        ++objectsScanned_;
        std::uint32_t functions = xr.functionCount(objectId);
        addressByObject_[objectId].assign(functions, 0);
        nameByObject_[objectId].assign(functions, std::string());

        // nm dump translated by load base: runtime address -> symbol name.
        std::unordered_map<std::uint64_t, const binsim::NmEntry*> byAddress;
        std::vector<binsim::NmEntry> symbols = binsim::nmDump(*image);
        std::uint64_t delta = image->loadBase - image->linkBase;
        byAddress.reserve(symbols.size());
        for (const binsim::NmEntry& symbol : symbols) {
            byAddress.emplace(symbol.address + delta, &symbol);
        }

        // Cross-check every XRay function id against the translated symbols.
        for (std::uint32_t fid = 0; fid < functions; ++fid) {
            xray::PackedId pid = xray::packId(objectId, fid);
            std::uint64_t address = xr.functionAddress(pid);
            if (address == 0) {
                continue;
            }
            ++sledded_;
            addressByObject_[objectId][fid] = address;
            auto it = byAddress.find(address);
            if (it == byAddress.end()) {
                ++unresolvable_;  // Hidden symbol: nm cannot see it.
                continue;
            }
            nameByObject_[objectId][fid] = it->second->name;
            packedByName_.emplace(it->second->name, pid);
        }
    }
    resolutionSeconds_ = timer.elapsedSec();
}

std::optional<xray::PackedId> DynCapi::resolveName(const std::string& name) const {
    auto it = packedByName_.find(name);
    if (it == packedByName_.end()) {
        return std::nullopt;
    }
    return it->second;
}

std::optional<std::string> DynCapi::nameOf(xray::PackedId id) const {
    xray::ObjectId objectId = xray::objectIdOf(id);
    xray::FunctionId fid = xray::functionIdOf(id);
    if (objectId >= nameByObject_.size() || fid >= nameByObject_[objectId].size() ||
        nameByObject_[objectId][fid].empty()) {
        return std::nullopt;
    }
    return nameByObject_[objectId][fid];
}

std::uint64_t DynCapi::addressOf(xray::PackedId id) const {
    xray::ObjectId objectId = xray::objectIdOf(id);
    xray::FunctionId fid = xray::functionIdOf(id);
    if (objectId >= addressByObject_.size() ||
        fid >= addressByObject_[objectId].size()) {
        return 0;
    }
    return addressByObject_[objectId][fid];
}

InitStats DynCapi::applyIc(const select::InstrumentationConfig& ic) {
    InitStats stats;
    stats.symbolResolutionSeconds = resolutionSeconds_;
    stats.objectsScanned = objectsScanned_;
    stats.sleddedFunctions = sledded_;
    stats.unresolvableFunctions = unresolvable_;
    stats.requestedFunctions = ic.functions.size();

    support::Timer timer;
    xray::XRayRuntime& xr = process_->xray();
    const std::uint64_t pagesBefore = process_->memory().pagesMadeWritable();
    xr.unpatchAll();
    for (const std::string& name : ic.functions) {
        std::optional<xray::PackedId> pid = resolveIcEntry(ic, name);
        if (pid.has_value() && xr.patchFunction(*pid)) {
            ++stats.patchedFunctions;
        } else {
            ++stats.requestedUnavailable;
        }
    }
    stats.pagesTouched = process_->memory().pagesMadeWritable() - pagesBefore;
    stats.patchSeconds = timer.elapsedSec();
    stats.totalSeconds = stats.symbolResolutionSeconds + stats.patchSeconds;
    return stats;
}

std::optional<xray::PackedId> DynCapi::resolveIcEntry(
    const select::InstrumentationConfig& ic, const std::string& name) const {
    auto staticIt = ic.staticIds.find(name);
    if (staticIt != ic.staticIds.end()) {
        return staticIt->second;  // Static-ID extension: no name resolution.
    }
    return resolveName(name);
}

DeltaStats DynCapi::applyIcDelta(const select::InstrumentationConfig& ic) {
    DeltaStats stats;
    stats.requestedFunctions = ic.functions.size();

    support::Timer timer;
    xray::XRayRuntime& xr = process_->xray();

    // Requested set, resolved to live packed ids. An entry that resolves but
    // has no live sled (its object was dlclosed) counts as unavailable here,
    // matching applyIc's failed patchFunction.
    std::unordered_set<xray::PackedId> target;
    target.reserve(ic.functions.size());
    for (const std::string& name : ic.functions) {
        std::optional<xray::PackedId> pid = resolveIcEntry(ic, name);
        if (pid.has_value() && xr.functionAddress(*pid) != 0) {
            target.insert(*pid);
        } else {
            ++stats.requestedUnavailable;
        }
    }

    // The currently-patched set is read from the sleds themselves, so state
    // the previous IC never saw — a re-registered DSO whose sleds reset to
    // NOP, or sleds another caller flipped — diffs correctly.
    std::vector<xray::PackedId> toUnpatch;
    for (xray::PackedId pid : xr.patchedFunctions()) {
        if (target.erase(pid) != 0) {
            ++stats.functionsUnchanged;
        } else {
            toUnpatch.push_back(pid);
        }
    }
    std::vector<xray::PackedId> toPatch(target.begin(), target.end());

    xray::XRayRuntime::DeltaPatchStats patch = xr.patchDelta(toPatch, toUnpatch);
    // Per-list unavailability: a toPatch entry that went stale between the
    // pre-check above and patchDelta (dlclose raced us) is a failed request,
    // like applyIc's failed patchFunction; a stale toUnpatch entry is simply
    // already effectively unpatched and not an IC request at all.
    stats.functionsPatched = toPatch.size() - patch.unavailablePatch;
    stats.functionsUnpatched = toUnpatch.size() - patch.unavailableUnpatch;
    stats.requestedUnavailable += patch.unavailablePatch;
    stats.pagesTouched = patch.pagesMadeWritable;
    stats.patchSeconds = timer.elapsedSec();
    return stats;
}

InitStats DynCapi::patchAll() {
    InitStats stats;
    stats.symbolResolutionSeconds = resolutionSeconds_;
    stats.objectsScanned = objectsScanned_;
    stats.sleddedFunctions = sledded_;
    stats.unresolvableFunctions = unresolvable_;
    support::Timer timer;
    xray::PatchStats patched = process_->xray().patchAll();
    stats.patchedFunctions = sledded_;
    stats.requestedFunctions = sledded_;
    stats.pagesTouched = patched.pagesMadeWritable;
    stats.patchSeconds = timer.elapsedSec();
    stats.totalSeconds = stats.symbolResolutionSeconds + stats.patchSeconds;
    return stats;
}

void DynCapi::unpatchAll() { process_->xray().unpatchAll(); }

void DynCapi::attachCygHandler(scorep::CygProfileAdapter& adapter) {
    detachHandler();
    cygBackend_ = std::make_unique<CygBackend>();
    cygBackend_->owner = this;
    cygBackend_->adapter = &adapter;
    process_->xray().setHandler(&CygBackend::handle, cygBackend_.get());
}

void DynCapi::attachTalpHandler(talp::TalpRuntime& talp) {
    detachHandler();
    talpBackend_ = std::make_unique<TalpBackend>();
    talpBackend_->owner = this;
    talpBackend_->talp = &talp;
    process_->xray().setHandler(&TalpBackend::handle, talpBackend_.get());
}

void DynCapi::detachHandler() {
    process_->xray().clearHandler();
    cygBackend_.reset();
    talpBackend_.reset();
}

std::uint64_t DynCapi::talpFailedRegistrations() const {
    if (talpBackend_ == nullptr) {
        return 0;
    }
    std::lock_guard<std::mutex> lock(talpBackend_->mutex);
    return talpBackend_->failedRegistrations;
}

}  // namespace capi::dyncapi
