// Profile-driven IC refinement: the "Adjust" step of the paper's Fig. 1.
//
// After surveying a measurement, the user typically excludes individual
// functions that produced too much overhead — small, frequently called
// regions that flood the measurement without contributing insight. This
// module automates one adjustment round: given the IC that produced a
// profile, it drops regions whose visit count is large while their exclusive
// time per visit stays below the measurement cost, exactly the reasoning a
// performance engineer applies by hand (and PIRA automates iteratively).
//
// Because the runtime is adaptable, each refinement round is applyIc() —
// not a recompilation.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cg/call_graph.hpp"
#include "scorepsim/measurement.hpp"
#include "scorepsim/profile.hpp"
#include "select/ic.hpp"
#include "select/selection_driver.hpp"
#include "select/selector_cache.hpp"

namespace capi::dyncapi {

struct RefinementOptions {
    /// A region becomes an exclusion candidate above this visit count.
    std::uint64_t visitThreshold = 10000;
    /// ...but survives if it averages at least this much exclusive work per
    /// visit (ns) — it is genuinely hot, not just frequently entered.
    double minExclusiveNsPerVisit = 1000.0;
    /// Functions never removed (the user's critical set).
    std::vector<std::string> keep;
};

struct RefinementResult {
    select::InstrumentationConfig ic;        ///< The refined configuration.
    std::vector<std::string> excluded;       ///< What was dropped and why.
    std::uint64_t excludedVisits = 0;        ///< Events eliminated next run.
    std::size_t unmeasured = 0;              ///< IC entries without profile data
                                             ///< (kept; likely cold paths).
};

/// One refinement round over a measured profile.
RefinementResult refineIc(const select::InstrumentationConfig& ic,
                          const scorep::ProfileTree& profile,
                          const scorep::Measurement& measurement,
                          const RefinementOptions& options = {});

/// Drives repeated select -> measure -> refine rounds against one call graph.
///
/// The session owns a SelectorCache (parallel rounds borrow the process-wide
/// support::Executor pool rather than owning threads), so every selection run
/// through it memoizes pipeline stage results keyed by
/// the graph's generation stamp. A later round that re-evaluates the same or
/// an overlapping spec — the common case: only thresholds near the leaves of
/// the selector tree change between rounds — answers unchanged stages from
/// the cache instead of recomputing reachability closures. Runtime graph
/// updates (a dlopen'd DSO adding or removing nodes, metric refreshes) bump
/// the generation stamp and reconcile through the mutation journal: entries
/// whose recorded read footprint the delta cannot have touched survive and
/// keep answering, the rest re-evaluate. No manual invalidation hook is
/// needed.
class RefinementSession {
public:
    /// `graph` must outlive the session. `threads` as in PipelineOptions:
    /// 1 = serial; any other value runs on the process-wide Executor pool
    /// at full hardware width (results are width-invariant). Embedders that
    /// must cap worker threads — e.g. refinement running beside the measured
    /// application — pass their own pool via SelectionOptions::pool in the
    /// `base` argument of select(), which always wins.
    explicit RefinementSession(const cg::CallGraph& graph,
                               std::size_t threads = 1);
    ~RefinementSession();

    RefinementSession(const RefinementSession&) = delete;
    RefinementSession& operator=(const RefinementSession&) = delete;

    /// Runs the full selection phase with the session's cache and pool.
    /// `base` supplies resolver/oracle/flags; its specText/specName/cache/
    /// pool/threads fields are overridden by the session.
    select::SelectionReport select(const std::string& specText,
                                   const std::string& specName = "spec",
                                   select::SelectionOptions base = {}) const;

    /// One refinement round (see refineIc).
    RefinementResult refine(const select::InstrumentationConfig& ic,
                            const scorep::ProfileTree& profile,
                            const scorep::Measurement& measurement,
                            const RefinementOptions& options = {}) const {
        return refineIc(ic, profile, measurement, options);
    }

    select::SelectorCache& cache() const { return cache_; }
    select::InlineCompensationCache& inlineCache() const { return inlineCache_; }
    const cg::CallGraph& graph() const { return *graph_; }

private:
    const cg::CallGraph* graph_;
    std::size_t threads_;
    mutable select::SelectorCache cache_;
    /// Journal-validated memo for the compensation caller walk: rounds whose
    /// graph delta is metric-only (the steady state between measurement
    /// epochs) replay it instead of re-walking the caller relation.
    mutable select::InlineCompensationCache inlineCache_;
};

}  // namespace capi::dyncapi
