// Profile-driven IC refinement: the "Adjust" step of the paper's Fig. 1.
//
// After surveying a measurement, the user typically excludes individual
// functions that produced too much overhead — small, frequently called
// regions that flood the measurement without contributing insight. This
// module automates one adjustment round: given the IC that produced a
// profile, it drops regions whose visit count is large while their exclusive
// time per visit stays below the measurement cost, exactly the reasoning a
// performance engineer applies by hand (and PIRA automates iteratively).
//
// Because the runtime is adaptable, each refinement round is applyIc() —
// not a recompilation.
#pragma once

#include <string>
#include <vector>

#include "scorepsim/measurement.hpp"
#include "scorepsim/profile.hpp"
#include "select/ic.hpp"

namespace capi::dyncapi {

struct RefinementOptions {
    /// A region becomes an exclusion candidate above this visit count.
    std::uint64_t visitThreshold = 10000;
    /// ...but survives if it averages at least this much exclusive work per
    /// visit (ns) — it is genuinely hot, not just frequently entered.
    double minExclusiveNsPerVisit = 1000.0;
    /// Functions never removed (the user's critical set).
    std::vector<std::string> keep;
};

struct RefinementResult {
    select::InstrumentationConfig ic;        ///< The refined configuration.
    std::vector<std::string> excluded;       ///< What was dropped and why.
    std::uint64_t excludedVisits = 0;        ///< Events eliminated next run.
    std::size_t unmeasured = 0;              ///< IC entries without profile data
                                             ///< (kept; likely cold paths).
};

/// One refinement round over a measured profile.
RefinementResult refineIc(const select::InstrumentationConfig& ic,
                          const scorep::ProfileTree& profile,
                          const scorep::Measurement& measurement,
                          const RefinementOptions& options = {});

}  // namespace capi::dyncapi
