#include "dyncapi/refinement.hpp"

#include <algorithm>
#include <map>

#include "support/executor.hpp"

namespace capi::dyncapi {

RefinementSession::RefinementSession(const cg::CallGraph& graph,
                                     std::size_t threads)
    : graph_(&graph), threads_(threads) {}

RefinementSession::~RefinementSession() = default;

select::SelectionReport RefinementSession::select(
    const std::string& specText, const std::string& specName,
    select::SelectionOptions base) const {
    base.specText = specText;
    base.specName = specName;
    base.cache = &cache_;
    // Parallel sessions borrow the process-wide Executor pool: refinement
    // rounds are exactly the repeated-selection workload pool reuse targets.
    // A pool the caller injected through `base` wins — that is the width
    // cap for embedders sharing cores with the measured application.
    if (base.pool == nullptr) {
        base.pool = support::Executor::poolFor(threads_);
    }
    base.threads = threads_;
    return select::runSelection(*graph_, base);
}

RefinementResult refineIc(const select::InstrumentationConfig& ic,
                          const scorep::ProfileTree& profile,
                          const scorep::Measurement& measurement,
                          const RefinementOptions& options) {
    // Aggregate the profile per region name.
    struct Accum {
        std::uint64_t visits = 0;
        std::uint64_t exclusiveNs = 0;
    };
    std::map<std::string, Accum> byName;
    for (std::size_t i = 0; i < profile.nodeCount(); ++i) {
        const scorep::ProfileNode& node = profile.node(i);
        if (node.region == scorep::kNoRegion) {
            continue;
        }
        Accum& accum = byName[measurement.region(node.region).name];
        accum.visits += node.visits;
        accum.exclusiveNs += profile.exclusiveNs(i);
    }

    RefinementResult result;
    result.ic.specName = ic.specName + "+refined";
    result.ic.application = ic.application;

    for (const std::string& name : ic.functions) {
        auto it = byName.find(name);
        if (it == byName.end()) {
            // Not measured this run: keep (the region may simply be on a
            // cold path for this input).
            ++result.unmeasured;
            result.ic.addFunction(name);
            continue;
        }
        const Accum& accum = it->second;
        bool keepListed = std::find(options.keep.begin(), options.keep.end(),
                                    name) != options.keep.end();
        double perVisit = accum.visits == 0
                              ? 0.0
                              : static_cast<double>(accum.exclusiveNs) /
                                    static_cast<double>(accum.visits);
        bool noisy = accum.visits > options.visitThreshold &&
                     perVisit < options.minExclusiveNsPerVisit;
        if (noisy && !keepListed) {
            result.excluded.push_back(name);
            result.excludedVisits += accum.visits;
        } else {
            result.ic.addFunction(name);
            // Preserve any static-ID annotations for surviving entries.
            auto staticIt = ic.staticIds.find(name);
            if (staticIt != ic.staticIds.end()) {
                result.ic.staticIds.insert(*staticIt);
            }
        }
    }
    return result;
}

}  // namespace capi::dyncapi
