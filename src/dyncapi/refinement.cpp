#include "dyncapi/refinement.hpp"

#include <map>
#include <string_view>
#include <unordered_set>

#include "support/executor.hpp"

namespace capi::dyncapi {

RefinementSession::RefinementSession(const cg::CallGraph& graph,
                                     std::size_t threads)
    : graph_(&graph), threads_(threads) {}

RefinementSession::~RefinementSession() = default;

select::SelectionReport RefinementSession::select(
    const std::string& specText, const std::string& specName,
    select::SelectionOptions base) const {
    base.specText = specText;
    base.specName = specName;
    base.cache = &cache_;
    base.inlineCache = &inlineCache_;
    // Parallel sessions borrow the process-wide Executor pool: refinement
    // rounds are exactly the repeated-selection workload pool reuse targets.
    // A pool the caller injected through `base` wins — that is the width
    // cap for embedders sharing cores with the measured application.
    if (base.pool == nullptr) {
        base.pool = support::Executor::poolFor(threads_);
    }
    base.threads = threads_;
    return select::runSelection(*graph_, base);
}

RefinementResult refineIc(const select::InstrumentationConfig& ic,
                          const scorep::ProfileTree& profile,
                          const scorep::Measurement& measurement,
                          const RefinementOptions& options) {
    // Aggregate the profile per region name.
    using Accum = scorep::ProfileTree::RegionTotals;
    std::map<std::string, Accum> byName;
    for (const auto& [region, totals] : profile.regionTotals()) {
        Accum& accum = byName[measurement.region(region).name];
        accum.visits += totals.visits;
        accum.exclusiveNs += totals.exclusiveNs;
    }

    RefinementResult result;
    result.ic.specName = ic.specName + "+refined";
    result.ic.application = ic.application;

    // string_view keys borrow from options.keep, which outlives the loop.
    std::unordered_set<std::string_view> keepSet(options.keep.begin(),
                                                 options.keep.end());
    for (const std::string& name : ic.functions) {
        auto it = byName.find(name);
        if (it == byName.end()) {
            // Not measured this run: keep (the region may simply be on a
            // cold path for this input).
            ++result.unmeasured;
            result.ic.addFunction(name);
            continue;
        }
        const Accum& accum = it->second;
        bool keepListed = keepSet.count(name) != 0;
        double perVisit = accum.visits == 0
                              ? 0.0
                              : static_cast<double>(accum.exclusiveNs) /
                                    static_cast<double>(accum.visits);
        bool noisy = accum.visits > options.visitThreshold &&
                     perVisit < options.minExclusiveNsPerVisit;
        if (noisy && !keepListed) {
            result.excluded.push_back(name);
            result.excludedVisits += accum.visits;
        } else {
            result.ic.addFunction(name);
            // Preserve any static-ID annotations for surviving entries.
            auto staticIt = ic.staticIds.find(name);
            if (staticIt != ic.staticIds.end()) {
                result.ic.staticIds.insert(*staticIt);
            }
        }
    }
    return result;
}

}  // namespace capi::dyncapi
