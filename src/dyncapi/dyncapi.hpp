// DynCaPI: the runtime-adaptable instrumentation runtime (paper Sec. IV, V-C).
//
// DynCaPI sits between XRay and the measurement library. At program start it
//  1. determines the mapping between XRay function IDs and function names for
//     every registered object — nm symbol dumps are translated through the
//     loader's memory map and cross-checked against __xray_function_address;
//     hidden symbols cannot be resolved this way and are counted (Sec. VI-B);
//  2. patches exactly the sleds selected by the IC passed via the
//     environment (here: an InstrumentationConfig object or file);
//  3. installs an event handler forwarding entry/exit events to the chosen
//     backend: the generic __cyg_profile interface, Score-P, or TALP.
//
// Because patching is cheap, the IC can be swapped at any quiescent point —
// no recompilation, the headline capability of the paper. The static-ID
// extension (IC carries packed IDs) bypasses name resolution entirely and
// reaches hidden symbols, implementing the future-work idea from Sec. VI-B.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "binsim/process.hpp"
#include "select/ic.hpp"
#include "xraysim/xray_runtime.hpp"

namespace capi::scorep {
class CygProfileAdapter;
class Measurement;
}
namespace capi::talp {
class TalpRuntime;
}

namespace capi::dyncapi {

struct InitStats {
    double totalSeconds = 0.0;
    double symbolResolutionSeconds = 0.0;
    double patchSeconds = 0.0;
    std::size_t objectsScanned = 0;
    std::size_t sleddedFunctions = 0;        ///< Functions with sleds, all objects.
    std::size_t unresolvableFunctions = 0;   ///< Sledded but name unknown (hidden).
    std::size_t requestedFunctions = 0;      ///< IC entries.
    std::size_t patchedFunctions = 0;
    std::size_t requestedUnavailable = 0;    ///< In IC but no patchable sled
                                             ///< (inlined away or filtered).
    std::uint64_t pagesTouched = 0;          ///< Code pages made writable.
    std::size_t sampledFunctions = 0;        ///< Patched at the Sampled tier.
};

/// Result of an incremental IC/policy swap (applyIcDelta/applyPolicyDelta).
struct DeltaStats {
    double patchSeconds = 0.0;
    std::size_t requestedFunctions = 0;   ///< IC entries.
    std::size_t requestedUnavailable = 0; ///< No live, patchable sled.
    std::size_t functionsPatched = 0;     ///< Newly instrumented.
    std::size_t functionsUnpatched = 0;   ///< Dropped from the IC.
    std::size_t functionsUnchanged = 0;   ///< Already in the requested state.
    std::uint64_t pagesTouched = 0;       ///< Code pages made writable.
    std::size_t functionsPromoted = 0;    ///< Sampled -> Full, sleds untouched.
    std::size_t functionsDemoted = 0;     ///< Full -> Sampled, sleds untouched.
};

class DynCapi {
public:
    /// Builds the fid<->name mapping for every object registered with the
    /// process's XRay runtime (this is the symbol-resolution phase of Tinit).
    explicit DynCapi(binsim::Process& process);

    ~DynCapi();
    DynCapi(const DynCapi&) = delete;
    DynCapi& operator=(const DynCapi&) = delete;

    // --- patching ---------------------------------------------------------
    /// THE configuration entry point: applies a tiered policy by unpatching
    /// everything, patching every Full and Sampled region (the tier rides
    /// the patch request), and syncing the sampling gates of the attached
    /// measurement backend. Safe to call repeatedly at quiescent points
    /// (the runtime-adaptable workflow). Uses staticIds entries when
    /// present, names otherwise.
    InitStats applyPolicy(const select::InstrumentationPolicy& policy);

    /// Applies a policy incrementally: diffs the requested (function, tier)
    /// set against the runtime's *actual* sled + tier state and flips only
    /// the difference, leaving the process in exactly the state
    /// applyPolicy(policy) would. Tier-only transitions (Full <-> Sampled)
    /// update the runtime tag and the measurement gate without touching any
    /// code page. Sound across dlopen/dlclose because the current set is
    /// read from the sleds, not from a cached previous policy. This is what
    /// makes the adaptive controller's epoch loop cheap (see src/adapt/).
    ///
    /// Failure contract: the underlying patch transaction is all-or-nothing
    /// (see XRayRuntime::patchDeltaTiered). If it fails, the rolled-back
    /// xray::PatchError propagates out of this call *before* currentPolicy_
    /// or the measurement gates are updated — a failed apply commits
    /// nothing, and currentPolicy() still names the live (last successfully
    /// applied) policy. The adaptive controller relies on exactly this to
    /// retry or revert (see adapt::Controller).
    DeltaStats applyPolicyDelta(const select::InstrumentationPolicy& policy);

    /// Binary-set overload: the Full|Off degenerate case, forwarded through
    /// applyPolicy.
    InitStats applyIc(const select::InstrumentationConfig& ic);

    /// Binary-set overload of applyPolicyDelta.
    DeltaStats applyIcDelta(const select::InstrumentationConfig& ic);

    /// The policy most recently applied (gate specs are re-synced from it
    /// when a measurement backend attaches). Patch state itself is always
    /// read back from the sleds, never from this cache.
    const select::InstrumentationPolicy& currentPolicy() const {
        return currentPolicy_;
    }

    /// Patches every sled (the `xray full` configuration).
    InitStats patchAll();
    void unpatchAll();

    // --- name resolution ----------------------------------------------------
    std::optional<xray::PackedId> resolveName(const std::string& name) const;
    /// Name for a packed id; nullopt for hidden symbols.
    std::optional<std::string> nameOf(xray::PackedId id) const;
    /// Runtime entry-sled address for a packed id (0 if unknown).
    std::uint64_t addressOf(xray::PackedId id) const;

    std::size_t unresolvableFunctionCount() const { return unresolvable_; }
    std::size_t sleddedFunctionCount() const { return sledded_; }
    double symbolResolutionSeconds() const { return resolutionSeconds_; }

    // --- measurement backends ----------------------------------------------
    /// Default GCC -finstrument-functions-compatible interface.
    void attachCygHandler(scorep::CygProfileAdapter& adapter);
    /// Score-P backend (same generic interface; pair it with a resolver
    /// built via symbol injection to cover DSOs).
    void attachScorePHandler(scorep::CygProfileAdapter& adapter) {
        attachCygHandler(adapter);
    }
    /// TALP backend: entry/exit drive monitoring-region start/stop.
    void attachTalpHandler(talp::TalpRuntime& talp);
    void detachHandler();

    /// TALP-backend failure counters (regions that could not register
    /// because MPI was not initialized yet; Sec. VI-B).
    std::uint64_t talpFailedRegistrations() const;

    binsim::Process& process() { return *process_; }

private:
    struct TalpBackend;
    struct CygBackend;

    void resolveAllObjects();
    std::optional<xray::PackedId> resolveIcEntry(
        const select::InstrumentationConfig& ic, const std::string& name) const;
    std::optional<xray::PackedId> resolvePolicyEntry(
        const select::InstrumentationPolicy& policy, const std::string& name) const;
    /// Rewrites the attached measurement's sampling gates to match
    /// `policy` (no-op without a cyg/Score-P backend; TALP regions carry no
    /// gate, their Sampled tier measures like Full).
    void syncGates(const select::InstrumentationPolicy& policy);

    binsim::Process* process_;
    /// addressByObject_[objectId][localFid] = runtime entry address (0 = none).
    std::vector<std::vector<std::uint64_t>> addressByObject_;
    /// nameByObject_[objectId][localFid]; empty = unresolvable.
    std::vector<std::vector<std::string>> nameByObject_;
    std::unordered_map<std::string, xray::PackedId> packedByName_;
    std::size_t unresolvable_ = 0;
    std::size_t sledded_ = 0;
    std::size_t objectsScanned_ = 0;
    double resolutionSeconds_ = 0.0;

    std::unique_ptr<CygBackend> cygBackend_;
    std::unique_ptr<TalpBackend> talpBackend_;

    select::InstrumentationPolicy currentPolicy_;
};

}  // namespace capi::dyncapi
