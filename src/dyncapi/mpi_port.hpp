// Glue between the execution engine's MPI operations and the MPI simulation.
//
// binsim is deliberately independent of mpisim; this adapter implements the
// engine's MpiPort against an MpiWorld, keeping the rank's virtual clock in
// sync with the collective completion times.
#pragma once

#include "binsim/execution_engine.hpp"
#include "mpisim/mpi_world.hpp"

namespace capi::dyncapi {

class WorldMpiPort final : public binsim::MpiPort {
public:
    explicit WorldMpiPort(mpi::MpiWorld& world) : world_(&world) {}

    void execute(binsim::MpiOp op, binsim::RankState& rank) override {
        switch (op) {
            case binsim::MpiOp::None:
                return;
            case binsim::MpiOp::Init:
                rank.virtualNs = world_->init(rank.rank, rank.virtualNs);
                return;
            case binsim::MpiOp::Finalize:
                rank.virtualNs = world_->finalize(rank.rank, rank.virtualNs);
                return;
            case binsim::MpiOp::Barrier:
                rank.virtualNs = world_->barrier(rank.rank, rank.virtualNs);
                return;
            case binsim::MpiOp::Allreduce:
                rank.virtualNs = world_->allreduce(rank.rank, rank.virtualNs);
                return;
            case binsim::MpiOp::Bcast:
                rank.virtualNs = world_->bcast(rank.rank, rank.virtualNs);
                return;
            case binsim::MpiOp::HaloExchange:
                rank.virtualNs = world_->haloExchange(rank.rank, rank.virtualNs);
                return;
        }
    }

private:
    mpi::MpiWorld* world_;
};

}  // namespace capi::dyncapi
