// DSO lifecycle -> call-graph mirroring through the mutation journal.
//
// The runtime adapts to dlopen/dlclose at the sled level (XRayRuntime
// deregisters objects, DynCapi re-resolves), but selection quality depends on
// the whole-program call graph tracking the same lifecycle: a dlclosed
// plugin's functions must stop matching selectors, and a re-dlopened one
// must match again. Rebuilding the graph wholesale would defeat incremental
// selection — every CsrView and cached stage result would be discarded.
//
// DsoGraphBinding routes the update through CallGraph's journaled mutation
// API instead: unload() is a bulk tombstone removal, reload() re-adds the
// remembered descs and re-links the remembered edges by name. Downstream,
// CsrView::snapshot patches only the touched rows and the SelectorCache
// keeps every stage whose footprint avoided the plugin's neighborhood — the
// turnaround the paper's runtime-adaptability argument needs.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "cg/call_graph.hpp"
#include "cg/types.hpp"

namespace capi::dyncapi {

class DsoGraphBinding {
public:
    /// Binds the graph nodes named in `names` (unknown names are ignored).
    /// The binding starts in the loaded state.
    DsoGraphBinding(const cg::CallGraph& graph,
                    const std::vector<std::string>& names);

    /// dlclose: captures the bound subgraph (descs plus every incident call
    /// and override edge, by name) and bulk-removes it through the journal.
    /// Returns the number of nodes removed. No-op when already unloaded.
    std::size_t unload(cg::CallGraph& graph);

    /// dlopen: re-adds the captured descs (fresh ids) and re-links the
    /// captured edges whose endpoints resolve in the current graph (edges to
    /// functions that disappeared in the meantime are dropped). Returns the
    /// number of nodes re-added. No-op when already loaded.
    std::size_t reload(cg::CallGraph& graph);

    bool loaded() const noexcept { return loaded_; }
    const std::vector<std::string>& names() const noexcept { return names_; }

private:
    struct EdgeByName {
        std::string from;
        std::string to;
        bool isOverride = false;  ///< from = base, to = derived.
    };

    std::vector<std::string> names_;
    std::vector<cg::FunctionDesc> descs_;  ///< Captured at unload.
    std::vector<EdgeByName> edges_;        ///< Captured at unload, deduplicated.
    bool loaded_ = true;
};

}  // namespace capi::dyncapi
