// SymbolOracle backed by a compiled program's symbol tables.
//
// CaPI's inlining compensation asks "does a symbol for this function exist in
// the binary or any dependent shared object?" — answered here from the nm
// dumps of every object image (hidden symbols are invisible to nm and
// therefore count as absent, consistent with the runtime resolution path).
#pragma once

#include <unordered_set>

#include "binsim/compiler.hpp"
#include "binsim/nm.hpp"
#include "select/symbol_oracle.hpp"

namespace capi::dyncapi {

class ProcessSymbolOracle final : public select::SymbolOracle {
public:
    explicit ProcessSymbolOracle(const binsim::CompiledProgram& program) {
        addObject(program.executable);
        for (const binsim::ObjectImage& dso : program.dsos) {
            addObject(dso);
        }
    }

    bool hasSymbol(const std::string& functionName) const override {
        return symbols_.contains(functionName);
    }

    std::size_t size() const { return symbols_.size(); }

private:
    void addObject(const binsim::ObjectImage& image) {
        for (const binsim::NmEntry& symbol : binsim::nmDump(image)) {
            symbols_.insert(symbol.name);
        }
    }

    std::unordered_set<std::string> symbols_;
};

}  // namespace capi::dyncapi
