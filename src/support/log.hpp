// Tiny leveled logger. Off-by-default debug level keeps benchmark output clean.
#pragma once

#include <sstream>
#include <string>

namespace capi::support {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Global log threshold; messages below it are dropped.
void setLogLevel(LogLevel level);
LogLevel logLevel();

/// Emit one line to stderr with a level tag. Thread-safe.
void logMessage(LogLevel level, const std::string& message);

namespace detail {

class LogStream {
public:
    explicit LogStream(LogLevel level) : level_(level) {}
    ~LogStream() { logMessage(level_, stream_.str()); }
    LogStream(const LogStream&) = delete;
    LogStream& operator=(const LogStream&) = delete;

    template <typename T>
    LogStream& operator<<(const T& value) {
        stream_ << value;
        return *this;
    }

private:
    LogLevel level_;
    std::ostringstream stream_;
};

}  // namespace detail

inline detail::LogStream logDebug() { return detail::LogStream(LogLevel::Debug); }
inline detail::LogStream logInfo() { return detail::LogStream(LogLevel::Info); }
inline detail::LogStream logWarn() { return detail::LogStream(LogLevel::Warn); }
inline detail::LogStream logError() { return detail::LogStream(LogLevel::Error); }

}  // namespace capi::support
