#include "support/executor.hpp"

#include "support/thread_pool.hpp"

namespace capi::support {

ThreadPool& Executor::pool() {
    // Magic static: thread-safe lazy construction, joined at process exit.
    static ThreadPool shared(ThreadPool::defaultThreadCount());
    return shared;
}

ThreadPool* Executor::poolFor(std::size_t threads) {
    return threads == 1 ? nullptr : &pool();
}

}  // namespace capi::support
