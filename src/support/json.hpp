// Minimal JSON value model, parser and writer.
//
// Used for the MetaCG-style call-graph interchange format and for IC files.
// Supports the JSON subset needed there: null, bool, integers, doubles,
// strings with escapes, arrays and objects. Object member order is preserved
// so emitted files diff cleanly.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "support/error.hpp"

namespace capi::support {

class Json;

/// Object representation: insertion-ordered key/value list with a side index
/// for O(log n) lookup.
class JsonObject {
public:
    using Member = std::pair<std::string, Json>;

    Json& operator[](const std::string& key);
    const Json* find(std::string_view key) const;
    bool contains(std::string_view key) const { return find(key) != nullptr; }
    std::size_t size() const noexcept { return members_.size(); }
    bool empty() const noexcept { return members_.empty(); }

    auto begin() const { return members_.begin(); }
    auto end() const { return members_.end(); }
    auto begin() { return members_.begin(); }
    auto end() { return members_.end(); }

private:
    std::vector<Member> members_;
    std::map<std::string, std::size_t, std::less<>> index_;
};

/// A JSON value. Integers and doubles are kept distinct so that function IDs
/// and counters round-trip exactly.
class Json {
public:
    enum class Type { Null, Bool, Int, Double, String, Array, Object };

    using Array = std::vector<Json>;

    Json() : type_(Type::Null) {}
    Json(std::nullptr_t) : type_(Type::Null) {}
    Json(bool b) : type_(Type::Bool), bool_(b) {}
    Json(int v) : type_(Type::Int), int_(v) {}
    Json(unsigned v) : type_(Type::Int), int_(static_cast<std::int64_t>(v)) {}
    Json(std::int64_t v) : type_(Type::Int), int_(v) {}
    Json(std::uint64_t v) : type_(Type::Int), int_(static_cast<std::int64_t>(v)) {}
    Json(double v) : type_(Type::Double), double_(v) {}
    Json(const char* s) : type_(Type::String), string_(s) {}
    Json(std::string s) : type_(Type::String), string_(std::move(s)) {}
    Json(std::string_view s) : type_(Type::String), string_(s) {}
    Json(Array a) : type_(Type::Array), array_(std::make_shared<Array>(std::move(a))) {}
    Json(JsonObject o)
        : type_(Type::Object), object_(std::make_shared<JsonObject>(std::move(o))) {}

    static Json array() { return Json(Array{}); }
    static Json object() { return Json(JsonObject{}); }

    Type type() const noexcept { return type_; }
    bool isNull() const noexcept { return type_ == Type::Null; }
    bool isBool() const noexcept { return type_ == Type::Bool; }
    bool isInt() const noexcept { return type_ == Type::Int; }
    bool isDouble() const noexcept { return type_ == Type::Double; }
    bool isNumber() const noexcept { return isInt() || isDouble(); }
    bool isString() const noexcept { return type_ == Type::String; }
    bool isArray() const noexcept { return type_ == Type::Array; }
    bool isObject() const noexcept { return type_ == Type::Object; }

    bool asBool() const;
    std::int64_t asInt() const;
    double asDouble() const;
    const std::string& asString() const;
    const Array& asArray() const;
    Array& asArray();
    const JsonObject& asObject() const;
    JsonObject& asObject();

    /// Object member access; creates the member (as null) on mutable access.
    Json& operator[](const std::string& key);
    /// Lookup without creation; returns nullptr when absent or not an object.
    const Json* find(std::string_view key) const;

    /// Convenience typed getters with defaults for optional members.
    std::int64_t getInt(std::string_view key, std::int64_t def) const;
    double getDouble(std::string_view key, double def) const;
    bool getBool(std::string_view key, bool def) const;
    std::string getString(std::string_view key, const std::string& def) const;

    void push_back(Json v);

    /// Serialize. Pretty output uses two-space indentation.
    std::string dump(bool pretty = false) const;

    /// Parse a complete JSON document; trailing non-space input is an error.
    static Json parse(std::string_view text);

private:
    void writeTo(std::string& out, bool pretty, int indent) const;

    Type type_;
    bool bool_ = false;
    std::int64_t int_ = 0;
    double double_ = 0.0;
    std::string string_;
    std::shared_ptr<Array> array_;
    std::shared_ptr<JsonObject> object_;
};

}  // namespace capi::support
