// Deterministic, seed-driven fault injection.
//
// A process-wide registry of named injection *sites* ("xray.mprotect",
// "mpi.rank_dropout", ...). Production code asks `shouldFail(site)` at the
// point where a real deployment could fail; tests arm a site with a
// FaultSpec (probability / skip-count / one-shot triggers drawn from a
// per-site SplitMix64 stream) through a ScopedFaultInjection guard and the
// site starts firing deterministically for that seed.
//
// Cost contract: a DISARMED site is one relaxed atomic load and one
// predicted branch — nothing else. The whole slow path (mutex, hash lookup,
// RNG draw) is reached only while at least one site is armed, so shipping
// the checks compiled-in does not move the measurement hot path
// (bench/micro_fault.cpp pins this against the enter/exit baseline).
//
// Determinism: each site draws from its own SplitMix64 stream seeded from
// (guard seed, fnv1a(site name)), so a site's fire schedule depends only on
// its own hit sequence — never on arming order or on other sites' traffic.
//
// Rollback paths MUST NOT fault: code that undoes a partially applied
// mutation (XRayRuntime's patch-transaction rollback) wraps itself in a
// SuppressFaults guard, under which every site reports "no fault" without
// consuming a trigger — the simulated analogue of "the undo uses the same
// syscalls that just succeeded".
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace capi::support::fault {

/// When an armed site fires, given a hit (a call to shouldFail /
/// inflationFactor at that site).
struct FaultSpec {
    /// Bernoulli trigger: chance of firing per eligible hit (1.0 = always).
    double probability = 1.0;
    /// Count trigger: the first `afterHits` hits never fire (0 = eligible
    /// immediately). Combine with maxFires=1 for "fail exactly the Nth op".
    std::uint64_t afterHits = 0;
    /// Fires are capped at this many; 1 makes the site one-shot.
    std::uint64_t maxFires = UINT64_MAX;
    /// Site-defined payload delivered on fire — e.g. the probe-cost
    /// inflation factor for scorep.probe_inflate, or a stall/straggler
    /// duration for the delay sites (units per site: see sites:: comments).
    double magnitude = 0.0;
};

/// Per-site counters, for "every failure reported exactly once" assertions.
struct SiteStats {
    std::uint64_t hits = 0;   ///< Checks while armed (suppressed ones excluded).
    std::uint64_t fires = 0;  ///< Hits that actually failed.
};

namespace detail {

/// Number of currently armed sites. Inline zero-initialized atomic: the
/// disarmed fast path is exactly one relaxed load of this counter.
inline std::atomic<std::uint32_t> g_armedSites{0};

/// Re-entrancy depth of SuppressFaults on this thread.
inline thread_local int t_suppressDepth = 0;

/// Slow path: records a hit at `site` and returns the spec's magnitude when
/// the site fires, std::nullopt otherwise. Only called while something is
/// armed; takes the registry mutex.
std::optional<double> hitSlow(const char* site);

}  // namespace detail

/// True while any site is armed anywhere in the process. The one-load guard
/// hot paths use before doing anything fault-related.
inline bool anyArmed() {
    return detail::g_armedSites.load(std::memory_order_relaxed) != 0;
}

/// The injection check. Place at the point of potential failure:
///   if (support::fault::shouldFail(sites::kXrayMprotect))
///       throw MachineFault("injected: mprotect failed");
inline bool shouldFail(const char* site) {
    if (!anyArmed()) {
        return false;
    }
    return detail::hitSlow(site).has_value();
}

/// Magnitude-carrying variant for inflation sites: returns the armed spec's
/// magnitude when the site fires this hit, 1.0 otherwise (and always 1.0
/// when nothing is armed).
inline double inflationFactor(const char* site) {
    if (!anyArmed()) {
        return 1.0;
    }
    std::optional<double> fired = detail::hitSlow(site);
    return fired.has_value() && *fired > 0.0 ? *fired : 1.0;
}

/// Arms `site` with `spec`; the site's trigger RNG stream is derived from
/// (seed, site name). Re-arming an armed site replaces its spec and resets
/// its counters and stream.
void arm(const std::string& site, FaultSpec spec, std::uint64_t seed);

/// Disarms one site (no-op when not armed). Counters for the site are
/// retained until it is re-armed, so tests can read fire counts after the
/// schedule ended.
void disarm(const std::string& site);

/// Disarms everything (test teardown safety net).
void disarmAll();

/// Counters of a site (zeros when never armed).
SiteStats stats(const std::string& site);

/// Sum of fires over all sites since the last disarmAll/re-arm.
std::uint64_t totalFires();

/// RAII arming guard for tests: arms sites against one seed, disarms them
/// (and only them) on destruction.
class ScopedFaultInjection {
public:
    explicit ScopedFaultInjection(std::uint64_t seed) : seed_(seed) {}
    ~ScopedFaultInjection() {
        for (const std::string& site : armed_) {
            disarm(site);
        }
    }

    ScopedFaultInjection(const ScopedFaultInjection&) = delete;
    ScopedFaultInjection& operator=(const ScopedFaultInjection&) = delete;

    void arm(const std::string& site, FaultSpec spec) {
        fault::arm(site, spec, seed_);
        armed_.push_back(site);
    }

    std::uint64_t seed() const { return seed_; }

private:
    std::uint64_t seed_;
    std::vector<std::string> armed_;
};

/// RAII suppression for rollback/undo paths: while alive on this thread,
/// every site reports "no fault" without consuming a trigger.
class SuppressFaults {
public:
    SuppressFaults() { ++detail::t_suppressDepth; }
    ~SuppressFaults() { --detail::t_suppressDepth; }

    SuppressFaults(const SuppressFaults&) = delete;
    SuppressFaults& operator=(const SuppressFaults&) = delete;
};

/// The injection sites this codebase defines, one constant per site so call
/// sites and tests cannot drift apart on spelling.
namespace sites {
/// CodeMemory::mprotect fails (page-run protection flip mid-transaction).
inline constexpr const char* kXrayMprotect = "xray.mprotect";
/// CodeMemory::write fails (sled flip mid-page-run).
inline constexpr const char* kXraySledWrite = "xray.sled_write";
/// A rank dies on entry to a collective (marked dropped, throws
/// RankDroppedError; peers complete on the survivor quorum).
inline constexpr const char* kMpiRankDropout = "mpi.rank_dropout";
/// A rank stalls for `magnitude` wall-clock nanoseconds before joining a
/// collective (evicted by peers when the collective timeout expires first).
inline constexpr const char* kMpiStraggler = "mpi.straggler";
/// Each recorded visit counts as `magnitude` visits — the measured probe
/// cost the overhead model sees inflates by that factor (the kill-switch
/// scenario).
inline constexpr const char* kScorepProbeInflate = "scorep.probe_inflate";
/// defineRegion stalls `magnitude` microseconds between appending the
/// definition and publishing it (a slow counter-publication window).
inline constexpr const char* kScorepPublishStall = "scorep.publish_stall";
/// A fleet client skips its epoch send entirely (a stalled producer). The
/// skipped epoch coalesces into the next frame, and the aggregator's epoch
/// liveness policy sees the client as Lagging.
inline constexpr const char* kFleetClientStall = "fleet.client_stall";
/// A fleet client dies on entry to sendEpoch (throws ClientDeadError); the
/// aggregator evicts it after graceEpochs missed epochs.
inline constexpr const char* kFleetClientDeath = "fleet.client_death";
/// A fleet frame is lost in transit: a delta frame drops on the client send
/// path (recovered by drop-and-coalesce) or a resume handshake is refused
/// (recovered by FleetClient's backoff-retried reconnect).
inline constexpr const char* kFleetFrameDrop = "fleet.frame_drop";
/// The aggregator crashes at an epoch boundary (throws AggregatorCrashError
/// from the close path); recovery is checkpoint/restore + client resume.
inline constexpr const char* kFleetAggregatorCrash = "fleet.aggregator_crash";
}  // namespace sites

}  // namespace capi::support::fault
