// String helpers used throughout the project: splitting, trimming, globbing.
//
// The glob matcher implements the Score-P filter-file wildcard dialect:
// '*' matches any (possibly empty) sequence, '?' matches a single character.
// It is iterative (no std::regex) so it stays cheap when matching hundreds of
// thousands of mangled names against filter rules.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace capi::support {

/// Split on a single delimiter; empty fields are preserved.
std::vector<std::string> split(std::string_view text, char delim);

/// Split on runs of whitespace; empty fields are dropped.
std::vector<std::string> splitWhitespace(std::string_view text);

std::string_view trim(std::string_view text);

bool startsWith(std::string_view text, std::string_view prefix);
bool endsWith(std::string_view text, std::string_view suffix);

/// Score-P style wildcard matching ('*' and '?').
bool globMatch(std::string_view pattern, std::string_view text);

/// True if `pattern` contains glob metacharacters.
bool isGlobPattern(std::string_view pattern);

/// Join parts with a separator.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Render a double with fixed decimals (report formatting helper).
std::string fixed(double value, int decimals);

/// Left/right pad to a column width (report formatting helpers).
std::string padLeft(std::string_view text, std::size_t width);
std::string padRight(std::string_view text, std::size_t width);

}  // namespace capi::support
