#include "support/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace capi::support {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Warn};
std::mutex g_mutex;

const char* levelTag(LogLevel level) {
    switch (level) {
        case LogLevel::Debug: return "DEBUG";
        case LogLevel::Info: return "INFO ";
        case LogLevel::Warn: return "WARN ";
        case LogLevel::Error: return "ERROR";
        default: return "?????";
    }
}
}  // namespace

void setLogLevel(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel logLevel() { return g_level.load(std::memory_order_relaxed); }

void logMessage(LogLevel level, const std::string& message) {
    if (level < g_level.load(std::memory_order_relaxed)) {
        return;
    }
    std::lock_guard<std::mutex> lock(g_mutex);
    std::fprintf(stderr, "[capi %s] %s\n", levelTag(level), message.c_str());
}

}  // namespace capi::support
