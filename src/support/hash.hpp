// Stable 64-bit hashing for cache keys.
//
// FNV-1a plus a splitmix-style combiner: deterministic across platforms and
// runs (unlike std::hash), which matters because selector-cache keys are
// compared against values computed in earlier refinement rounds.
#pragma once

#include <cstdint>
#include <string_view>

namespace capi::support {

inline constexpr std::uint64_t kFnvOffsetBasis = 0xCBF29CE484222325ULL;
inline constexpr std::uint64_t kFnvPrime = 0x100000001B3ULL;

constexpr std::uint64_t fnv1a(std::string_view text,
                              std::uint64_t seed = kFnvOffsetBasis) {
    std::uint64_t h = seed;
    for (char c : text) {
        h ^= static_cast<std::uint8_t>(c);
        h *= kFnvPrime;
    }
    return h;
}

/// Mixes `value` into `seed` (order-sensitive).
constexpr std::uint64_t hashCombine(std::uint64_t seed, std::uint64_t value) {
    std::uint64_t z = seed ^ (value + 0x9E3779B97F4A7C15ULL + (seed << 6) + (seed >> 2));
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

}  // namespace capi::support
