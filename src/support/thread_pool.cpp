#include "support/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <memory>

namespace capi::support {

std::size_t ThreadPool::defaultThreadCount() noexcept {
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

ThreadPool::ThreadPool(std::size_t threads) {
    if (threads == 0) {
        threads = defaultThreadCount();
    }
    threads = std::max<std::size_t>(threads, 1);
    workers_.reserve(threads);
    try {
        for (std::size_t i = 0; i < threads; ++i) {
            workers_.emplace_back([this] { workerLoop(); });
        }
    } catch (...) {
        // Thread creation can fail (OS thread limits). Joinable threads must
        // be joined before the vector unwinds or std::terminate is called;
        // the destructor won't run since construction never completed.
        {
            std::lock_guard<std::mutex> lock(mutex_);
            stopping_ = true;
        }
        available_.notify_all();
        for (std::thread& worker : workers_) {
            worker.join();
        }
        throw;
    }
}

ThreadPool::~ThreadPool() {
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    available_.notify_all();
    for (std::thread& worker : workers_) {
        worker.join();
    }
}

void ThreadPool::submit(std::function<void()> task) {
    {
        std::lock_guard<std::mutex> lock(mutex_);
        tasks_.push_back(std::move(task));
    }
    available_.notify_one();
}

void ThreadPool::workerLoop() {
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            available_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
            if (tasks_.empty()) {
                return;  // stopping_ and drained
            }
            task = std::move(tasks_.front());
            tasks_.pop_front();
        }
        task();
    }
}

void ThreadPool::parallelFor(
    std::size_t count, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& body) {
    if (count == 0) {
        return;
    }
    grain = std::max<std::size_t>(grain, 1);
    const std::size_t chunks = (count + grain - 1) / grain;
    if (chunks == 1 || threadCount() <= 1) {
        body(0, count);
        return;
    }

    struct Shared {
        std::atomic<std::size_t> cursor{0};
        std::atomic<std::size_t> done{0};
        std::atomic<bool> abort{false};
        std::size_t chunks = 0;
        std::mutex m;
        std::condition_variable finished;
        std::exception_ptr error;
    };
    auto shared = std::make_shared<Shared>();
    shared->chunks = chunks;

    // Helpers claim chunks through the shared cursor. `body` lives on the
    // caller's stack; a late helper that runs after parallelFor returned sees
    // cursor >= chunks and exits before ever touching it.
    const auto* bodyPtr = &body;
    auto claimChunks = [shared, bodyPtr, grain, count] {
        for (;;) {
            std::size_t chunk = shared->cursor.fetch_add(1, std::memory_order_relaxed);
            if (chunk >= shared->chunks) {
                return;
            }
            if (!shared->abort.load(std::memory_order_relaxed)) {
                std::size_t lo = chunk * grain;
                std::size_t hi = std::min(count, lo + grain);
                try {
                    (*bodyPtr)(lo, hi);
                } catch (...) {
                    std::lock_guard<std::mutex> lock(shared->m);
                    if (!shared->error) {
                        shared->error = std::current_exception();
                    }
                    shared->abort.store(true, std::memory_order_relaxed);
                }
            }
            if (shared->done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
                shared->chunks) {
                std::lock_guard<std::mutex> lock(shared->m);
                shared->finished.notify_all();
            }
        }
    };

    const std::size_t helpers = std::min(threadCount(), chunks - 1);
    for (std::size_t i = 0; i < helpers; ++i) {
        submit(claimChunks);
    }
    claimChunks();

    std::unique_lock<std::mutex> lock(shared->m);
    shared->finished.wait(lock, [&] {
        return shared->done.load(std::memory_order_acquire) == shared->chunks;
    });
    if (shared->error) {
        std::rethrow_exception(shared->error);
    }
}

}  // namespace capi::support
