// Process-wide shared thread pool for the selection engine.
//
// Pipeline runs, runSelection() calls and dyncapi::RefinementSession rounds
// used to construct a fresh ThreadPool per run, paying thread spin-up and
// tear-down on every selection — noticeable exactly where the paper's
// turnaround argument cares, in the re-run-selection-often loop. Executor
// owns one lazily-initialized pool sized to hardware concurrency that every
// entry point borrows instead. Selection results are thread-count-invariant
// (the parallel engine is bit-identical to serial at any width), so sharing
// one full-width pool never changes what a run computes, only how fast.
//
// `threads == 1` keeps its meaning as the serial reference path everywhere;
// callers that want a custom pool (size, lifetime) still inject their own
// via PipelineOptions::pool / SelectionOptions::pool, which always wins.
#pragma once

#include <cstddef>

namespace capi::support {

class ThreadPool;

class Executor {
public:
    /// The shared pool; created with hardware concurrency on first use and
    /// reused for the rest of the process.
    static ThreadPool& pool();

    /// Maps a PipelineOptions-style `threads` request to a pool to borrow:
    /// 1 -> nullptr (serial reference semantics), anything else (0 = "use
    /// hardware concurrency", N > 1 = "run parallel") -> the shared pool.
    static ThreadPool* poolFor(std::size_t threads);
};

}  // namespace capi::support
