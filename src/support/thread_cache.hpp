// Generation-stamped per-thread instance caches.
//
// Measurement-style runtimes look up per-thread state by owner address on
// every probe event. A plain address-keyed thread_local map has an ABA bug:
// destroying an owner on thread A leaves threads B..N holding cache entries
// for its address, and a new owner allocated at the same address would alias
// them (the owner's destructor can only erase the destroying thread's
// entry). Entries are therefore stamped with the owner's process-unique
// generation — a stale entry fails the stamp compare and is simply
// overwritten, never dereferenced. A single-entry fast path keeps the common
// lookup at one TLS load plus two compares.
#pragma once

#include <atomic>
#include <cstdint>
#include <unordered_map>

namespace capi::support {

/// Process-unique, never-reused stamp for an object whose address may be
/// recycled by the allocator. Grab one per instance at construction.
inline std::uint64_t nextGenerationStamp() {
    static std::atomic<std::uint64_t> counter{0};
    return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

/// Single-writer accumulator bump: load-relaxed + store, cheaper than a
/// fetch_add/CAS, and a data-race-free read target for concurrent
/// aggregating readers. Only the owning thread may write. Pass
/// memory_order_release for the *last* counter of a group the writer
/// updates — a reader that acquires it (reading that counter first) then
/// sees every earlier relaxed store of the group (e.g. Score-P's
/// filtered<=probe invariant, TALP's visits-last totals).
template <typename T>
inline void singleWriterAdd(std::atomic<T>& counter, T delta,
                            std::memory_order order = std::memory_order_relaxed) {
    counter.store(counter.load(std::memory_order_relaxed) + delta, order);
}

/// Per-thread (owner address, generation) -> state-pointer cache. Template
/// over the owner type so every cached runtime gets its own thread_local
/// storage. All methods touch only the calling thread's entries.
template <typename Owner>
class ThreadLocalCache {
public:
    /// The cached state for (owner, stamp), or nullptr when this thread has
    /// no entry (or only a stale one from a prior owner at the same address).
    static void* lookup(const Owner* owner, std::uint64_t stamp) {
        Last& last = lastEntry();
        if (last.owner == owner && last.stamp == stamp) {
            return last.state;
        }
        auto& map = mapEntries();
        auto it = map.find(owner);
        if (it != map.end() && it->second.stamp == stamp) {
            last = Last{owner, stamp, it->second.state};
            return it->second.state;
        }
        return nullptr;
    }

    static void store(const Owner* owner, std::uint64_t stamp, void* state) {
        mapEntries()[owner] = Entry{stamp, state};
        lastEntry() = Last{owner, stamp, state};
    }

    /// Drops the calling thread's entry (destructor courtesy; stale entries
    /// on other threads are neutralized by the stamp check instead).
    static void invalidate(const Owner* owner) {
        mapEntries().erase(owner);
        Last& last = lastEntry();
        if (last.owner == owner) {
            last = Last{};
        }
    }

private:
    struct Last {
        const Owner* owner = nullptr;
        std::uint64_t stamp = 0;
        void* state = nullptr;
    };
    struct Entry {
        std::uint64_t stamp = 0;
        void* state = nullptr;
    };

    static Last& lastEntry() {
        thread_local Last last{};
        return last;
    }
    static std::unordered_map<const Owner*, Entry>& mapEntries() {
        thread_local std::unordered_map<const Owner*, Entry> map;
        return map;
    }
};

}  // namespace capi::support
