// Fixed-size thread pool for the parallel selection engine.
//
// Deliberately work-stealing-free: one mutex-protected FIFO shared by a fixed
// set of workers. Selection workloads are coarse (whole pipeline stages,
// multi-thousand-word bitset shards), so a simple queue is contention-free in
// practice and keeps scheduling deterministic enough to reason about.
//
// parallelFor() is deadlock-safe under nesting: the calling thread claims
// chunks itself via an atomic cursor, so even when every worker is busy (or
// the caller *is* a worker running a pipeline stage) the loop completes.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace capi::support {

class ThreadPool {
public:
    /// Spawns `threads` workers; 0 means hardware concurrency. At least one
    /// worker is always created.
    explicit ThreadPool(std::size_t threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    std::size_t threadCount() const noexcept { return workers_.size(); }

    /// Enqueues a task; runs on some worker, fire-and-forget. The caller is
    /// responsible for its own completion tracking.
    void submit(std::function<void()> task);

    /// Runs body(begin, end) over subranges of [0, count) partitioned into
    /// chunks of at most `grain` elements. Blocks until every chunk ran.
    /// The calling thread participates, so nested calls from worker threads
    /// cannot deadlock. The first exception thrown by `body` is rethrown
    /// here after all claimed chunks drain; remaining chunks are skipped.
    void parallelFor(std::size_t count, std::size_t grain,
                     const std::function<void(std::size_t, std::size_t)>& body);

    static std::size_t defaultThreadCount() noexcept;

private:
    void workerLoop();

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> tasks_;
    std::mutex mutex_;
    std::condition_variable available_;
    bool stopping_ = false;
};

}  // namespace capi::support
