// Error types shared across the CaPI reproduction libraries.
#pragma once

#include <stdexcept>
#include <string>

namespace capi::support {

/// Base class for all errors raised by this project. Carries a plain message;
/// subclasses tag the subsystem so callers can catch selectively.
class Error : public std::runtime_error {
public:
    explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Raised on malformed input files (JSON, spec DSL, filter files).
class ParseError : public Error {
public:
    ParseError(const std::string& what, int line, int column)
        : Error(what + " (line " + std::to_string(line) + ", column " +
                std::to_string(column) + ")"),
          line_(line),
          column_(column) {}

    int line() const noexcept { return line_; }
    int column() const noexcept { return column_; }

private:
    int line_;
    int column_;
};

/// Raised when a simulated machine-level invariant is violated, e.g. writing
/// to a code page that was not made writable via mprotect().
class MachineFault : public Error {
public:
    explicit MachineFault(const std::string& what) : Error(what) {}
};

}  // namespace capi::support
