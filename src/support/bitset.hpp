// Dynamic bitset with set-algebra operations.
//
// Backbone of FunctionSet and the reachability analyses: the OpenFOAM-scale
// call graph has ~410k nodes, so selectors operate on 64-bit word arrays
// rather than per-element containers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace capi::support {

class DynamicBitset {
public:
    DynamicBitset() = default;
    explicit DynamicBitset(std::size_t size)
        : size_(size), words_((size + 63) / 64, 0) {}

    std::size_t size() const noexcept { return size_; }

    void set(std::size_t i) { words_[i >> 6] |= (1ULL << (i & 63)); }
    void reset(std::size_t i) { words_[i >> 6] &= ~(1ULL << (i & 63)); }
    bool test(std::size_t i) const { return (words_[i >> 6] >> (i & 63)) & 1ULL; }

    void clear() {
        for (std::uint64_t& w : words_) w = 0;
    }

    /// Changes the universe size, preserving bits below min(old, new) —
    /// incremental selection resizes surviving cached sets when a graph
    /// grows (new bits are zero).
    void resize(std::size_t newSize) {
        size_ = newSize;
        words_.resize((newSize + 63) / 64, 0);
        trimTail();
    }

    void setAll() {
        for (std::uint64_t& w : words_) w = ~0ULL;
        trimTail();
    }

    std::size_t count() const {
        std::size_t total = 0;
        for (std::uint64_t w : words_) total += static_cast<std::size_t>(__builtin_popcountll(w));
        return total;
    }

    bool any() const {
        for (std::uint64_t w : words_) {
            if (w != 0) return true;
        }
        return false;
    }

    DynamicBitset& operator|=(const DynamicBitset& other) {
        for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
        return *this;
    }

    DynamicBitset& operator&=(const DynamicBitset& other) {
        for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
        return *this;
    }

    /// Set difference: remove every bit present in `other`.
    DynamicBitset& operator-=(const DynamicBitset& other) {
        for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= ~other.words_[i];
        return *this;
    }

    /// Complement within [0, size()).
    void flipAll() {
        for (std::uint64_t& w : words_) w = ~w;
        trimTail();
    }

    bool operator==(const DynamicBitset& other) const {
        return size_ == other.size_ && words_ == other.words_;
    }

    /// Calls fn(index) for every set bit, in increasing order.
    template <typename Fn>
    void forEach(Fn&& fn) const {
        forEachInWordRange(0, words_.size(), fn);
    }

    // --- word-level access (parallel shard interface) ----------------------
    // The parallel selection engine shards set algebra and BFS frontiers over
    // disjoint 64-bit word ranges; each worker only reads/writes words in its
    // own range, so results are bit-identical to the serial loops.

    std::size_t wordCount() const noexcept { return words_.size(); }

    std::uint64_t word(std::size_t wi) const { return words_[wi]; }

    /// Overwrites word `wi`. The caller may pass an unmasked value for the
    /// final partial word; bits beyond size() are cleared to keep count()
    /// and operator== exact.
    void setWord(std::size_t wi, std::uint64_t value) {
        words_[wi] = value;
        if (wi + 1 == words_.size()) {
            trimTail();
        }
    }

    /// forEach restricted to set bits in words [wordBegin, wordEnd).
    template <typename Fn>
    void forEachInWordRange(std::size_t wordBegin, std::size_t wordEnd,
                            Fn&& fn) const {
        for (std::size_t wi = wordBegin; wi < wordEnd; ++wi) {
            std::uint64_t w = words_[wi];
            while (w != 0) {
                unsigned bit = static_cast<unsigned>(__builtin_ctzll(w));
                fn(wi * 64 + bit);
                w &= w - 1;
            }
        }
    }

    /// True when this set and `other` share any set bit over their common
    /// word prefix. Sizes may differ (a footprint recorded at an older,
    /// smaller universe against a dirty set at the current one); bits beyond
    /// the shorter set count as absent.
    bool intersects(const DynamicBitset& other) const {
        const std::size_t words = words_.size() < other.words_.size()
                                      ? words_.size()
                                      : other.words_.size();
        for (std::size_t i = 0; i < words; ++i) {
            if ((words_[i] & other.words_[i]) != 0) {
                return true;
            }
        }
        return false;
    }

private:
    void trimTail() {
        if (size_ % 64 != 0 && !words_.empty()) {
            words_.back() &= (1ULL << (size_ % 64)) - 1;
        }
    }

    std::size_t size_ = 0;
    std::vector<std::uint64_t> words_;
};

}  // namespace capi::support
