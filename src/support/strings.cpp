#include "support/strings.hpp"

#include <cctype>
#include <cstdio>

namespace capi::support {

std::vector<std::string> split(std::string_view text, char delim) {
    std::vector<std::string> out;
    std::size_t start = 0;
    while (true) {
        std::size_t pos = text.find(delim, start);
        if (pos == std::string_view::npos) {
            out.emplace_back(text.substr(start));
            break;
        }
        out.emplace_back(text.substr(start, pos - start));
        start = pos + 1;
    }
    return out;
}

std::vector<std::string> splitWhitespace(std::string_view text) {
    std::vector<std::string> out;
    std::size_t i = 0;
    while (i < text.size()) {
        while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i])) != 0) {
            ++i;
        }
        std::size_t start = i;
        while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i])) == 0) {
            ++i;
        }
        if (i > start) {
            out.emplace_back(text.substr(start, i - start));
        }
    }
    return out;
}

std::string_view trim(std::string_view text) {
    std::size_t begin = 0;
    std::size_t end = text.size();
    while (begin < end && std::isspace(static_cast<unsigned char>(text[begin])) != 0) {
        ++begin;
    }
    while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1])) != 0) {
        --end;
    }
    return text.substr(begin, end - begin);
}

bool startsWith(std::string_view text, std::string_view prefix) {
    return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool endsWith(std::string_view text, std::string_view suffix) {
    return text.size() >= suffix.size() &&
           text.substr(text.size() - suffix.size()) == suffix;
}

bool globMatch(std::string_view pattern, std::string_view text) {
    // Iterative glob with single-star backtracking: O(n*m) worst case but
    // linear in practice. '*' matches any run, '?' a single character.
    std::size_t p = 0;
    std::size_t t = 0;
    std::size_t starP = std::string_view::npos;
    std::size_t starT = 0;
    while (t < text.size()) {
        if (p < pattern.size() && (pattern[p] == text[t] || pattern[p] == '?')) {
            ++p;
            ++t;
        } else if (p < pattern.size() && pattern[p] == '*') {
            starP = p++;
            starT = t;
        } else if (starP != std::string_view::npos) {
            p = starP + 1;
            t = ++starT;
        } else {
            return false;
        }
    }
    while (p < pattern.size() && pattern[p] == '*') {
        ++p;
    }
    return p == pattern.size();
}

bool isGlobPattern(std::string_view pattern) {
    return pattern.find_first_of("*?") != std::string_view::npos;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
    std::string out;
    for (std::size_t i = 0; i < parts.size(); ++i) {
        if (i > 0) out += sep;
        out += parts[i];
    }
    return out;
}

std::string fixed(double value, int decimals) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", decimals, value);
    return buf;
}

std::string padLeft(std::string_view text, std::size_t width) {
    std::string out;
    if (text.size() < width) {
        out.append(width - text.size(), ' ');
    }
    out += text;
    return out;
}

std::string padRight(std::string_view text, std::size_t width) {
    std::string out(text);
    if (out.size() < width) {
        out.append(width - out.size(), ' ');
    }
    return out;
}

}  // namespace capi::support
