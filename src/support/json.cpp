#include "support/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace capi::support {

Json& JsonObject::operator[](const std::string& key) {
    auto it = index_.find(key);
    if (it != index_.end()) {
        return members_[it->second].second;
    }
    index_.emplace(key, members_.size());
    members_.emplace_back(key, Json());
    return members_.back().second;
}

const Json* JsonObject::find(std::string_view key) const {
    auto it = index_.find(key);
    if (it == index_.end()) {
        return nullptr;
    }
    return &members_[it->second].second;
}

namespace {

[[noreturn]] void typeError(const char* expected) {
    throw Error(std::string("JSON value is not ") + expected);
}

}  // namespace

bool Json::asBool() const {
    if (!isBool()) typeError("a bool");
    return bool_;
}

std::int64_t Json::asInt() const {
    if (isInt()) return int_;
    if (isDouble()) return static_cast<std::int64_t>(double_);
    typeError("a number");
}

double Json::asDouble() const {
    if (isDouble()) return double_;
    if (isInt()) return static_cast<double>(int_);
    typeError("a number");
}

const std::string& Json::asString() const {
    if (!isString()) typeError("a string");
    return string_;
}

const Json::Array& Json::asArray() const {
    if (!isArray()) typeError("an array");
    return *array_;
}

Json::Array& Json::asArray() {
    if (!isArray()) typeError("an array");
    return *array_;
}

const JsonObject& Json::asObject() const {
    if (!isObject()) typeError("an object");
    return *object_;
}

JsonObject& Json::asObject() {
    if (!isObject()) typeError("an object");
    return *object_;
}

Json& Json::operator[](const std::string& key) {
    if (isNull()) {
        type_ = Type::Object;
        object_ = std::make_shared<JsonObject>();
    }
    return asObject()[key];
}

const Json* Json::find(std::string_view key) const {
    if (!isObject()) return nullptr;
    return object_->find(key);
}

std::int64_t Json::getInt(std::string_view key, std::int64_t def) const {
    const Json* v = find(key);
    return (v != nullptr && v->isNumber()) ? v->asInt() : def;
}

double Json::getDouble(std::string_view key, double def) const {
    const Json* v = find(key);
    return (v != nullptr && v->isNumber()) ? v->asDouble() : def;
}

bool Json::getBool(std::string_view key, bool def) const {
    const Json* v = find(key);
    return (v != nullptr && v->isBool()) ? v->asBool() : def;
}

std::string Json::getString(std::string_view key, const std::string& def) const {
    const Json* v = find(key);
    return (v != nullptr && v->isString()) ? v->asString() : def;
}

void Json::push_back(Json v) {
    if (isNull()) {
        type_ = Type::Array;
        array_ = std::make_shared<Array>();
    }
    asArray().push_back(std::move(v));
}

namespace {

void writeEscaped(std::string& out, const std::string& s) {
    out.push_back('"');
    for (char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            case '\r': out += "\\r"; break;
            case '\b': out += "\\b"; break;
            case '\f': out += "\\f"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", c);
                    out += buf;
                } else {
                    out.push_back(c);
                }
        }
    }
    out.push_back('"');
}

void indentTo(std::string& out, int indent) {
    out.append(static_cast<std::size_t>(indent) * 2, ' ');
}

}  // namespace

void Json::writeTo(std::string& out, bool pretty, int indent) const {
    switch (type_) {
        case Type::Null: out += "null"; break;
        case Type::Bool: out += bool_ ? "true" : "false"; break;
        case Type::Int: out += std::to_string(int_); break;
        case Type::Double: {
            if (std::isfinite(double_)) {
                char buf[32];
                std::snprintf(buf, sizeof buf, "%.17g", double_);
                out += buf;
            } else {
                out += "null";  // JSON has no Inf/NaN; degrade gracefully.
            }
            break;
        }
        case Type::String: writeEscaped(out, string_); break;
        case Type::Array: {
            const Array& a = *array_;
            if (a.empty()) {
                out += "[]";
                break;
            }
            out.push_back('[');
            for (std::size_t i = 0; i < a.size(); ++i) {
                if (i > 0) out.push_back(',');
                if (pretty) {
                    out.push_back('\n');
                    indentTo(out, indent + 1);
                }
                a[i].writeTo(out, pretty, indent + 1);
            }
            if (pretty) {
                out.push_back('\n');
                indentTo(out, indent);
            }
            out.push_back(']');
            break;
        }
        case Type::Object: {
            const JsonObject& o = *object_;
            if (o.empty()) {
                out += "{}";
                break;
            }
            out.push_back('{');
            bool first = true;
            for (const auto& [key, value] : o) {
                if (!first) out.push_back(',');
                first = false;
                if (pretty) {
                    out.push_back('\n');
                    indentTo(out, indent + 1);
                }
                writeEscaped(out, key);
                out.push_back(':');
                if (pretty) out.push_back(' ');
                value.writeTo(out, pretty, indent + 1);
            }
            if (pretty) {
                out.push_back('\n');
                indentTo(out, indent);
            }
            out.push_back('}');
            break;
        }
    }
}

std::string Json::dump(bool pretty) const {
    std::string out;
    writeTo(out, pretty, 0);
    return out;
}

namespace {

/// Hand-written recursive-descent JSON parser with line/column diagnostics.
class JsonParser {
public:
    explicit JsonParser(std::string_view text) : text_(text) {}

    Json parseDocument() {
        Json v = parseValue();
        skipWhitespace();
        if (pos_ != text_.size()) {
            fail("trailing characters after JSON document");
        }
        return v;
    }

private:
    [[noreturn]] void fail(const std::string& message) const {
        throw ParseError("JSON: " + message, line_, column_);
    }

    bool atEnd() const { return pos_ >= text_.size(); }

    char peek() const {
        if (atEnd()) fail("unexpected end of input");
        return text_[pos_];
    }

    char advance() {
        char c = peek();
        ++pos_;
        if (c == '\n') {
            ++line_;
            column_ = 1;
        } else {
            ++column_;
        }
        return c;
    }

    void expect(char c) {
        if (atEnd() || peek() != c) {
            fail(std::string("expected '") + c + "'");
        }
        advance();
    }

    void skipWhitespace() {
        while (!atEnd()) {
            char c = text_[pos_];
            if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
                advance();
            } else {
                break;
            }
        }
    }

    bool consumeKeyword(std::string_view kw) {
        if (text_.substr(pos_, kw.size()) == kw) {
            for (std::size_t i = 0; i < kw.size(); ++i) advance();
            return true;
        }
        return false;
    }

    Json parseValue() {
        skipWhitespace();
        char c = peek();
        switch (c) {
            case '{': return parseObject();
            case '[': return parseArray();
            case '"': return Json(parseString());
            case 't':
                if (consumeKeyword("true")) return Json(true);
                fail("invalid keyword");
            case 'f':
                if (consumeKeyword("false")) return Json(false);
                fail("invalid keyword");
            case 'n':
                if (consumeKeyword("null")) return Json(nullptr);
                fail("invalid keyword");
            default: return parseNumber();
        }
    }

    Json parseObject() {
        expect('{');
        JsonObject obj;
        skipWhitespace();
        if (peek() == '}') {
            advance();
            return Json(std::move(obj));
        }
        while (true) {
            skipWhitespace();
            std::string key = parseString();
            skipWhitespace();
            expect(':');
            obj[key] = parseValue();
            skipWhitespace();
            char c = advance();
            if (c == '}') break;
            if (c != ',') fail("expected ',' or '}' in object");
        }
        return Json(std::move(obj));
    }

    Json parseArray() {
        expect('[');
        Json::Array arr;
        skipWhitespace();
        if (peek() == ']') {
            advance();
            return Json(std::move(arr));
        }
        while (true) {
            arr.push_back(parseValue());
            skipWhitespace();
            char c = advance();
            if (c == ']') break;
            if (c != ',') fail("expected ',' or ']' in array");
        }
        return Json(std::move(arr));
    }

    std::string parseString() {
        if (peek() != '"') fail("expected string");
        advance();
        std::string out;
        while (true) {
            char c = advance();
            if (c == '"') break;
            if (c == '\\') {
                char esc = advance();
                switch (esc) {
                    case '"': out.push_back('"'); break;
                    case '\\': out.push_back('\\'); break;
                    case '/': out.push_back('/'); break;
                    case 'n': out.push_back('\n'); break;
                    case 't': out.push_back('\t'); break;
                    case 'r': out.push_back('\r'); break;
                    case 'b': out.push_back('\b'); break;
                    case 'f': out.push_back('\f'); break;
                    case 'u': {
                        unsigned code = 0;
                        for (int i = 0; i < 4; ++i) {
                            char h = advance();
                            code <<= 4;
                            if (h >= '0' && h <= '9') {
                                code |= static_cast<unsigned>(h - '0');
                            } else if (h >= 'a' && h <= 'f') {
                                code |= static_cast<unsigned>(h - 'a' + 10);
                            } else if (h >= 'A' && h <= 'F') {
                                code |= static_cast<unsigned>(h - 'A' + 10);
                            } else {
                                fail("invalid \\u escape");
                            }
                        }
                        // Encode as UTF-8 (basic multilingual plane only).
                        if (code < 0x80) {
                            out.push_back(static_cast<char>(code));
                        } else if (code < 0x800) {
                            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
                            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
                        } else {
                            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
                            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
                            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
                        }
                        break;
                    }
                    default: fail("invalid escape sequence");
                }
            } else {
                out.push_back(c);
            }
        }
        return out;
    }

    Json parseNumber() {
        std::size_t start = pos_;
        if (!atEnd() && (peek() == '-' || peek() == '+')) advance();
        bool isDouble = false;
        while (!atEnd()) {
            char c = text_[pos_];
            if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
                advance();
            } else if (c == '.' || c == 'e' || c == 'E' || c == '-' || c == '+') {
                if (c == '.' || c == 'e' || c == 'E') isDouble = true;
                advance();
            } else {
                break;
            }
        }
        std::string_view tok = text_.substr(start, pos_ - start);
        if (tok.empty()) fail("expected number");
        if (!isDouble) {
            std::int64_t value = 0;
            auto [ptr, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), value);
            if (ec == std::errc() && ptr == tok.data() + tok.size()) {
                return Json(value);
            }
        }
        double value = 0.0;
        auto [ptr, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), value);
        if (ec != std::errc() || ptr != tok.data() + tok.size()) {
            fail("malformed number");
        }
        return Json(value);
    }

    std::string_view text_;
    std::size_t pos_ = 0;
    int line_ = 1;
    int column_ = 1;
};

}  // namespace

Json Json::parse(std::string_view text) { return JsonParser(text).parseDocument(); }

}  // namespace capi::support
