#include "support/fault.hpp"

#include <mutex>
#include <unordered_map>

#include "support/hash.hpp"
#include "support/rng.hpp"

namespace capi::support::fault {

namespace {

struct Site {
    FaultSpec spec;
    SplitMix64 rng{0};
    bool armed = false;
    SiteStats counters;
};

struct Registry {
    std::mutex mutex;
    std::unordered_map<std::string, Site> sites;
};

Registry& registry() {
    static Registry instance;
    return instance;
}

}  // namespace

namespace detail {

std::optional<double> hitSlow(const char* site) {
    if (t_suppressDepth > 0) {
        return std::nullopt;  // Rollback in progress: nothing may fail.
    }
    Registry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    auto it = reg.sites.find(site);
    if (it == reg.sites.end() || !it->second.armed) {
        return std::nullopt;
    }
    Site& s = it->second;
    ++s.counters.hits;
    if (s.counters.hits <= s.spec.afterHits) {
        return std::nullopt;  // Still in the skip window.
    }
    if (s.counters.fires >= s.spec.maxFires) {
        return std::nullopt;  // One-shot (or capped) site is spent.
    }
    if (s.spec.probability < 1.0 && !s.rng.nextBool(s.spec.probability)) {
        return std::nullopt;
    }
    ++s.counters.fires;
    return s.spec.magnitude;
}

}  // namespace detail

void arm(const std::string& site, FaultSpec spec, std::uint64_t seed) {
    Registry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    Site& s = reg.sites[site];
    if (!s.armed) {
        detail::g_armedSites.fetch_add(1, std::memory_order_relaxed);
    }
    s.spec = spec;
    // Per-site stream: the schedule depends only on (seed, site name) and
    // the site's own hit sequence, never on arming order or other sites.
    s.rng = SplitMix64(hashCombine(seed, fnv1a(site)));
    s.armed = true;
    s.counters = SiteStats{};
}

void disarm(const std::string& site) {
    Registry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    auto it = reg.sites.find(site);
    if (it == reg.sites.end() || !it->second.armed) {
        return;
    }
    it->second.armed = false;
    detail::g_armedSites.fetch_sub(1, std::memory_order_relaxed);
}

void disarmAll() {
    Registry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    for (auto& [name, site] : reg.sites) {
        if (site.armed) {
            site.armed = false;
            detail::g_armedSites.fetch_sub(1, std::memory_order_relaxed);
        }
    }
}

SiteStats stats(const std::string& site) {
    Registry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    auto it = reg.sites.find(site);
    return it == reg.sites.end() ? SiteStats{} : it->second.counters;
}

std::uint64_t totalFires() {
    Registry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    std::uint64_t total = 0;
    for (const auto& [name, site] : reg.sites) {
        total += site.counters.fires;
    }
    return total;
}

}  // namespace capi::support::fault
