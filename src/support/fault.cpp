#include "support/fault.hpp"

#include <mutex>
#include <unordered_map>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/hash.hpp"
#include "support/rng.hpp"
#include "support/timer.hpp"

namespace capi::support::fault {

namespace {

struct Site {
    FaultSpec spec;
    SplitMix64 rng{0};
    bool armed = false;
    SiteStats counters;
};

struct Registry {
    std::mutex mutex;
    std::unordered_map<std::string, Site> sites;
};

Registry& registry() {
    static Registry instance;
    // Fold per-site hit/fire counters into the process metrics registry so
    // fault-injection runs are inspectable without bespoke accessors. Both
    // singletons live until process exit, so no unregistration.
    static const std::uint64_t collectorId =
        obs::MetricsRegistry::global().addCollector(
            [](std::vector<obs::Sample>& out) {
                std::lock_guard<std::mutex> lock(instance.mutex);
                for (const auto& [name, site] : instance.sites) {
                    out.push_back({"capi_fault_hits_total{site=\"" + name +
                                       "\"}",
                                   obs::MetricKind::Counter,
                                   static_cast<double>(site.counters.hits)});
                    out.push_back({"capi_fault_fires_total{site=\"" + name +
                                       "\"}",
                                   obs::MetricKind::Counter,
                                   static_cast<double>(site.counters.fires)});
                }
            });
    (void)collectorId;
    return instance;
}

}  // namespace

namespace detail {

std::optional<double> hitSlow(const char* site) {
    if (t_suppressDepth > 0) {
        return std::nullopt;  // Rollback in progress: nothing may fail.
    }
    Registry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    auto it = reg.sites.find(site);
    if (it == reg.sites.end() || !it->second.armed) {
        return std::nullopt;
    }
    Site& s = it->second;
    ++s.counters.hits;
    if (s.counters.hits <= s.spec.afterHits) {
        return std::nullopt;  // Still in the skip window.
    }
    if (s.counters.fires >= s.spec.maxFires) {
        return std::nullopt;  // One-shot (or capped) site is spent.
    }
    if (s.spec.probability < 1.0 && !s.rng.nextBool(s.spec.probability)) {
        return std::nullopt;
    }
    ++s.counters.fires;
    obs::TraceRecorder& recorder = obs::TraceRecorder::global();
    if (recorder.enabled()) {
        recorder.recordInstant(
            recorder.internName(std::string("fault.fire:") + site),
            obs::SpanCategory::Fault, probeNowNs(), s.counters.fires);
    }
    return s.spec.magnitude;
}

}  // namespace detail

void arm(const std::string& site, FaultSpec spec, std::uint64_t seed) {
    Registry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    Site& s = reg.sites[site];
    if (!s.armed) {
        detail::g_armedSites.fetch_add(1, std::memory_order_relaxed);
    }
    s.spec = spec;
    // Per-site stream: the schedule depends only on (seed, site name) and
    // the site's own hit sequence, never on arming order or other sites.
    s.rng = SplitMix64(hashCombine(seed, fnv1a(site)));
    s.armed = true;
    s.counters = SiteStats{};
}

void disarm(const std::string& site) {
    Registry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    auto it = reg.sites.find(site);
    if (it == reg.sites.end() || !it->second.armed) {
        return;
    }
    it->second.armed = false;
    detail::g_armedSites.fetch_sub(1, std::memory_order_relaxed);
}

void disarmAll() {
    Registry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    for (auto& [name, site] : reg.sites) {
        if (site.armed) {
            site.armed = false;
            detail::g_armedSites.fetch_sub(1, std::memory_order_relaxed);
        }
    }
}

SiteStats stats(const std::string& site) {
    Registry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    auto it = reg.sites.find(site);
    return it == reg.sites.end() ? SiteStats{} : it->second.counters;
}

std::uint64_t totalFires() {
    Registry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    std::uint64_t total = 0;
    for (const auto& [name, site] : reg.sites) {
        total += site.counters.fires;
    }
    return total;
}

}  // namespace capi::support::fault
