// Bounded, jittered exponential backoff with a deterministic schedule.
//
// Used wherever the self-healing paths wait-and-retry: the adaptive
// controller's patch retries and MpiWorld's collective-timeout polling.
// Jitter is drawn from SplitMix64, so the whole delay schedule is a pure
// function of (options, seed) — tests pin it, and fault-injection runs
// replay identically from the same seed.
#pragma once

#include <algorithm>
#include <cstdint>

#include "support/rng.hpp"

namespace capi::support {

struct BackoffOptions {
    std::uint64_t baseNs = 1'000;       ///< First delay before jitter.
    std::uint64_t maxNs = 1'000'000;    ///< Hard cap, applied after jitter.
    double multiplier = 2.0;            ///< Growth per attempt.
    /// Each delay is scaled by a uniform factor in [1-j, 1+j]: desynchronizes
    /// retry storms without losing determinism (the factor comes from the
    /// seeded stream).
    double jitterFraction = 0.1;
};

class Backoff {
public:
    explicit Backoff(BackoffOptions options = {}, std::uint64_t seed = 0)
        : options_(options), seed_(seed), rng_(seed) {}

    /// The next delay in the schedule: min(base * multiplier^attempt, max),
    /// jittered, never below 1ns (a zero delay would turn a retry loop into
    /// a spin).
    std::uint64_t nextDelayNs() {
        double raw = static_cast<double>(options_.baseNs);
        for (std::uint64_t i = 0; i < attempts_; ++i) {
            raw *= options_.multiplier;
            if (raw >= static_cast<double>(options_.maxNs)) {
                raw = static_cast<double>(options_.maxNs);
                break;
            }
        }
        ++attempts_;
        if (options_.jitterFraction > 0.0) {
            double factor = 1.0 + options_.jitterFraction *
                                      (2.0 * rng_.nextDouble() - 1.0);
            raw *= factor;
        }
        double capped =
            std::min(raw, static_cast<double>(options_.maxNs));
        return std::max<std::uint64_t>(1, static_cast<std::uint64_t>(capped));
    }

    /// Restarts the schedule (including the jitter stream) as if freshly
    /// constructed — the success path of a retry loop.
    void reset() {
        attempts_ = 0;
        rng_ = SplitMix64(seed_);
    }

    std::uint64_t attempts() const { return attempts_; }
    const BackoffOptions& options() const { return options_; }

private:
    BackoffOptions options_;
    std::uint64_t seed_;
    SplitMix64 rng_;
    std::uint64_t attempts_ = 0;
};

}  // namespace capi::support
