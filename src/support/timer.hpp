// Wall-clock timing helpers used by the measurement substrates and benches.
#pragma once

#include <chrono>
#include <cstdint>

namespace capi::support {

/// Monotonic wall-clock timestamp in nanoseconds.
inline std::uint64_t nowNs() {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/// Simple stopwatch. Constructed running.
class Timer {
public:
    Timer() : start_(nowNs()) {}

    void restart() { start_ = nowNs(); }

    std::uint64_t elapsedNs() const { return nowNs() - start_; }
    double elapsedUs() const { return static_cast<double>(elapsedNs()) / 1e3; }
    double elapsedMs() const { return static_cast<double>(elapsedNs()) / 1e6; }
    double elapsedSec() const { return static_cast<double>(elapsedNs()) / 1e9; }

private:
    std::uint64_t start_;
};

/// Accumulates into a target on destruction; for timing scopes inside loops.
class ScopedAccumulator {
public:
    explicit ScopedAccumulator(std::uint64_t& target) : target_(target) {}
    ~ScopedAccumulator() { target_ += timer_.elapsedNs(); }
    ScopedAccumulator(const ScopedAccumulator&) = delete;
    ScopedAccumulator& operator=(const ScopedAccumulator&) = delete;

private:
    std::uint64_t& target_;
    Timer timer_;
};

}  // namespace capi::support
