// Wall-clock timing helpers used by the measurement substrates and benches.
#pragma once

#include <chrono>
#include <cstdint>

namespace capi::support {

/// Monotonic wall-clock timestamp in nanoseconds.
inline std::uint64_t nowNs() {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

#if defined(__x86_64__) || defined(__i386__)
#define CAPI_HAS_TSC_CLOCK 1
namespace detail {
struct TscCalibration {
    std::uint64_t tscBase = 0;  ///< rdtsc at calibration.
    std::uint64_t nsBase = 0;   ///< nowNs() at calibration.
    double nsPerTick = 1.0;
};
/// Calibrated once per process against the monotonic clock (~200us spin on
/// first use). Ticks are converted relative to tscBase so the value pushed
/// through the double mantissa stays small — a raw TSC exceeds 2^53 after
/// weeks of host uptime and would quantize timestamps to several ns.
inline const TscCalibration& tscCalibration() {
    static const TscCalibration calibration = [] {
        TscCalibration c;
        c.nsBase = nowNs();
        c.tscBase = __builtin_ia32_rdtsc();
        std::uint64_t wallEnd;
        do {
            wallEnd = nowNs();
        } while (wallEnd - c.nsBase < 200'000);
        std::uint64_t tscEnd = __builtin_ia32_rdtsc();
        c.nsPerTick = static_cast<double>(wallEnd - c.nsBase) /
                      static_cast<double>(tscEnd - c.tscBase);
        return c;
    }();
    return calibration;
}
}  // namespace detail

/// Probe timestamp in nanoseconds: one rdtsc plus one multiply instead of a
/// clock_gettime syscall/vDSO round trip — the same trick real measurement
/// runtimes (Score-P, XRay) use, since the timestamp pair is the dominant
/// cost of an enter/exit probe. Comparable with nowNs() values (same base).
/// Assumes an invariant TSC (as the Linux clocksource does); consumers of
/// timestamp *differences* should clamp the rare cross-core skew to zero.
inline std::uint64_t probeNowNs() {
    const detail::TscCalibration& cal = detail::tscCalibration();
    // Signed tick delta: a core with slight negative TSC skew right after
    // calibration must not wrap to 2^64 ticks.
    double ns = static_cast<double>(static_cast<std::int64_t>(
                    __builtin_ia32_rdtsc() - cal.tscBase)) *
                cal.nsPerTick;
    return ns <= 0 ? cal.nsBase : cal.nsBase + static_cast<std::uint64_t>(ns);
}
#else
inline std::uint64_t probeNowNs() { return nowNs(); }
#endif

/// Simple stopwatch. Constructed running.
class Timer {
public:
    Timer() : start_(nowNs()) {}

    void restart() { start_ = nowNs(); }

    std::uint64_t elapsedNs() const { return nowNs() - start_; }
    double elapsedUs() const { return static_cast<double>(elapsedNs()) / 1e3; }
    double elapsedMs() const { return static_cast<double>(elapsedNs()) / 1e6; }
    double elapsedSec() const { return static_cast<double>(elapsedNs()) / 1e9; }

private:
    std::uint64_t start_;
};

/// Accumulates into a target on destruction; for timing scopes inside loops.
class ScopedAccumulator {
public:
    explicit ScopedAccumulator(std::uint64_t& target) : target_(target) {}
    ~ScopedAccumulator() { target_ += timer_.elapsedNs(); }
    ScopedAccumulator(const ScopedAccumulator&) = delete;
    ScopedAccumulator& operator=(const ScopedAccumulator&) = delete;

private:
    std::uint64_t& target_;
    Timer timer_;
};

}  // namespace capi::support
