// Deterministic pseudo-random number generation for the synthetic app models.
//
// SplitMix64: tiny, fast, well-distributed; identical streams across
// platforms, which keeps every generated call graph and workload reproducible
// from a seed (std::mt19937 distributions are not portable across stdlibs).
#pragma once

#include <cstdint>

namespace capi::support {

class SplitMix64 {
public:
    explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

    std::uint64_t next() {
        std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
        z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
        z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
        return z ^ (z >> 31);
    }

    /// Uniform integer in [0, bound); bound must be > 0.
    std::uint64_t nextBelow(std::uint64_t bound) { return next() % bound; }

    /// Uniform integer in [lo, hi] inclusive.
    std::uint64_t nextInRange(std::uint64_t lo, std::uint64_t hi) {
        return lo + nextBelow(hi - lo + 1);
    }

    /// Uniform double in [0, 1).
    double nextDouble() {
        return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
    }

    /// Bernoulli draw.
    bool nextBool(double probability) { return nextDouble() < probability; }

private:
    std::uint64_t state_;
};

}  // namespace capi::support
