// The xray-dso runtime library (paper Sec. V-B2).
//
// Linked into every instrumented shared object, this runtime collects the
// object's sled table when the DSO is loaded and passes it to the main XRay
// runtime through the registration API, together with the object's locally
// linked trampolines. The trampolines are position independent (symbols
// addressed relative to the GOT, i.e. compiled with -fPIC), which is what
// makes them callable after relocation.
#pragma once

#include <optional>

#include "xraysim/xray_runtime.hpp"

namespace capi::xray {

/// Handle returned from DSO registration, used for deregistration on unload.
struct DsoHandle {
    ObjectId objectId = 0;
};

/// Registers a loaded DSO with the main runtime. The xray-dso library always
/// links position-independent trampolines, so the flag is forced on here
/// regardless of what the caller assembled.
inline std::optional<DsoHandle> dsoRegister(XRayRuntime& runtime,
                                            ObjectRegistration registration) {
    registration.trampolinesPositionIndependent = true;
    std::optional<ObjectId> id = runtime.registerDso(std::move(registration));
    if (!id.has_value()) {
        return std::nullopt;
    }
    return DsoHandle{*id};
}

/// Deregisters a DSO on dlclose; its sleds are unpatched first.
inline bool dsoUnregister(XRayRuntime& runtime, DsoHandle handle) {
    return runtime.unregisterDso(handle.objectId);
}

}  // namespace capi::xray
