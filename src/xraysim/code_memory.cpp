#include "xraysim/code_memory.hpp"

#include "support/fault.hpp"
#include "xraysim/sled.hpp"

namespace capi::xray {

CodeMemory::CodeMemory(std::uint64_t bytes) {
    pageCount_ = (bytes + kPageSize - 1) / kPageSize;
    if (pageCount_ == 0) {
        pageCount_ = 1;
    }
    cells_.resize(pageCount_ * kPageSize / kSledBytes);
    writable_.assign(pageCount_, false);
}

std::uint64_t CodeMemory::cellIndex(std::uint64_t address) const {
    std::uint64_t index = address / kSledBytes;
    if (index >= cells_.size()) {
        throw support::MachineFault("code access out of bounds: address " +
                                    std::to_string(address));
    }
    return index;
}

void CodeMemory::mprotect(std::uint64_t address, std::uint64_t length, bool writable) {
    if (length == 0) {
        return;
    }
    std::uint64_t firstPage = address / kPageSize;
    std::uint64_t lastPage = (address + length - 1) / kPageSize;
    if (lastPage >= pageCount_) {
        throw support::MachineFault("mprotect out of bounds: address " +
                                    std::to_string(address) + " length " +
                                    std::to_string(length));
    }
    // Injection site: a real mprotect can fail mid-transaction (vma limit,
    // memory pressure). Modeled as the syscall failing before any page of
    // this call changes protection.
    if (support::fault::shouldFail(support::fault::sites::kXrayMprotect)) {
        throw support::MachineFault("injected fault: mprotect failed at address " +
                                    std::to_string(address));
    }
    ++mprotectCalls_;
    for (std::uint64_t page = firstPage; page <= lastPage; ++page) {
        if (writable && !writable_[page]) {
            ++pagesMadeWritable_;  // copy-on-write fault on first write path
        }
        writable_[page] = writable;
    }
}

bool CodeMemory::pageWritable(std::uint64_t address) const {
    std::uint64_t page = address / kPageSize;
    if (page >= pageCount_) {
        throw support::MachineFault("page query out of bounds");
    }
    return writable_[page];
}

const CodeCell& CodeMemory::read(std::uint64_t address) const {
    return cells_[cellIndex(address)];
}

void CodeMemory::write(std::uint64_t address, CodeCell cell) {
    std::uint64_t index = cellIndex(address);
    if (!writable_[address / kPageSize]) {
        throw support::MachineFault(
            "write to execute-only code page at address " + std::to_string(address) +
            " (missing mprotect before patching)");
    }
    // Injection site: a sled flip dies mid-page-run (the COW copy faulted,
    // the page went away under memory pressure). Fails before the cell is
    // touched, so the aborted write leaves the old bytes intact.
    if (support::fault::shouldFail(support::fault::sites::kXraySledWrite)) {
        throw support::MachineFault("injected fault: sled write failed at address " +
                                    std::to_string(address));
    }
    cells_[index] = cell;
    ++cellWrites_;
}

}  // namespace capi::xray
