// XRay's compile-time instrumentation pre-filter.
//
// The XRay machine pass skips functions below an instruction-count threshold
// (default 200 in LLVM, controlled by -fxray-instruction-threshold): tiny
// functions are deemed not relevant w.r.t. runtime consumption and would only
// add patching surface. Functions containing loops are instrumented even
// under the threshold (they may run long), and an always-instrument attribute
// overrides everything — both as in LLVM.
#pragma once

#include <cstdint>

namespace capi::xray {

inline constexpr std::uint32_t kDefaultInstructionThreshold = 200;

struct ThresholdPolicy {
    std::uint32_t instructionThreshold = kDefaultInstructionThreshold;
    bool ignoreLoops = false;  ///< -fxray-ignore-loops
};

constexpr bool shouldPrepareFunction(std::uint32_t numInstructions, bool hasLoop,
                                     bool alwaysInstrument,
                                     const ThresholdPolicy& policy = {}) {
    if (alwaysInstrument) {
        return true;
    }
    if (numInstructions >= policy.instructionThreshold) {
        return true;
    }
    return hasLoop && !policy.ignoreLoops;
}

}  // namespace capi::xray
