// Simulated process code memory with page-protection semantics.
//
// Models the part of the machine XRay's patching interacts with: executable
// pages that must be remapped writable (mprotect + copy-on-write) before a
// sled can be rewritten, and remapped back afterwards. Addresses are byte
// addresses into a flat simulated text segment; instructions are one record
// per sled slot. Writing through a non-writable page raises MachineFault,
// exactly the failure mode a buggy patcher would trigger as a SIGSEGV.
#pragma once

#include <cstdint>
#include <vector>

#include "support/error.hpp"

namespace capi::xray {

inline constexpr std::uint64_t kPageSize = 4096;

/// The instruction occupying one sled slot (or plain function body bytes).
enum class Instr : std::uint8_t {
    NopSled,            ///< Unpatched sled: falls through, no effect.
    JmpEntryTrampoline, ///< Patched entry sled.
    JmpExitTrampoline,  ///< Patched exit sled.
    JmpTailTrampoline,  ///< Patched tail-call exit sled.
    Body,               ///< Ordinary function body bytes (never patched).
};

/// One sled-granular memory cell: the instruction plus its operand (the
/// trampoline slot a patched sled jumps through).
struct CodeCell {
    Instr instr = Instr::Body;
    std::uint32_t operand = 0;
};

class CodeMemory {
public:
    /// Creates `bytes` of code memory, rounded up to whole pages, all cells
    /// Body, all pages execute-only.
    explicit CodeMemory(std::uint64_t bytes);

    std::uint64_t sizeBytes() const { return pageCount_ * kPageSize; }
    std::uint64_t pageCount() const { return pageCount_; }

    /// Changes protection of all pages intersecting [address, address+length).
    /// Counts distinct pages transitioned to writable (COW page touches).
    void mprotect(std::uint64_t address, std::uint64_t length, bool writable);

    bool pageWritable(std::uint64_t address) const;

    const CodeCell& read(std::uint64_t address) const;

    /// Throws support::MachineFault when the containing page is not writable.
    void write(std::uint64_t address, CodeCell cell);

    // --- statistics ---------------------------------------------------------
    std::uint64_t mprotectCalls() const { return mprotectCalls_; }
    std::uint64_t pagesMadeWritable() const { return pagesMadeWritable_; }
    std::uint64_t cellWrites() const { return cellWrites_; }

private:
    std::uint64_t cellIndex(std::uint64_t address) const;

    std::uint64_t pageCount_ = 0;
    std::vector<CodeCell> cells_;     ///< One cell per kSledBytes slot.
    std::vector<bool> writable_;      ///< Per page.
    std::uint64_t mprotectCalls_ = 0;
    std::uint64_t pagesMadeWritable_ = 0;
    std::uint64_t cellWrites_ = 0;
};

}  // namespace capi::xray
