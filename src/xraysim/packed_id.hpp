// Packed XRay function identifiers (paper Fig. 4).
//
// The original XRay runtime identified functions with a flat 32-bit ID that
// is only unique within the main executable. To support instrumenting
// dynamic shared objects, the ID space is split: the first (most significant)
// 8 bits carry the object ID, the remaining 24 bits the per-object function
// ID. The main executable is always object 0, so its packed IDs are
// numerically identical to the legacy function IDs — existing tools keep
// working unchanged.
//
// Capacity consequences (validated by tests and reported in the paper):
//   * at most 255 DSOs can be registered alongside the main executable,
//   * at most 2^24 (~16.7 M) functions per object. For reference, the
//     largest object in the paper's OpenFOAM case used 28,687 IDs.
#pragma once

#include <cstdint>

namespace capi::xray {

using PackedId = std::uint32_t;
using ObjectId = std::uint32_t;    ///< 0 = main executable, 1..255 = DSOs.
using FunctionId = std::uint32_t;  ///< Local to one object; 24 bits.

inline constexpr unsigned kObjectIdBits = 8;
inline constexpr unsigned kFunctionIdBits = 24;
inline constexpr ObjectId kMainExecutableObjectId = 0;
inline constexpr ObjectId kMaxObjectId = (1u << kObjectIdBits) - 1;  // 255
inline constexpr std::uint32_t kMaxFunctionsPerObject = 1u << kFunctionIdBits;
inline constexpr FunctionId kFunctionIdMask = kMaxFunctionsPerObject - 1;

constexpr PackedId packId(ObjectId object, FunctionId function) {
    return (object << kFunctionIdBits) | (function & kFunctionIdMask);
}

constexpr ObjectId objectIdOf(PackedId packed) {
    return packed >> kFunctionIdBits;
}

constexpr FunctionId functionIdOf(PackedId packed) {
    return packed & kFunctionIdMask;
}

static_assert(packId(kMainExecutableObjectId, 1234) == 1234,
              "main-executable packed IDs must equal legacy function IDs");
static_assert(objectIdOf(packId(200, 99)) == 200);
static_assert(functionIdOf(packId(200, 99)) == 99);

}  // namespace capi::xray
