// The XRay runtime (xray-rt) extended with DSO support (paper Sec. V-B).
//
// Responsibilities, mirroring compiler-rt's XRay runtime:
//  * track every patchable object: the main executable (object 0) plus up to
//    255 dynamically registered shared objects, each with its sled table and
//    locally linked trampolines;
//  * patch/unpatch sleds — flip the protection of the page range containing
//    the sleds, rewrite NOP sleds into jumps carrying the *packed* function
//    ID, and seal the pages again;
//  * dispatch sled hits through the object's trampoline to the installed
//    event handler.
//
// DSO trampolines must be position independent: they are linked into a
// relocatable object, so absolute addressing of the handler pointer faults
// once the object is loaded away from its link base. The simulation enforces
// this exactly (see invokeSled), reproducing the @GOTPCREL fix described in
// the paper.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "xraysim/code_memory.hpp"
#include "xraysim/packed_id.hpp"
#include "xraysim/sled.hpp"

namespace capi::xray {

/// Event handler: the measurement tool's hook. Kept as a plain function
/// pointer plus context, like __xray_set_handler.
using Handler = void (*)(void* context, PackedId function, XRayEntryType type);

/// Everything the xray-dso runtime hands over when an object is registered.
struct ObjectRegistration {
    std::string name;
    std::uint64_t linkBase = 0;  ///< Address the sled table was linked for.
    std::uint64_t loadBase = 0;  ///< Address the object got mapped at.
    bool trampolinesPositionIndependent = false;
    SledTable sledTable;         ///< Link-time sled addresses.
};

struct PatchStats {
    std::size_t sledsPatched = 0;
    std::size_t sledsUnpatched = 0;
    std::size_t pagesMadeWritable = 0;
    std::uint64_t nanoseconds = 0;
};

/// A delta patch transaction failed and was rolled back: every sled and
/// tier tag the transaction had already flipped was restored, so the
/// process is bit-identical to its pre-transaction state. Carries what the
/// rollback undid, for diagnostics and for the controller's retry policy.
class PatchError : public support::Error {
public:
    PatchError(const std::string& what, std::size_t sledsRolledBack,
               std::size_t tiersRolledBack)
        : Error(what),
          sledsRolledBack_(sledsRolledBack),
          tiersRolledBack_(tiersRolledBack) {}

    /// Sled cells restored to their pre-transaction bytes.
    std::size_t sledsRolledBack() const noexcept { return sledsRolledBack_; }
    /// Tier tags restored (retier pass included).
    std::size_t tiersRolledBack() const noexcept { return tiersRolledBack_; }

private:
    std::size_t sledsRolledBack_;
    std::size_t tiersRolledBack_;
};

class XRayRuntime {
public:
    /// The runtime patches the process's code memory; it does not own it.
    explicit XRayRuntime(CodeMemory& memory) : memory_(&memory) {}

    XRayRuntime(const XRayRuntime&) = delete;
    XRayRuntime& operator=(const XRayRuntime&) = delete;

    // --- object registry ----------------------------------------------------

    /// Registers the main executable as object 0. Must be called first.
    ObjectId registerMainExecutable(ObjectRegistration registration);

    /// Registers a DSO; returns std::nullopt when all 255 DSO slots are in
    /// use. Throws support::Error if the object's function-ID space exceeds
    /// 2^24 or the main executable is not registered yet.
    std::optional<ObjectId> registerDso(ObjectRegistration registration);

    /// Unpatches and removes a DSO; its object ID becomes reusable.
    /// Returns false for unknown/not-in-use ids or object 0.
    bool unregisterDso(ObjectId id);

    bool objectRegistered(ObjectId id) const;
    std::size_t registeredObjectCount() const;
    std::uint32_t functionCount(ObjectId id) const;
    const std::string& objectName(ObjectId id) const;

    // --- patching -----------------------------------------------------------

    PatchStats patchAll();
    PatchStats unpatchAll();
    PatchStats patchObject(ObjectId id);
    PatchStats unpatchObject(ObjectId id);
    bool patchFunction(PackedId function);
    bool unpatchFunction(PackedId function);

    /// Flips exactly the sleds of the listed functions in one pass: both
    /// lists are grouped per object, the affected sled addresses coalesced
    /// into contiguous page runs, and each run's protection toggled once.
    /// Functions whose object is gone (dlclosed) or that have no sleds are
    /// skipped and counted per list. Final state is identical to calling
    /// patchFunction/unpatchFunction per entry; the page-touch count is
    /// what the adaptive controller's delta repatching optimizes.
    ///
    /// Both delta entry points are TRANSACTIONAL: every cell and tier tag is
    /// staged with an undo record before it is written, and a failure
    /// anywhere mid-transaction (an mprotect or sled write throwing
    /// MachineFault — see the injection sites in CodeMemory) rolls back all
    /// already-applied flips, re-seals the touched page runs, and rethrows
    /// as PatchError. Sled and tier state is therefore never torn: after
    /// the call the process is bit-identical to either its pre-transaction
    /// or its post-transaction state, nothing in between.
    struct DeltaPatchStats : PatchStats {
        std::size_t unavailablePatch = 0;    ///< Skipped toPatch entries.
        std::size_t unavailableUnpatch = 0;  ///< Skipped toUnpatch entries.
        std::size_t functionsRetiered = 0;   ///< Tier-tag-only transitions.
        std::size_t unavailableRetier = 0;   ///< Skipped toRetier entries.
    };
    DeltaPatchStats patchDelta(const std::vector<PackedId>& toPatch,
                               const std::vector<PackedId>& toUnpatch);

    /// A patch request carrying the measurement tier of the function
    /// (kFullTier or kSampledTier). The tier is runtime bookkeeping riding
    /// along with the sled state — the sled bytes are identical for both
    /// instrumented tiers; only the measurement gate differs — so a
    /// tier-only transition (`toRetier`) updates the tag without touching
    /// any code page, which is what keeps Full<->Sampled re-planning as
    /// cheap as a no-op repatch.
    struct TieredFlip {
        PackedId function = 0;
        std::uint8_t tierTag = 0;
    };
    static constexpr std::uint8_t kFullTier = 0;
    static constexpr std::uint8_t kSampledTier = 1;

    DeltaPatchStats patchDeltaTiered(const std::vector<TieredFlip>& toPatch,
                                     const std::vector<PackedId>& toUnpatch,
                                     const std::vector<TieredFlip>& toRetier);

    /// The tier tag recorded with the function's last patch; kFullTier when
    /// unpatched or unknown (tags reset on unpatch and on dlclose).
    std::uint8_t functionTierTag(PackedId function) const;

    /// patchedFunctions() plus each function's tier tag — the ground truth
    /// a tiered delta is computed against.
    std::vector<std::pair<PackedId, std::uint8_t>> patchedFunctionTiers() const;

    /// Packed ids of every function whose sleds are currently patched, over
    /// all registered objects (the ground truth a delta is computed against).
    std::vector<PackedId> patchedFunctions() const;

    /// Runtime address of a function's entry sled (__xray_function_address).
    /// 0 when unknown.
    std::uint64_t functionAddress(PackedId function) const;

    /// True if the function's entry sled is currently patched.
    bool functionPatched(PackedId function) const;

    // --- dispatch -----------------------------------------------------------

    void setHandler(Handler handler, void* context);
    void clearHandler() { setHandler(nullptr, nullptr); }

    /// Executes the sled at `runtimeAddress`: a NOP sled falls through
    /// (returns false); a patched sled jumps through its object's trampoline
    /// into the installed handler (returns true). Faults if the trampoline
    /// is not position independent but the object was relocated.
    bool invokeSled(std::uint64_t runtimeAddress);

    std::size_t patchedSledCount() const;

private:
    struct ObjectRecord {
        bool inUse = false;
        std::string name;
        std::uint64_t linkBase = 0;
        std::uint64_t loadBase = 0;
        bool trampolinesPic = false;
        SledTable sleds;
        /// Sled indices grouped per local function id.
        std::vector<std::vector<std::uint32_t>> sledsOfFunction;
        /// Per-function tier tag (kFullTier/kSampledTier), meaningful while
        /// the function is patched; reset to kFullTier on unpatch. Rebuilt
        /// zeroed on (re-)registration, so a recycled object id never
        /// inherits a predecessor's tiers.
        std::vector<std::uint8_t> tierOfFunction;
    };

    std::uint64_t runtimeAddress(const ObjectRecord& obj, std::uint64_t linkAddr) const {
        return linkAddr - obj.linkBase + obj.loadBase;
    }

    void validateRegistration(const ObjectRegistration& registration) const;
    ObjectRecord makeRecord(ObjectRegistration&& registration) const;
    void initializeSleds(const ObjectRecord& obj);
    PatchStats applyToObject(ObjectRecord& obj, ObjectId id, bool patch);
    void writeSled(const ObjectRecord& obj, ObjectId id, const SledEntry& sled,
                   bool patch);
    const ObjectRecord* findObject(ObjectId id) const;

    CodeMemory* memory_;
    std::vector<ObjectRecord> objects_ = std::vector<ObjectRecord>(kMaxObjectId + 1);
    bool mainRegistered_ = false;

    Handler handler_ = nullptr;
    void* handlerContext_ = nullptr;

    mutable std::mutex mutex_;
};

}  // namespace capi::xray
