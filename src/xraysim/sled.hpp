// XRay sleds: patchable NOP regions at function entry and exit points.
//
// The compiler's XRay machine pass emits a fixed-size run of NOP bytes (a
// "sled") at every instrumentation point of every prepared function, plus a
// table recording each sled's address, kind and function ID. At runtime the
// NOPs can be overwritten ("patched") with a jump into a trampoline.
#pragma once

#include <cstdint>
#include <vector>

#include "xraysim/packed_id.hpp"

namespace capi::xray {

/// Sled size in simulated code bytes. Real x86-64 XRay entry sleds are 11
/// bytes; the exact value only affects address layout here.
inline constexpr std::uint64_t kSledBytes = 16;

enum class SledKind : std::uint8_t {
    FunctionEnter,
    FunctionExit,
    TailCallExit,
};

/// One entry of an object's XRay sled table (the xray_instr_map section).
struct SledEntry {
    std::uint64_t address = 0;   ///< Link-time address of the sled.
    SledKind kind = SledKind::FunctionEnter;
    FunctionId function = 0;     ///< Object-local function ID (24-bit space).
};

/// Event kinds delivered to the installed handler.
enum class XRayEntryType : std::uint8_t {
    Entry,
    Exit,
    TailExit,
};

/// Per-object sled table as extracted from the object file.
struct SledTable {
    std::vector<SledEntry> sleds;  ///< Grouped by function, entry before exits.

    std::size_t size() const { return sleds.size(); }
    bool empty() const { return sleds.empty(); }

    /// Highest function ID referenced plus one (the object's ID space size).
    std::uint32_t functionCount() const {
        std::uint32_t maxId = 0;
        bool any = false;
        for (const SledEntry& s : sleds) {
            any = true;
            if (s.function > maxId) maxId = s.function;
        }
        return any ? maxId + 1 : 0;
    }
};

}  // namespace capi::xray
