#include "xraysim/xray_runtime.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/fault.hpp"
#include "support/timer.hpp"

namespace capi::xray {

void XRayRuntime::validateRegistration(const ObjectRegistration& registration) const {
    std::uint32_t functions = registration.sledTable.functionCount();
    if (functions > kMaxFunctionsPerObject) {
        throw support::Error("XRay: object '" + registration.name + "' uses " +
                             std::to_string(functions) +
                             " function IDs, exceeding the 24-bit limit");
    }
    for (const SledEntry& sled : registration.sledTable.sleds) {
        std::uint64_t addr =
            sled.address - registration.linkBase + registration.loadBase;
        if (addr >= memory_->sizeBytes()) {
            throw support::Error("XRay: sled of '" + registration.name +
                                 "' outside mapped code memory");
        }
    }
}

XRayRuntime::ObjectRecord XRayRuntime::makeRecord(
    ObjectRegistration&& registration) const {
    ObjectRecord record;
    record.inUse = true;
    record.name = std::move(registration.name);
    record.linkBase = registration.linkBase;
    record.loadBase = registration.loadBase;
    record.trampolinesPic = registration.trampolinesPositionIndependent;
    record.sleds = std::move(registration.sledTable);
    record.sledsOfFunction.resize(record.sleds.functionCount());
    for (std::uint32_t i = 0; i < record.sleds.sleds.size(); ++i) {
        record.sledsOfFunction[record.sleds.sleds[i].function].push_back(i);
    }
    record.tierOfFunction.assign(record.sleds.functionCount(), kFullTier);
    return record;
}

void XRayRuntime::initializeSleds(const ObjectRecord& obj) {
    // Loading maps the object's text segment, whose sled locations contain
    // the NOP sequences emitted at compile time. Model that by seeding the
    // cells before the pages are sealed execute-only.
    if (obj.sleds.empty()) {
        return;
    }
    std::uint64_t lo = UINT64_MAX;
    std::uint64_t hi = 0;
    for (const SledEntry& sled : obj.sleds.sleds) {
        std::uint64_t addr = runtimeAddress(obj, sled.address);
        lo = std::min(lo, addr);
        hi = std::max(hi, addr + kSledBytes);
    }
    memory_->mprotect(lo, hi - lo, /*writable=*/true);
    for (const SledEntry& sled : obj.sleds.sleds) {
        memory_->write(runtimeAddress(obj, sled.address), CodeCell{Instr::NopSled, 0});
    }
    memory_->mprotect(lo, hi - lo, /*writable=*/false);
}

ObjectId XRayRuntime::registerMainExecutable(ObjectRegistration registration) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (mainRegistered_) {
        throw support::Error("XRay: main executable already registered");
    }
    validateRegistration(registration);
    objects_[kMainExecutableObjectId] = makeRecord(std::move(registration));
    initializeSleds(objects_[kMainExecutableObjectId]);
    mainRegistered_ = true;
    return kMainExecutableObjectId;
}

std::optional<ObjectId> XRayRuntime::registerDso(ObjectRegistration registration) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!mainRegistered_) {
        throw support::Error("XRay: register the main executable before DSOs");
    }
    validateRegistration(registration);
    for (ObjectId id = 1; id <= kMaxObjectId; ++id) {
        if (!objects_[id].inUse) {
            objects_[id] = makeRecord(std::move(registration));
            initializeSleds(objects_[id]);
            return id;
        }
    }
    return std::nullopt;  // All 255 DSO slots occupied.
}

bool XRayRuntime::unregisterDso(ObjectId id) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (id == kMainExecutableObjectId || id > kMaxObjectId || !objects_[id].inUse) {
        return false;
    }
    applyToObject(objects_[id], id, /*patch=*/false);
    objects_[id] = ObjectRecord{};
    return true;
}

bool XRayRuntime::objectRegistered(ObjectId id) const {
    std::lock_guard<std::mutex> lock(mutex_);
    return id <= kMaxObjectId && objects_[id].inUse;
}

std::size_t XRayRuntime::registeredObjectCount() const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::size_t count = 0;
    for (const ObjectRecord& obj : objects_) {
        if (obj.inUse) ++count;
    }
    return count;
}

std::uint32_t XRayRuntime::functionCount(ObjectId id) const {
    std::lock_guard<std::mutex> lock(mutex_);
    const ObjectRecord* obj = findObject(id);
    return obj != nullptr ? obj->sleds.functionCount() : 0;
}

const std::string& XRayRuntime::objectName(ObjectId id) const {
    static const std::string kEmpty;
    std::lock_guard<std::mutex> lock(mutex_);
    const ObjectRecord* obj = findObject(id);
    return obj != nullptr ? obj->name : kEmpty;
}

const XRayRuntime::ObjectRecord* XRayRuntime::findObject(ObjectId id) const {
    if (id > kMaxObjectId || !objects_[id].inUse) {
        return nullptr;
    }
    return &objects_[id];
}

void XRayRuntime::writeSled(const ObjectRecord& obj, ObjectId id,
                            const SledEntry& sled, bool patch) {
    CodeCell cell;
    if (patch) {
        switch (sled.kind) {
            case SledKind::FunctionEnter: cell.instr = Instr::JmpEntryTrampoline; break;
            case SledKind::FunctionExit: cell.instr = Instr::JmpExitTrampoline; break;
            case SledKind::TailCallExit: cell.instr = Instr::JmpTailTrampoline; break;
        }
        // The patched sled materializes the packed ID as an immediate, like
        // the real `mov r10d, <id>` sequence.
        cell.operand = packId(id, sled.function);
    } else {
        cell.instr = Instr::NopSled;
        cell.operand = 0;
    }
    memory_->write(runtimeAddress(obj, sled.address), cell);
}

PatchStats XRayRuntime::applyToObject(ObjectRecord& obj, ObjectId id, bool patch) {
    PatchStats stats;
    if (obj.sleds.empty()) {
        return stats;
    }
    // The binary whole-object paths know nothing of tiers: everything they
    // patch is Full, everything they unpatch resets its tag.
    std::fill(obj.tierOfFunction.begin(), obj.tierOfFunction.end(), kFullTier);
    support::Timer timer;

    // Like the real runtime: compute the page span containing all sleds and
    // flip its protection once, rather than per sled.
    std::uint64_t lo = UINT64_MAX;
    std::uint64_t hi = 0;
    for (const SledEntry& sled : obj.sleds.sleds) {
        std::uint64_t addr = runtimeAddress(obj, sled.address);
        lo = std::min(lo, addr);
        hi = std::max(hi, addr + kSledBytes);
    }
    std::uint64_t writableBefore = memory_->pagesMadeWritable();
    memory_->mprotect(lo, hi - lo, /*writable=*/true);

    for (const SledEntry& sled : obj.sleds.sleds) {
        writeSled(obj, id, sled, patch);
        if (patch) {
            ++stats.sledsPatched;
        } else {
            ++stats.sledsUnpatched;
        }
    }

    memory_->mprotect(lo, hi - lo, /*writable=*/false);
    stats.pagesMadeWritable = memory_->pagesMadeWritable() - writableBefore;
    stats.nanoseconds = timer.elapsedNs();
    return stats;
}

PatchStats XRayRuntime::patchAll() {
    std::lock_guard<std::mutex> lock(mutex_);
    PatchStats total;
    for (ObjectId id = 0; id <= kMaxObjectId; ++id) {
        if (!objects_[id].inUse) continue;
        PatchStats s = applyToObject(objects_[id], id, /*patch=*/true);
        total.sledsPatched += s.sledsPatched;
        total.pagesMadeWritable += s.pagesMadeWritable;
        total.nanoseconds += s.nanoseconds;
    }
    return total;
}

PatchStats XRayRuntime::unpatchAll() {
    std::lock_guard<std::mutex> lock(mutex_);
    PatchStats total;
    for (ObjectId id = 0; id <= kMaxObjectId; ++id) {
        if (!objects_[id].inUse) continue;
        PatchStats s = applyToObject(objects_[id], id, /*patch=*/false);
        total.sledsUnpatched += s.sledsUnpatched;
        total.pagesMadeWritable += s.pagesMadeWritable;
        total.nanoseconds += s.nanoseconds;
    }
    return total;
}

PatchStats XRayRuntime::patchObject(ObjectId id) {
    std::lock_guard<std::mutex> lock(mutex_);
    const ObjectRecord* obj = findObject(id);
    if (obj == nullptr) {
        throw support::Error("XRay: patchObject on unregistered object " +
                             std::to_string(id));
    }
    return applyToObject(objects_[id], id, /*patch=*/true);
}

PatchStats XRayRuntime::unpatchObject(ObjectId id) {
    std::lock_guard<std::mutex> lock(mutex_);
    const ObjectRecord* obj = findObject(id);
    if (obj == nullptr) {
        throw support::Error("XRay: unpatchObject on unregistered object " +
                             std::to_string(id));
    }
    return applyToObject(objects_[id], id, /*patch=*/false);
}

namespace {

/// Patches or unpatches the sleds of exactly one function: protection is
/// flipped for the affected pages only.
struct SingleFunctionPatcher {
    CodeMemory& memory;

    void apply(const std::vector<std::uint64_t>& addresses) const {
        if (addresses.empty()) return;
        std::uint64_t lo = *std::min_element(addresses.begin(), addresses.end());
        std::uint64_t hi = *std::max_element(addresses.begin(), addresses.end()) +
                           kSledBytes;
        memory.mprotect(lo, hi - lo, true);
    }

    void seal(const std::vector<std::uint64_t>& addresses) const {
        if (addresses.empty()) return;
        std::uint64_t lo = *std::min_element(addresses.begin(), addresses.end());
        std::uint64_t hi = *std::max_element(addresses.begin(), addresses.end()) +
                           kSledBytes;
        memory.mprotect(lo, hi - lo, false);
    }
};

}  // namespace

bool XRayRuntime::patchFunction(PackedId function) {
    std::lock_guard<std::mutex> lock(mutex_);
    ObjectId objId = objectIdOf(function);
    FunctionId fnId = functionIdOf(function);
    const ObjectRecord* obj = findObject(objId);
    if (obj == nullptr || fnId >= obj->sledsOfFunction.size()) {
        return false;
    }
    std::vector<std::uint64_t> addresses;
    for (std::uint32_t sledIndex : obj->sledsOfFunction[fnId]) {
        addresses.push_back(runtimeAddress(*obj, obj->sleds.sleds[sledIndex].address));
    }
    if (addresses.empty()) {
        return false;
    }
    SingleFunctionPatcher patcher{*memory_};
    patcher.apply(addresses);
    for (std::uint32_t sledIndex : obj->sledsOfFunction[fnId]) {
        writeSled(*obj, objId, obj->sleds.sleds[sledIndex], /*patch=*/true);
    }
    patcher.seal(addresses);
    objects_[objId].tierOfFunction[fnId] = kFullTier;
    return true;
}

bool XRayRuntime::unpatchFunction(PackedId function) {
    std::lock_guard<std::mutex> lock(mutex_);
    ObjectId objId = objectIdOf(function);
    FunctionId fnId = functionIdOf(function);
    const ObjectRecord* obj = findObject(objId);
    if (obj == nullptr || fnId >= obj->sledsOfFunction.size()) {
        return false;
    }
    std::vector<std::uint64_t> addresses;
    for (std::uint32_t sledIndex : obj->sledsOfFunction[fnId]) {
        addresses.push_back(runtimeAddress(*obj, obj->sleds.sleds[sledIndex].address));
    }
    if (addresses.empty()) {
        return false;
    }
    SingleFunctionPatcher patcher{*memory_};
    patcher.apply(addresses);
    for (std::uint32_t sledIndex : obj->sledsOfFunction[fnId]) {
        writeSled(*obj, objId, obj->sleds.sleds[sledIndex], /*patch=*/false);
    }
    patcher.seal(addresses);
    objects_[objId].tierOfFunction[fnId] = kFullTier;
    return true;
}

XRayRuntime::DeltaPatchStats XRayRuntime::patchDelta(
    const std::vector<PackedId>& toPatch, const std::vector<PackedId>& toUnpatch) {
    std::vector<TieredFlip> tiered;
    tiered.reserve(toPatch.size());
    for (PackedId pid : toPatch) {
        tiered.push_back({pid, kFullTier});
    }
    return patchDeltaTiered(tiered, toUnpatch, {});
}

XRayRuntime::DeltaPatchStats XRayRuntime::patchDeltaTiered(
    const std::vector<TieredFlip>& toPatch, const std::vector<PackedId>& toUnpatch,
    const std::vector<TieredFlip>& toRetier) {
    std::lock_guard<std::mutex> lock(mutex_);
    DeltaPatchStats stats;
    support::Timer timer;

    // The span covers the whole transaction and is recorded even when the
    // catch block below unwinds through it — rollbacks are part of the
    // patch-phase timeline, not a gap in it.
    static const std::uint32_t kPatchSpan =
        obs::TraceRecorder::global().internName("xray.patch_delta");
    obs::ScopedSpan patchSpan(kPatchSpan, obs::SpanCategory::Patch);

    // Group the requested flips per object; a function whose object vanished
    // since the delta was computed (dlclose raced the planner) is not an
    // error, it is simply no longer patchable.
    struct Flip {
        FunctionId function;
        bool patch;
        std::uint8_t tierTag;
    };
    std::vector<std::vector<Flip>> flipsOfObject(kMaxObjectId + 1);
    auto classify = [&](PackedId pid, bool patch, std::uint8_t tierTag,
                        std::size_t& unavailable) {
        ObjectId objId = objectIdOf(pid);
        FunctionId fnId = functionIdOf(pid);
        const ObjectRecord* obj = findObject(objId);
        if (obj == nullptr || fnId >= obj->sledsOfFunction.size() ||
            obj->sledsOfFunction[fnId].empty()) {
            ++unavailable;
            return;
        }
        flipsOfObject[objId].push_back({fnId, patch, tierTag});
    };
    for (const TieredFlip& flip : toPatch) {
        classify(flip.function, /*patch=*/true, flip.tierTag,
                 stats.unavailablePatch);
    }
    for (PackedId pid : toUnpatch) {
        classify(pid, /*patch=*/false, kFullTier, stats.unavailableUnpatch);
    }

    // Transaction journal: every cell and tier tag is recorded before it is
    // mutated, and every page run is recorded once opened, so a mid-flight
    // MachineFault (mprotect or sled write dying — the CodeMemory injection
    // sites model both) unwinds to the exact pre-transaction state.
    struct CellUndo {
        std::uint64_t address;
        CodeCell previous;
    };
    struct TierUndo {
        ObjectId object;
        FunctionId function;
        std::uint8_t previous;
    };
    std::vector<CellUndo> cellUndo;
    std::vector<TierUndo> tierUndo;
    std::vector<std::pair<std::uint64_t, std::uint64_t>> touchedRuns;

    // Tier-only transitions: tag updates under the runtime lock, zero page
    // work — a Full<->Sampled re-plan costs exactly nothing here. Journaled
    // all the same: a later page-phase failure must take the retier pass
    // down with it, or tier tags and sleds would tear apart.
    for (const TieredFlip& retier : toRetier) {
        ObjectId objId = objectIdOf(retier.function);
        FunctionId fnId = functionIdOf(retier.function);
        const ObjectRecord* obj = findObject(objId);
        if (obj == nullptr || fnId >= obj->sledsOfFunction.size() ||
            obj->sledsOfFunction[fnId].empty()) {
            ++stats.unavailableRetier;
            continue;
        }
        tierUndo.push_back({objId, fnId, objects_[objId].tierOfFunction[fnId]});
        objects_[objId].tierOfFunction[fnId] = retier.tierTag;
        ++stats.functionsRetiered;
    }

    const std::uint64_t writableBefore = memory_->pagesMadeWritable();
    try {
        for (ObjectId objId = 0; objId <= kMaxObjectId; ++objId) {
            if (flipsOfObject[objId].empty()) {
                continue;
            }
            ObjectRecord& obj = objects_[objId];

            // Coalesce the affected sleds' byte spans into contiguous page
            // runs, so a dense cluster of changed functions costs one
            // protection flip while distant stragglers do not drag whole
            // untouched ranges along (which is exactly what applyToObject's
            // single lo..hi span does).
            std::vector<std::pair<std::uint64_t, std::uint64_t>> spans;
            for (const Flip& flip : flipsOfObject[objId]) {
                for (std::uint32_t sledIndex : obj.sledsOfFunction[flip.function]) {
                    std::uint64_t addr =
                        runtimeAddress(obj, obj.sleds.sleds[sledIndex].address);
                    spans.emplace_back(addr / kPageSize,
                                       (addr + kSledBytes - 1) / kPageSize);
                }
            }
            std::sort(spans.begin(), spans.end());
            std::vector<std::pair<std::uint64_t, std::uint64_t>> runs;
            for (const auto& [first, last] : spans) {
                if (!runs.empty() && first <= runs.back().second + 1) {
                    runs.back().second = std::max(runs.back().second, last);
                } else {
                    runs.emplace_back(first, last);
                }
            }

            for (const auto& [first, last] : runs) {
                memory_->mprotect(first * kPageSize, (last - first + 1) * kPageSize,
                                  /*writable=*/true);
                // A failed mprotect changes nothing, so only successfully
                // opened runs need re-sealing on rollback.
                touchedRuns.emplace_back(first, last);
            }
            for (const Flip& flip : flipsOfObject[objId]) {
                for (std::uint32_t sledIndex : obj.sledsOfFunction[flip.function]) {
                    const SledEntry& sled = obj.sleds.sleds[sledIndex];
                    std::uint64_t addr = runtimeAddress(obj, sled.address);
                    cellUndo.push_back({addr, memory_->read(addr)});
                    writeSled(obj, objId, sled, flip.patch);
                    if (flip.patch) {
                        ++stats.sledsPatched;
                    } else {
                        ++stats.sledsUnpatched;
                    }
                }
                tierUndo.push_back(
                    {objId, flip.function, obj.tierOfFunction[flip.function]});
                obj.tierOfFunction[flip.function] =
                    flip.patch ? flip.tierTag : kFullTier;
            }
            for (const auto& [first, last] : runs) {
                memory_->mprotect(first * kPageSize, (last - first + 1) * kPageSize,
                                  /*writable=*/false);
            }
        }
    } catch (const support::MachineFault& fault) {
        // Roll back in reverse: reopen everything the transaction touched,
        // restore cells and tier tags newest-first, seal again. The undo
        // path replays operations that just succeeded, so fault injection is
        // suppressed for its duration — otherwise no rollback could ever be
        // guaranteed to terminate in the pre-state.
        support::fault::SuppressFaults suppress;
        for (const auto& [first, last] : touchedRuns) {
            memory_->mprotect(first * kPageSize, (last - first + 1) * kPageSize,
                              /*writable=*/true);
        }
        for (auto it = cellUndo.rbegin(); it != cellUndo.rend(); ++it) {
            memory_->write(it->address, it->previous);
        }
        for (auto it = tierUndo.rbegin(); it != tierUndo.rend(); ++it) {
            objects_[it->object].tierOfFunction[it->function] = it->previous;
        }
        for (const auto& [first, last] : touchedRuns) {
            memory_->mprotect(first * kPageSize, (last - first + 1) * kPageSize,
                              /*writable=*/false);
        }
        obs::MetricsRegistry::global()
            .counter("capi_xray_rollbacks_total")
            .add(1);
        obs::TraceRecorder& recorder = obs::TraceRecorder::global();
        if (recorder.enabled()) {
            static const std::uint32_t kRollback =
                recorder.internName("xray.rollback");
            recorder.recordInstant(kRollback, obs::SpanCategory::Patch,
                                   support::probeNowNs(), cellUndo.size());
        }
        throw PatchError(std::string("XRay: delta patch rolled back: ") +
                             fault.what(),
                         cellUndo.size(), tierUndo.size());
    }
    stats.pagesMadeWritable = memory_->pagesMadeWritable() - writableBefore;
    stats.nanoseconds = timer.elapsedNs();
    patchSpan.setArg(stats.sledsPatched + stats.sledsUnpatched);
    {
        obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
        static obs::Counter& transactions =
            registry.counter("capi_xray_patch_transactions_total");
        static obs::Counter& sledsPatched =
            registry.counter("capi_xray_sleds_patched_total");
        static obs::Counter& sledsUnpatched =
            registry.counter("capi_xray_sleds_unpatched_total");
        static obs::Counter& pagesTouched =
            registry.counter("capi_xray_pages_made_writable_total");
        transactions.add(1);
        sledsPatched.add(stats.sledsPatched);
        sledsUnpatched.add(stats.sledsUnpatched);
        pagesTouched.add(stats.pagesMadeWritable);
    }
    return stats;
}

std::vector<PackedId> XRayRuntime::patchedFunctions() const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<PackedId> patched;
    for (ObjectId objId = 0; objId <= kMaxObjectId; ++objId) {
        const ObjectRecord& obj = objects_[objId];
        if (!obj.inUse) {
            continue;
        }
        for (FunctionId fnId = 0; fnId < obj.sledsOfFunction.size(); ++fnId) {
            if (obj.sledsOfFunction[fnId].empty()) {
                continue;
            }
            // All of a function's sleds flip together through every patching
            // API, so the first sled's state speaks for the function (as in
            // functionPatched).
            const SledEntry& sled = obj.sleds.sleds[obj.sledsOfFunction[fnId][0]];
            if (memory_->read(runtimeAddress(obj, sled.address)).instr !=
                Instr::NopSled) {
                patched.push_back(packId(objId, fnId));
            }
        }
    }
    return patched;
}

std::uint8_t XRayRuntime::functionTierTag(PackedId function) const {
    std::lock_guard<std::mutex> lock(mutex_);
    const ObjectRecord* obj = findObject(objectIdOf(function));
    FunctionId fnId = functionIdOf(function);
    if (obj == nullptr || fnId >= obj->tierOfFunction.size()) {
        return kFullTier;
    }
    return obj->tierOfFunction[fnId];
}

std::vector<std::pair<PackedId, std::uint8_t>> XRayRuntime::patchedFunctionTiers()
    const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::pair<PackedId, std::uint8_t>> patched;
    for (ObjectId objId = 0; objId <= kMaxObjectId; ++objId) {
        const ObjectRecord& obj = objects_[objId];
        if (!obj.inUse) {
            continue;
        }
        for (FunctionId fnId = 0; fnId < obj.sledsOfFunction.size(); ++fnId) {
            if (obj.sledsOfFunction[fnId].empty()) {
                continue;
            }
            const SledEntry& sled = obj.sleds.sleds[obj.sledsOfFunction[fnId][0]];
            if (memory_->read(runtimeAddress(obj, sled.address)).instr !=
                Instr::NopSled) {
                patched.emplace_back(packId(objId, fnId), obj.tierOfFunction[fnId]);
            }
        }
    }
    return patched;
}

std::uint64_t XRayRuntime::functionAddress(PackedId function) const {
    std::lock_guard<std::mutex> lock(mutex_);
    ObjectId objId = objectIdOf(function);
    FunctionId fnId = functionIdOf(function);
    const ObjectRecord* obj = findObject(objId);
    if (obj == nullptr || fnId >= obj->sledsOfFunction.size() ||
        obj->sledsOfFunction[fnId].empty()) {
        return 0;
    }
    // The entry sled is the function's address for all practical purposes.
    for (std::uint32_t sledIndex : obj->sledsOfFunction[fnId]) {
        const SledEntry& sled = obj->sleds.sleds[sledIndex];
        if (sled.kind == SledKind::FunctionEnter) {
            return runtimeAddress(*obj, sled.address);
        }
    }
    return runtimeAddress(*obj, obj->sleds.sleds[obj->sledsOfFunction[fnId][0]].address);
}

bool XRayRuntime::functionPatched(PackedId function) const {
    // Resolved through the sled table rather than functionAddress(): that
    // API uses 0 as its "unknown" sentinel (as real __xray_function_address
    // does), which would misreport a function legitimately linked at the
    // object's base address.
    std::lock_guard<std::mutex> lock(mutex_);
    const ObjectRecord* obj = findObject(objectIdOf(function));
    FunctionId fnId = functionIdOf(function);
    if (obj == nullptr || fnId >= obj->sledsOfFunction.size() ||
        obj->sledsOfFunction[fnId].empty()) {
        return false;
    }
    const SledEntry& sled = obj->sleds.sleds[obj->sledsOfFunction[fnId][0]];
    return memory_->read(runtimeAddress(*obj, sled.address)).instr !=
           Instr::NopSled;
}

void XRayRuntime::setHandler(Handler handler, void* context) {
    std::lock_guard<std::mutex> lock(mutex_);
    handler_ = handler;
    handlerContext_ = context;
}

bool XRayRuntime::invokeSled(std::uint64_t runtimeAddress) {
    const CodeCell& cell = memory_->read(runtimeAddress);
    XRayEntryType type;
    switch (cell.instr) {
        case Instr::NopSled:
            return false;  // Unpatched: execution falls through the NOPs.
        case Instr::JmpEntryTrampoline: type = XRayEntryType::Entry; break;
        case Instr::JmpExitTrampoline: type = XRayEntryType::Exit; break;
        case Instr::JmpTailTrampoline: type = XRayEntryType::TailExit; break;
        case Instr::Body:
            throw support::MachineFault("executed body bytes as a sled at address " +
                                        std::to_string(runtimeAddress));
        default: return false;
    }

    PackedId pid = cell.operand;
    const ObjectRecord& obj = objects_[objectIdOf(pid)];
    // Position-independence check: a non-PIC trampoline addresses the
    // handler pointer absolutely, which only works when the object was
    // loaded at its link base. DSOs are relocated, so they fault here —
    // the exact bug the @GOTPCREL change fixed (paper Sec. V-B2).
    if (!obj.trampolinesPic && obj.loadBase != obj.linkBase) {
        throw support::MachineFault(
            "non-position-independent trampoline executed in relocated object '" +
            obj.name + "'");
    }
    Handler handler = handler_;
    if (handler != nullptr) {
        handler(handlerContext_, pid, type);
    }
    return true;
}

std::size_t XRayRuntime::patchedSledCount() const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::size_t count = 0;
    for (const ObjectRecord& obj : objects_) {
        if (!obj.inUse) continue;
        for (const SledEntry& sled : obj.sleds.sleds) {
            if (memory_->read(runtimeAddress(obj, sled.address)).instr !=
                Instr::NopSled) {
                ++count;
            }
        }
    }
    return count;
}

}  // namespace capi::xray
